//! The honest floor of the event-driven engine.
//!
//! `BENCH_event.json` advertises order-of-magnitude speedups on
//! steady-state parametric sweeps, where almost every item replays from
//! the event queue's memo cache. Trained image batches are the opposite
//! regime: every item stages real bytes over DMA, nothing memoizes, and
//! the event engine's queue bookkeeping is pure overhead on top of the
//! same simulated work.
//!
//! This test pins that overhead so it can never silently grow into a
//! regression (and so the serve router's "image -> lockstep" rule stays
//! justified by a measured fact, not folklore): over interleaved timed
//! runs, the event engine's median must stay within a small constant
//! factor of lockstep's on the image workload — while still producing
//! the byte-identical report the differential suite demands.

use std::time::Instant;

use ncpu::prelude::*;

/// Generous bound: the event engine may cost up to this factor over
/// lockstep on a non-memoizable workload. Measured debug-mode ratios
/// sit well under 2x; 3x leaves room for load noise without letting a
/// real regression (10x bookkeeping blowup) through.
const MAX_OVERHEAD_FACTOR: f64 = 3.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

#[test]
fn event_engine_overhead_on_image_workload_is_bounded() {
    let scenario =
        Scenario::new(UseCase::image(4, 2, 1), SystemConfig::Ncpu { cores: 2 });

    // Warm both code paths and check equivalence once (config tags are
    // the engines' only legitimate byte difference).
    let lockstep = Lockstep.report(&scenario);
    let event = EventDriven.report(&scenario);
    assert_eq!(
        format!("{event:?}").replace("(event)", "(engine)"),
        format!("{lockstep:?}").replace("(lockstep)", "(engine)"),
        "engines diverged; timing them against each other is meaningless"
    );

    // Interleave the engines so drift (thermal, scheduler) hits both
    // equally, and take medians so one descheduled run cannot fail CI.
    let mut ls_ns = Vec::new();
    let mut ev_ns = Vec::new();
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(Lockstep.report(&scenario));
        ls_ns.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        std::hint::black_box(EventDriven.report(&scenario));
        ev_ns.push(t.elapsed().as_nanos() as f64);
    }
    let (ls, ev) = (median(ls_ns), median(ev_ns));
    let factor = ev / ls;
    assert!(
        factor <= MAX_OVERHEAD_FACTOR,
        "event engine took {factor:.2}x lockstep on the image workload \
         (medians: event {ev:.0} ns, lockstep {ls:.0} ns); \
         the non-memoizable floor regressed past {MAX_OVERHEAD_FACTOR}x"
    );
}
