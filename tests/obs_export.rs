//! The observability exporters, end to end: the Chrome-trace format is
//! pinned against a golden file, and a traced dual-NCPU run produces
//! artifacts that survive the in-tree well-formedness checkers while
//! reproducing the ≥99% utilization pinned in `golden_values.rs`.

use ncpu::obs::{self, EventKind, Mode, Recorder, StallCause, TraceLevel};
use ncpu::prelude::*;

/// A tiny hand-built two-core run exercising every event shape the
/// exporter emits (phases, DMA, inference, and all four instant kinds).
fn tiny_two_core_recorder() -> Recorder {
    let mut rec = Recorder::new(TraceLevel::Full);
    rec.phase(0, "cpu", 0, 10);
    rec.phase(1, "cpu", 1, 9);
    rec.phase(0, "bnn", 10, 30);
    rec.phase(1, "bnn", 9, 29);
    rec.emit(2, 2, EventKind::Dma { bytes: 64, end: 18 });
    rec.emit(0, 3, EventKind::Retire { pc: 8 });
    rec.emit(0, 11, EventKind::ModeSwitch { to: Mode::Bnn });
    rec.emit(1, 12, EventKind::Stall { cause: StallCause::LoadUse });
    rec.emit(0, 13, EventKind::L2Access { addr: 64, is_store: false });
    rec.emit(1, 14, EventKind::Inference { images: 2, end: 29 });
    rec
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rec = tiny_two_core_recorder();
    let names =
        vec![(0u16, "ncpu0".to_string()), (1, "ncpu1".to_string()), (2, "dma".to_string())];
    let actual = obs::chrome_trace(&rec, &names);
    let expected = include_str!("golden/trace_tiny.json");
    assert_eq!(actual, expected, "Chrome trace format drifted from the pinned golden file");
}

#[test]
fn traced_dual_run_artifacts_validate_and_pin_utilization() {
    let model = ncpu::bnn::BnnModel::zeros(&Topology::paper(784, 100, 10));
    let uc = UseCase::parametric(0.76, 2, model);
    let soc = SocConfig::default();
    let (dual, rec) = run_traced(&uc, SystemConfig::Ncpu { cores: 2 }, &soc, TraceLevel::Full);
    let artifact = dual.artifact(uc.name(), &rec);

    let dir = std::env::temp_dir().join(format!("ncpu-obs-export-{}", std::process::id()));
    let (run_path, trace_path) =
        obs::write_artifacts_to(&dir, &artifact, &rec, &dual.thread_names())
            .expect("artifacts written");

    let run_doc = obs::json::parse(&std::fs::read_to_string(&run_path).expect("RUN file"))
        .expect("RUN json parses");
    obs::json::validate_run_artifact(&run_doc).expect("RUN artifact well-formed");
    let trace_doc = obs::json::parse(&std::fs::read_to_string(&trace_path).expect("TRACE file"))
        .expect("TRACE json parses");
    obs::json::validate_chrome_trace(&trace_doc).expect("Chrome trace well-formed");

    // Table IV's headline, visible in the artifact itself: both NCPU
    // lanes sustain ≥99% utilization at the paper's operating point.
    let cores = run_doc.get("cores").and_then(|c| c.as_arr()).expect("cores array");
    assert_eq!(cores.len(), 2);
    for core in cores {
        let util = core.get("utilization").and_then(|u| u.as_num()).expect("utilization");
        assert!(util >= 0.99, "artifact utilization {util:.4} below the pinned 0.99");
    }
    // The counter registry made it into the artifact under stable names.
    let counters = run_doc.get("counters").expect("counters object");
    for name in ["core0.retired", "core1.retired", "dma.transfers", "run.makespan_cycles"] {
        assert!(counters.get(name).is_some(), "missing counter {name}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_trace_carries_instants_for_both_cores() {
    let model = ncpu::bnn::BnnModel::zeros(&Topology::paper(784, 50, 10));
    let uc = UseCase::parametric(0.5, 4, model);
    let (_, rec) =
        run_traced(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default(), TraceLevel::Full);
    for core in [0u16, 1] {
        assert!(
            rec.events()
                .iter()
                .any(|e| e.core == core && matches!(e.kind, EventKind::Retire { .. })),
            "core {core} has no retire instants"
        );
        assert!(
            rec.events()
                .iter()
                .any(|e| e.core == core && matches!(e.kind, EventKind::ModeSwitch { .. })),
            "core {core} has no mode-switch instants"
        );
    }
    assert_eq!(rec.dropped(), 0, "tiny run must not hit the event capacity");
}
