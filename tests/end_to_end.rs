//! Cross-crate integration tests: the full stack agrees with itself.

use ncpu::prelude::*;
use ncpu::bnn::data::{digits, motion};
use ncpu::workloads::{image, motion as motion_prog, softbnn, Tail};
use ncpu_testkit::rng::Rng;

/// Deterministic pseudo-random model (no training needed).
fn pseudo_model(input: usize, neurons: usize, classes: usize) -> BnnModel {
    let topo = Topology::paper(input, neurons, classes);
    let layers = (0..4)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 17 + j * 5 + l) % 7 < 3)))
                .collect();
            ncpu::bnn::BnnLayer::new(rows, (0..neurons).map(|j| (j as i32 % 5) - 2).collect())
        })
        .collect();
    BnnModel::new(topo, layers)
}

/// The complete image story: raw frame → RV32I pre-processing on the NCPU
/// pipeline → in-place mode switch → accelerator → result, against the
/// pure-host reference path.
#[test]
fn ncpu_image_flow_matches_host_reference() {
    let model = pseudo_model(digits::PIXELS, 20, 10);
    let mut core = NcpuCore::new(model.clone(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
    let program = image::preprocess_program(
        &image::ImageLayout::default(),
        core.image_base(),
        Tail::NcpuClassify { output_base: core.output_base(), result_l2: 0x40 },
    );
    let mut rng = Rng::seed_from_u64(31);
    for digit in [1usize, 8] {
        let raw = digits::render_raw(digit, 0.1, &mut rng);
        let staged = image::stage_bytes(&raw);
        let banks = core.pipeline_mut().mem_mut().accel_mut().banks_mut();
        let (bank, off) = banks.resolve(0).unwrap();
        banks.bank_mut(bank).load(off as usize, &staged);
        core.load_program(program.clone());
        core.run(100_000_000).unwrap();
        let got = core.pipeline().reg(Reg::A0) as usize;
        let want = model.classify(&digits::preprocess(&raw));
        assert_eq!(got, want, "digit {digit}: NCPU flow diverged from host path");
    }
    assert_eq!(core.stats().switches, 2);
    assert_eq!(core.stats().switch_overhead_cycles, 0, "zero-latency switching");
}

/// Software BNN (RV32I), accelerator, and reference inference agree on the
/// motion pipeline.
#[test]
fn three_inference_paths_agree_on_motion() {
    let model = pseudo_model(motion::INPUT_BITS, 16, 8);
    let mut rng = Rng::seed_from_u64(5);
    let window = motion::generate_window(4, 9000.0, &mut rng);
    let input = motion::window_to_input(&window);
    let reference = model.classify(&input);

    let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
    let (accel_class, accel_cycles) = accel.infer(&input);
    assert_eq!(accel_class, reference, "accelerator vs reference");

    let soft = softbnn::build(&model);
    let mut cpu = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
    cpu.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
    let staged = softbnn::stage_input(&input);
    let at = soft.layout.input as usize;
    cpu.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
    let soft_cycles = cpu.run(200_000_000).unwrap();
    assert_eq!(cpu.reg(Reg::A0) as usize, reference, "software BNN vs reference");
    assert!(
        soft_cycles > 20 * accel_cycles,
        "the accelerator regime: {soft_cycles} vs {accel_cycles} cycles"
    );
}

/// The motion feature program on the NCPU produces the same class the
/// host-side pipeline predicts, end to end through the SoC layer.
#[test]
fn soc_motion_predictions_match_host_pipeline() {
    let uc = UseCase::motion(3, 4, 2);
    let report = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
    // Recompute what the model says about each staged window.
    for (i, item) in uc.items().iter().enumerate() {
        // Rebuild the window input from the staged channel-major bytes.
        let mut bits = Vec::new();
        for c in 0..motion::CHANNELS {
            for t in 0..motion::WINDOW {
                let at = (c * motion::WINDOW + t) * 2;
                bits.push(i16::from_le_bytes([item.staged[at], item.staged[at + 1]]));
            }
        }
        // The program operates on the staged bytes themselves; assert the
        // system's answer matches the model on the host-extracted features.
        let mut frames = vec![[0i16; motion::CHANNELS]; motion::WINDOW];
        for (c, chunk) in bits.chunks(motion::WINDOW).enumerate() {
            for (t, &v) in chunk.iter().enumerate() {
                frames[t][c] = v;
            }
        }
        let _ = frames;
        assert!(report.predictions[i] < motion::CLASSES);
    }
    assert_eq!(report.predictions.len(), 3);
}

/// Full-utilization claim: with balanced work, two NCPUs keep busy while
/// the heterogeneous baseline starves its accelerator.
#[test]
fn dual_ncpu_full_utilization_vs_starved_baseline() {
    let model = pseudo_model(digits::PIXELS, 50, 10);
    let uc = UseCase::parametric(0.7, 6, model);
    let soc = SocConfig::default();
    let base = run(&uc, SystemConfig::Heterogeneous, &soc);
    let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
    let base_accel = base.cores[1].utilization(base.makespan);
    assert!(base_accel < 0.5, "baseline accelerator should starve, got {base_accel}");
    for core in &dual.cores {
        assert!(core.utilization(dual.makespan) > 0.97, "NCPU cores stay saturated");
    }
    assert!(dual.improvement_over(&base) > 0.3);
}

/// The feature program and image program remain bit-exact against their
/// host mirrors when run through the NCPU memory system (not just the
/// flat-memory pipeline).
#[test]
fn programs_bit_exact_through_ncpu_banks() {
    let model = pseudo_model(motion::INPUT_BITS, 12, 8);
    let mut core = NcpuCore::new(model.clone(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
    let layout = motion_prog::MotionLayout::default();
    let program = motion_prog::feature_program(
        &layout,
        core.image_base(),
        Tail::NcpuClassify { output_base: core.output_base(), result_l2: 0x44 },
    );
    let mut rng = Rng::seed_from_u64(77);
    let window = motion::generate_window(6, 9000.0, &mut rng);
    let banks = core.pipeline_mut().mem_mut().accel_mut().banks_mut();
    let (bank, off) = banks.resolve(0).unwrap();
    banks.bank_mut(bank).load(off as usize, &motion_prog::stage_bytes(&window));
    core.load_program(program);
    core.run(100_000_000).unwrap();
    let want = model.classify(&motion::window_to_input(&window));
    assert_eq!(core.pipeline().reg(Reg::A0) as usize, want);
}
