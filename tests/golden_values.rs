//! Golden values: the paper's headline numbers, pinned with documented
//! tolerances so a regression in any layer (pipeline timing, accelerator
//! scheduling, power model) trips a named assertion instead of silently
//! drifting. Complements `paper_claims.rs`, which asserts the *relative*
//! claims; this file pins the *absolute* bands the reproduction currently
//! achieves.
//!
//! Tolerances: end-to-end cycle counts are exact in this simulator, so the
//! bands below are not measurement noise — they are the slack between the
//! paper's silicon numbers and the reproduction's model (see
//! EXPERIMENTS.md for the per-figure record). Each band is wide enough to
//! survive benign refactors (e.g. an RNG swap re-ordering training) and
//! narrow enough to catch a broken scheduler or power curve.

use ncpu::prelude::*;

fn pseudo_image_model(neurons: usize) -> BnnModel {
    let topo = Topology::paper(784, neurons, 10);
    let layers = (0..4)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 13 + j * 3 + l) % 5 < 2)))
                .collect();
            ncpu::bnn::BnnLayer::new(rows, vec![0; neurons])
        })
        .collect();
    BnnModel::new(topo, layers)
}

/// Paper abstract / Figs. 13–14: two NCPUs beat the heterogeneous
/// baseline by 41.2% at a 70% CPU fraction (batch 2), and the gain decays
/// with batch size as the baseline's accelerator pipelining catches up.
/// Pinned: > 37% at batch 2 (within ~4 points of silicon), and a floor of
/// 28% out to batch 10. (The paper keeps > 37% at batch 100; our
/// accelerator model overlaps baseline CPU/BNN phases more aggressively
/// than the silicon, so the large-batch tail sits lower — the fig14
/// experiment records 28.4% at batch 100.)
#[test]
fn golden_dual_ncpu_speedup_exceeds_37pct_at_batch_2() {
    let model = pseudo_image_model(100);
    let soc = SocConfig::default();
    let improvement_at = |batch: usize| {
        let uc = UseCase::parametric(0.7, batch, model.clone());
        let base = run(&uc, SystemConfig::Heterogeneous, &soc);
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        dual.improvement_over(&base)
    };
    let at2 = improvement_at(2);
    assert!(
        at2 > 0.37,
        "batch 2: dual-NCPU improvement {at2:.3} dropped below the pinned \
         0.37 floor (paper: 0.412)"
    );
    assert!(
        at2 < 0.50,
        "batch 2: improvement {at2:.3} above 0.50 — the baseline model \
         likely broke (paper: 0.412)"
    );
    let at10 = improvement_at(10);
    assert!(
        (0.28..=at2).contains(&at10),
        "batch 10: improvement {at10:.3} outside [0.28, {at2:.3}] — the \
         gain must decay with batch but hold a ≥28% floor"
    );
}

/// Table IV / §VI: the reconfigurable cores sustain ≈99.3% utilization
/// while the heterogeneous baseline leaves the CPU at ≈80.2% and the
/// accelerator at ≈39.4%. Measured at the table4 experiment's operating
/// point (parametric workload at the paper's 76% CPU/BNN balance, batch
/// 2), where the reproduction records NCPU 100%, CPU 85.9%, accelerator
/// 27.2%. Pinned: NCPU ≥ 0.99 exactly as claimed; baseline CPU in
/// (0.60, 0.95) around the paper's 0.802; accelerator in (0.15, 0.50)
/// around the paper's 0.394 (lower here because our modeled array
/// outruns the paper's silicon relative to the CPU — see fig15's note).
#[test]
fn golden_utilization_ncpu_99pct_vs_starved_baseline() {
    let model = pseudo_image_model(100);
    let soc = SocConfig::default();
    let uc = UseCase::parametric(0.76, 2, model);

    let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
    for core in &dual.cores {
        let util = core.utilization(dual.makespan);
        assert!(
            util >= 0.99,
            "{}: utilization {util:.4} below the pinned 0.99 (paper: 0.993)",
            core.role
        );
    }

    let base = run(&uc, SystemConfig::Heterogeneous, &soc);
    let util_of = |role: &str| {
        base.cores
            .iter()
            .find(|c| c.role == role)
            .unwrap_or_else(|| panic!("baseline report has a `{role}` core"))
            .utilization(base.makespan)
    };
    let cpu = util_of("cpu");
    let accel = util_of("bnn-accel");
    assert!(
        (0.60..0.95).contains(&cpu),
        "baseline CPU utilization {cpu:.3} outside (0.60, 0.95) (paper: 0.802)"
    );
    assert!(
        (0.15..0.50).contains(&accel),
        "baseline accelerator utilization {accel:.3} outside (0.15, 0.50) (paper: 0.394)"
    );
    assert!(cpu > accel + 0.2, "the baseline must be CPU-bound: cpu {cpu:.3}, accel {accel:.3}");
}

/// Fig. 9 / §V: the CPU mode's minimum-energy point sits at ≈0.5 V.
/// Pinned: the argmin of energy-per-cycle over a 10 mV grid lands in
/// [0.45 V, 0.55 V] — ±50 mV around the paper's MEP, about the step
/// between adjacent DVFS operating points.
#[test]
fn golden_cpu_mode_mep_at_half_volt() {
    let pm = PowerModel::default();
    let areas = AreaModel::default().ncpu_core(100);
    let grid: Vec<f64> = (40..=100).map(|i| i as f64 / 100.0).collect();
    let (v_mep, e_mep) = grid
        .iter()
        .map(|&v| (v, pm.energy_per_cycle_pj(CoreKind::NcpuCpuMode, &areas, v, 1.0)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty grid");
    assert!(
        (0.45..=0.55).contains(&v_mep),
        "CPU-mode MEP at {v_mep} V (energy {e_mep:.2} pJ/cycle); paper pins ≈0.5 V"
    );
    // The curve must actually be a valley: nominal voltage costs more.
    let e_nominal = pm.energy_per_cycle_pj(CoreKind::NcpuCpuMode, &areas, 1.0, 1.0);
    assert!(
        e_nominal > 1.5 * e_mep,
        "energy at 1.0 V ({e_nominal:.2} pJ) should clearly exceed the MEP ({e_mep:.2} pJ)"
    );
}
