//! The paper's headline claims, asserted as tests (relative quantities;
//! see EXPERIMENTS.md for the full paper-vs-measured record).

use ncpu::prelude::*;

fn pseudo_image_model(neurons: usize) -> BnnModel {
    let topo = Topology::paper(784, neurons, 10);
    let layers = (0..4)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 13 + j * 3 + l) % 5 < 2)))
                .collect();
            ncpu::bnn::BnnLayer::new(rows, vec![0; neurons])
        })
        .collect();
    BnnModel::new(topo, layers)
}

/// "a single NCPU achieves 35% area reduction" (abstract).
#[test]
fn claim_area_reduction_35pct() {
    let am = AreaModel::default();
    let saving = am.area_saving(100);
    assert!((0.32..0.40).contains(&saving), "area saving {saving} vs paper 0.357");
}

/// "13.1% core overhead … 2.7% including SRAM" (Fig. 10).
#[test]
fn claim_small_reconfiguration_overhead() {
    let am = AreaModel::default();
    assert!((am.core_logic_overhead(100) - 0.131).abs() < 0.005);
    assert!((0.01..0.05).contains(&am.total_overhead(100)));
}

/// "41.2% end-to-end improvement at 70% CPU fraction, 28.5% at 40%"
/// (Fig. 13) — the quantitative centerpiece.
#[test]
fn claim_fig13_improvements() {
    let model = pseudo_image_model(100);
    let soc = SocConfig::default();
    for (fraction, expect) in [(0.7, 0.412), (0.4, 0.285)] {
        let uc = UseCase::parametric(fraction, 2, model.clone());
        let base = run(&uc, SystemConfig::Heterogeneous, &soc);
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        let improvement = dual.improvement_over(&base);
        assert!(
            (improvement - expect).abs() < 0.06,
            "fraction {fraction}: {improvement} vs paper {expect}"
        );
    }
}

/// "1.6 TOPS/W at 1 V and a peak of 6.0 TOPS/W at 0.4 V" (Fig. 9).
#[test]
fn claim_tops_per_watt() {
    let pm = PowerModel::default();
    assert!((1.3..1.9).contains(&pm.bnn_tops_per_watt(1.0, 400)));
    assert!((5.0..7.0).contains(&pm.bnn_tops_per_watt(0.4, 400)));
}

/// "energy overhead at 1 V … 12.6% energy saving at 0.4 V" with a
/// crossover below 0.6 V (Fig. 12(b)).
#[test]
fn claim_energy_crossover() {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let ncpu = am.ncpu_core(100);
    let hetero = am.heterogeneous(100);
    let saving = |v: f64| {
        let e_n = (pm.dynamic_mw(CoreKind::NcpuBnnMode, v, 1.0) + pm.leakage_mw(&ncpu, v))
            / pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode);
        let e_b = (pm.dynamic_mw(CoreKind::StandaloneBnn, v, 1.0) + pm.leakage_mw(&hetero, v))
            / pm.dvfs.freq_hz(v, CoreKind::StandaloneBnn);
        1.0 - e_n / e_b
    };
    assert!(saving(1.0) < 0.0, "NCPU pays an energy overhead at nominal voltage");
    assert!(saving(0.4) > 0.08, "the area saving converts to energy saving at 0.4 V");
    assert!(saving(0.55) > saving(0.7), "saving grows as voltage drops");
}

/// "smooth switching … to realize full utilization of the cores"
/// (abstract) — and batching sustains it (Fig. 14).
#[test]
fn claim_full_utilization_across_batches() {
    let model = pseudo_image_model(50);
    let soc = SocConfig::default();
    for batch in [2usize, 10, 30] {
        let uc = UseCase::parametric(0.6, batch, model.clone());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        for core in &dual.cores {
            assert!(
                core.utilization(dual.makespan) > 0.95,
                "batch {batch}: {} at {:.3}",
                core.role,
                core.utilization(dual.makespan)
            );
        }
    }
}

/// Table II context: the CPU mode is a competitive 32-bit 5-stage MCU-class
/// core (DMIPS/MHz within the commercial band).
#[test]
fn claim_cpu_mode_is_mcu_class() {
    let iters = 100;
    let program = ncpu::workloads::dhrystone::program(iters);
    let mut cpu = Pipeline::new(program, FlatMem::new(2048));
    let cycles = cpu.run(50_000_000).unwrap();
    let score = ncpu::workloads::dhrystone::dmips_per_mhz(iters, cycles);
    assert!((0.25..2.5).contains(&score), "DMIPS/MHz {score} outside the Table II band");
}

/// Fig. 18 claim: the area-saving benefit shrinks as the accelerator
/// grows — the design point balances accuracy against the saving.
#[test]
fn claim_area_saving_shrinks_with_accelerator_size() {
    let am = AreaModel::default();
    let s: Vec<f64> = [50, 100, 200, 400].iter().map(|&n| am.area_saving(n)).collect();
    assert!(s.windows(2).all(|w| w[0] > w[1]), "monotone decreasing: {s:?}");
}
