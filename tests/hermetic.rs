//! Hermeticity: the dependency tree is workspace-only, so the tier-1
//! verify (`cargo build --release && cargo test -q`) works fully offline.
//!
//! Parses the checked-in `Cargo.lock` directly — if any crate ever grows a
//! crates.io / git dependency, this test names it before CI ever needs the
//! network.

use std::path::Path;

fn lockfile() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.lock");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// One `[[package]]` stanza, minimally parsed.
fn packages(lock: &str) -> Vec<Vec<&str>> {
    let mut out = Vec::new();
    let mut current: Option<Vec<&str>> = None;
    for line in lock.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            if let Some(p) = current.take() {
                out.push(p);
            }
            current = Some(Vec::new());
        } else if let Some(p) = current.as_mut() {
            if line.starts_with('[') {
                out.push(current.take().expect("open stanza"));
            } else if !line.is_empty() {
                p.push(line);
            }
        }
    }
    out.extend(current);
    out
}

fn field<'a>(package: &[&'a str], key: &str) -> Option<&'a str> {
    package.iter().find_map(|l| {
        l.strip_prefix(key)
            .and_then(|rest| rest.trim_start().strip_prefix('='))
            .map(|v| v.trim().trim_matches('"'))
    })
}

#[test]
fn lockfile_has_no_external_packages() {
    let lock = lockfile();
    let packages = packages(&lock);
    assert!(!packages.is_empty(), "lockfile parses");
    for p in &packages {
        let name = field(p, "name").expect("package has a name");
        assert!(
            name == "ncpu" || name.starts_with("ncpu-"),
            "non-workspace package `{name}` in Cargo.lock — the zero-dependency \
             policy (DESIGN.md §6) forbids external crates"
        );
        assert!(
            field(p, "source").is_none(),
            "package `{name}` has a source (registry/git); workspace path \
             dependencies must have none"
        );
        assert!(
            field(p, "checksum").is_none(),
            "package `{name}` has a registry checksum; workspace path \
             dependencies must have none"
        );
    }
}

/// The parallel execution layer must stay dependency-free: determinism
/// and offline builds both lean on `ncpu-par` being pure `std::thread`
/// plus channels. Its lockfile stanza may list workspace crates only
/// (today: just the dev-dependency on the testkit).
#[test]
fn ncpu_par_has_no_external_dependencies() {
    let lock = lockfile();
    let packages = packages(&lock);
    let par = packages
        .iter()
        .find(|p| field(p, "name") == Some("ncpu-par"))
        .expect("ncpu-par in Cargo.lock");
    let mut in_deps = false;
    for line in par {
        if *line == "dependencies = [" {
            in_deps = true;
        } else if in_deps {
            if *line == "]" {
                break;
            }
            let dep = line.trim_matches(|c| c == '"' || c == ',');
            assert!(
                dep.starts_with("ncpu-"),
                "ncpu-par depends on non-workspace crate `{dep}`"
            );
        }
    }
}

#[test]
fn lockfile_covers_every_workspace_crate() {
    let lock = lockfile();
    let packages = packages(&lock);
    let names: Vec<&str> = packages.iter().filter_map(|p| field(p, "name")).collect();
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ exists") {
        let dir = entry.expect("dir entry").file_name();
        let member = format!("ncpu-{}", dir.to_string_lossy());
        assert!(
            names.contains(&member.as_str()),
            "workspace member `{member}` missing from Cargo.lock"
        );
    }
    assert!(names.contains(&"ncpu"), "root crate in lockfile");
}
