//! Reproducibility: every simulated and trained quantity is a pure
//! function of its seeds — two runs of anything give identical bytes.

use ncpu::prelude::*;

#[test]
fn soc_runs_are_bit_reproducible() {
    let mk = || {
        let uc = UseCase::motion(2, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        (base.makespan, dual.makespan, base.predictions, dual.predictions)
    };
    assert_eq!(mk(), mk());
}

/// Both paper use cases, end to end, from fresh state: the *entire* report
/// (every core's busy time, every prediction, every label — via the Debug
/// rendering) must come out byte-identical across runs.
#[test]
fn image_use_case_reports_are_byte_identical() {
    let mk = || {
        let uc = UseCase::image(3, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        format!("{base:?}\n{dual:?}")
    };
    assert_eq!(mk(), mk(), "image-classification reports must be byte-identical");
}

#[test]
fn motion_use_case_reports_are_byte_identical() {
    let mk = || {
        let uc = UseCase::motion(3, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        format!("{base:?}\n{dual:?}")
    };
    assert_eq!(mk(), mk(), "motion-detection reports must be byte-identical");
}

/// The exported observability artifacts are part of the reproducibility
/// contract: two identical traced runs must render byte-identical
/// `RUN_*.json` and Chrome-trace documents.
#[test]
fn trace_artifacts_are_byte_identical() {
    let mk = || {
        let uc = UseCase::motion(2, 4, 2);
        let (dual, rec) = run_traced(
            &uc,
            SystemConfig::Ncpu { cores: 2 },
            &SocConfig::default(),
            TraceLevel::Full,
        );
        let artifact = dual.artifact(uc.name(), &rec);
        (artifact.to_json(), ncpu::obs::chrome_trace(&rec, &dual.thread_names()))
    };
    let (run_a, trace_a) = mk();
    let (run_b, trace_b) = mk();
    assert_eq!(run_a, run_b, "RUN_*.json must be byte-identical across runs");
    assert_eq!(trace_a, trace_b, "Chrome trace must be byte-identical across runs");
}

#[test]
fn training_is_bit_reproducible() {
    use ncpu::bnn::data::Dataset;
    use ncpu::bnn::train::{train, TrainConfig};
    let inputs: Vec<BitVec> =
        (0..30u32).map(|i| BitVec::from_bools((0..12).map(move |b| (i >> b) & 1 == 1))).collect();
    let labels: Vec<usize> = inputs.iter().map(|x| (x.count_ones() > 6) as usize).collect();
    let data = Dataset::new(inputs, labels, 2);
    let topo = Topology::new(12, vec![6], 2);
    let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
    let a = ncpu::bnn::io::to_bytes(&train(&topo, &data, &cfg));
    let b = ncpu::bnn::io::to_bytes(&train(&topo, &data, &cfg));
    assert_eq!(a, b, "trained artifacts must be byte-identical");
}

/// Parallel minibatch training reduces per-sample gradients in fixed
/// sample order, so the exported model must be byte-identical for any
/// worker count — `NCPU_THREADS=1` (pure serial, no threads spawned)
/// versus `NCPU_THREADS=8` here.
///
/// Flipping the process-global `NCPU_THREADS` mid-suite is safe precisely
/// because of the property under test: no output in this workspace may
/// depend on it.
#[test]
fn training_is_thread_count_invariant() {
    use ncpu::bnn::data::Dataset;
    use ncpu::bnn::train::{train, TrainConfig};
    let inputs: Vec<BitVec> =
        (0..40u32).map(|i| BitVec::from_bools((0..24).map(move |b| (i >> (b % 6)) & 1 == 1))).collect();
    let labels: Vec<usize> = inputs.iter().map(|x| (x.count_ones() % 3 == 0) as usize).collect();
    let data = Dataset::new(inputs, labels, 2);
    let topo = Topology::new(24, vec![12, 8], 2);
    let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
    let at = |threads: &str| {
        std::env::set_var("NCPU_THREADS", threads);
        let bytes = ncpu::bnn::io::to_bytes(&train(&topo, &data, &cfg));
        std::env::remove_var("NCPU_THREADS");
        bytes
    };
    assert_eq!(
        at("1"),
        at("8"),
        "trained artifacts must not depend on the worker count"
    );
}

/// Runs `f` once under each `NCPU_THREADS` value and asserts the two
/// outputs are byte-identical, restoring whatever value the suite was
/// launched with (ci.sh runs this file under both `NCPU_THREADS=1` and
/// `NCPU_THREADS=4`).
fn thread_count_invariant<F: Fn() -> String>(a: &str, b: &str, f: F) {
    let prev = std::env::var("NCPU_THREADS").ok();
    std::env::set_var("NCPU_THREADS", a);
    let out_a = f();
    std::env::set_var("NCPU_THREADS", b);
    let out_b = f();
    match prev {
        Some(v) => std::env::set_var("NCPU_THREADS", v),
        None => std::env::remove_var("NCPU_THREADS"),
    }
    assert_eq!(out_a, out_b, "output differs between NCPU_THREADS={a} and NCPU_THREADS={b}");
}

/// Fig. 13 fans its latency sweep out through the pool; the rendered
/// figure must be byte-identical whether the pool is one worker (pure
/// serial, no threads spawned) or eight.
#[test]
fn fig13_report_is_thread_count_invariant() {
    thread_count_invariant("1", "8", || {
        ncpu_bench::experiments::run_by_id("fig13").expect("known id").to_string()
    });
}

/// The exported RUN_*.json and Chrome-trace artifacts must not depend on
/// the worker count either — pool parallelism lives strictly outside the
/// traced simulation.
#[test]
fn trace_artifacts_are_thread_count_invariant() {
    thread_count_invariant("1", "8", || {
        let uc = UseCase::motion(2, 4, 2);
        let (dual, rec) = run_traced(
            &uc,
            SystemConfig::Ncpu { cores: 2 },
            &SocConfig::default(),
            TraceLevel::Full,
        );
        let artifact = dual.artifact(uc.name(), &rec);
        format!(
            "{}\n{}",
            artifact.to_json(),
            ncpu::obs::chrome_trace(&rec, &dual.thread_names())
        )
    });
}

/// The metrics block of the run artifact — per-item latency, service,
/// queue-depth, and per-core utilization histograms — must be
/// byte-identical across worker counts and across the lockstep and
/// event-driven engines (the analytic path is covered by the artifact
/// test above; lockstep/event equivalence is fuzzed in
/// `engine_differential.rs`, and pinned here on a fixed workload).
#[test]
fn metrics_histograms_are_thread_count_invariant() {
    use ncpu::soc::{Engine, EventDriven, Lockstep};
    thread_count_invariant("1", "4", || {
        let uc = UseCase::motion(2, 4, 2);
        let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores: 2 });
        let (_, ls_rec) = Lockstep.run(&scenario);
        let (_, ev_rec) = EventDriven.run(&scenario);
        let (ls, ev) = (ls_rec.metrics().to_json(), ev_rec.metrics().to_json());
        assert_eq!(ls, ev, "lockstep and event metrics must agree");
        assert!(ls.contains("item.latency_cycles"), "latency histogram missing");
        assert!(ls.contains("core.util_permille"), "utilization histogram missing");
        ls
    });
}

/// A faulted run is as reproducible as a clean one: with a seeded
/// fault plan attached, the full report, the fault counters, and the
/// recovery histograms must come out byte-identical across runs and
/// across worker counts, for every engine that simulates recovery.
#[test]
fn faulted_runs_are_byte_identical_across_thread_counts() {
    use ncpu::soc::{Analytic, Engine, EventDriven, Lockstep};
    let plan = FaultPlan {
        seed: 21,
        sram_flip_ppm: 250_000,
        dma_stall_ppm: 150_000,
        dma_stall_cycles: 48,
        dma_truncate_ppm: 150_000,
        core_hang_ppm: 80_000,
        watchdog_cycles: 20_000_000,
        max_retries: 2,
        backoff_cycles: 32,
        quarantine_after: 4,
    };
    thread_count_invariant("1", "4", || {
        let uc = UseCase::image(4, 2, 1);
        let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores: 4 })
            .with_trace(TraceLevel::Full)
            .with_operating_point(0.9)
            .with_faults(plan);
        let (an_report, an_rec) = Analytic.run(&scenario);
        let (ls_report, ls_rec) = Lockstep.run(&scenario);
        let (ev_report, ev_rec) = EventDriven.run(&scenario);
        assert!(
            ls_rec.counters().get("fault.injected.sram_flip")
                + ls_rec.counters().get("fault.injected.dma_stall")
                + ls_rec.counters().get("fault.injected.dma_truncate")
                + ls_rec.counters().get("fault.injected.core_hang")
                > 0,
            "the plan must inject something for this test to mean anything"
        );
        format!(
            "{an_report:?}\n{}\n{}\n{ls_report:?}\n{}\n{}\n{ev_report:?}\n{}\n{}",
            an_rec.counters().to_json(),
            an_rec.metrics().to_json(),
            ls_rec.counters().to_json(),
            ls_rec.metrics().to_json(),
            ev_rec.counters().to_json(),
            ev_rec.metrics().to_json(),
        )
    });
}

/// A fleet histogram — per-scenario latency histograms merged through
/// `Pool::par_map_fold` — must come out byte-identical for any worker
/// count: the map fans out, the fold stays in scenario index order.
#[test]
fn merged_fleet_histogram_is_worker_count_invariant() {
    use ncpu::soc::{Analytic, Engine};
    let merged = |workers: usize| {
        let scenarios: Vec<Scenario> = (1..=3)
            .map(|cores| {
                let uc = UseCase::parametric(0.5, 4, crate_pseudo_model());
                Scenario::new(uc, SystemConfig::Ncpu { cores })
            })
            .collect();
        ncpu_par::Pool::with_workers(workers).par_map_fold(
            scenarios,
            |_, s| {
                let (report, _) = Analytic.run(&s);
                report.metrics.get("item.latency_cycles").cloned().unwrap_or_default()
            },
            ncpu::obs::CycleHistogram::new(),
            |mut acc, h| {
                acc.merge(&h);
                acc
            },
        )
    };
    let serial = merged(1);
    assert!(!serial.is_empty(), "fleet histogram must observe items");
    assert_eq!(serial.to_json(), merged(4).to_json());
    assert_eq!(serial.to_json(), merged(8).to_json());
}

/// The soc crate's canonical deterministic pseudo model, small enough
/// for a sweep of scenarios.
fn crate_pseudo_model() -> BnnModel {
    ncpu::soc::pseudo_model(64, 10, 10)
}

/// The full fleet-service transcript — request ids, cache verdicts,
/// counters, and every report byte — must be identical whether the
/// fleet runs one worker or four. The 8-request input holds 4
/// duplicates, so this also pins that warm (cached) responses carry
/// exactly the bytes of their cold (fresh) twins at both worker counts.
#[test]
fn serve_transcripts_are_thread_count_invariant() {
    use ncpu::serve::{serve_lines, Fleet, ServeConfig};
    let input = "{\"cpu_fraction\":0.25,\"batch\":2,\"cores\":1}\n\
                 {\"cpu_fraction\":0.75,\"batch\":2,\"cores\":2}\n\
                 {\"cpu_fraction\":0.25,\"batch\":2,\"cores\":1}\n\
                 {\"workload\":\"motion\",\"batch\":2,\"train_per_class\":4,\"epochs\":2}\n\
                 {\"cpu_fraction\":0.75,\"batch\":2,\"cores\":2}\n\
                 {\"scenario\":{\"cpu_fraction\":0.25,\"batch\":2,\"cores\":1}}\n\
                 {\"workload\":\"motion\",\"batch\":2,\"train_per_class\":4,\"epochs\":2}\n\
                 {\"cpu_fraction\":0.25,\"batch\":2,\"cores\":1,\"engine\":\"lockstep\"}\n\
                 {\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n";
    let transcript = || {
        let mut fleet = Fleet::from_env(64);
        let mut out = Vec::new();
        serve_lines(&mut fleet, input.as_bytes(), &mut out, &ServeConfig::default())
            .expect("in-memory serve cannot fail");
        String::from_utf8(out).expect("responses are UTF-8")
    };
    thread_count_invariant("1", "4", transcript);

    // Cold/warm byte identity inside one transcript: requests 3, 5, 6,
    // and 8 duplicate earlier scenarios (8 via nesting, field order,
    // and an explicit engine pin inside the lockstep/event class).
    let out = transcript();
    let report = |line: &str| line.split_once("\"report\":").map(|(_, r)| r.to_string());
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].contains("\"cache\":\"miss\"") && lines[2].contains("\"cache\":\"hit\""));
    assert_eq!(report(lines[0]), report(lines[2]));
    assert_eq!(report(lines[1]), report(lines[4]));
    assert_eq!(report(lines[3]), report(lines[6]));
    assert_eq!(report(lines[0]), report(lines[5]));
    assert_eq!(report(lines[0]), report(lines[7]));
    assert!(lines[8].contains("\"serve.cache.hits\":5"), "stats line: {}", lines[8]);
    assert!(lines[8].contains("\"serve.cache.misses\":3"), "stats line: {}", lines[8]);
}

#[test]
fn power_model_is_pure() {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    let probe = |v: f64| {
        (
            pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode).to_bits(),
            pm.total_mw(CoreKind::NcpuBnnMode, &areas, v, 1.0).to_bits(),
        )
    };
    assert_eq!(probe(0.6), probe(0.6));
}
