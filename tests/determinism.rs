//! Reproducibility: every simulated and trained quantity is a pure
//! function of its seeds — two runs of anything give identical bytes.

use ncpu::prelude::*;

#[test]
fn soc_runs_are_bit_reproducible() {
    let mk = || {
        let uc = UseCase::motion(2, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        (base.makespan, dual.makespan, base.predictions, dual.predictions)
    };
    assert_eq!(mk(), mk());
}

/// Both paper use cases, end to end, from fresh state: the *entire* report
/// (every core's busy time, every prediction, every label — via the Debug
/// rendering) must come out byte-identical across runs.
#[test]
fn image_use_case_reports_are_byte_identical() {
    let mk = || {
        let uc = UseCase::image(3, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        format!("{base:?}\n{dual:?}")
    };
    assert_eq!(mk(), mk(), "image-classification reports must be byte-identical");
}

#[test]
fn motion_use_case_reports_are_byte_identical() {
    let mk = || {
        let uc = UseCase::motion(3, 4, 2);
        let base = run(&uc, SystemConfig::Heterogeneous, &SocConfig::default());
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &SocConfig::default());
        format!("{base:?}\n{dual:?}")
    };
    assert_eq!(mk(), mk(), "motion-detection reports must be byte-identical");
}

/// The exported observability artifacts are part of the reproducibility
/// contract: two identical traced runs must render byte-identical
/// `RUN_*.json` and Chrome-trace documents.
#[test]
fn trace_artifacts_are_byte_identical() {
    let mk = || {
        let uc = UseCase::motion(2, 4, 2);
        let (dual, rec) = run_traced(
            &uc,
            SystemConfig::Ncpu { cores: 2 },
            &SocConfig::default(),
            TraceLevel::Full,
        );
        let artifact = dual.artifact(uc.name(), &rec);
        (artifact.to_json(), ncpu::obs::chrome_trace(&rec, &dual.thread_names()))
    };
    let (run_a, trace_a) = mk();
    let (run_b, trace_b) = mk();
    assert_eq!(run_a, run_b, "RUN_*.json must be byte-identical across runs");
    assert_eq!(trace_a, trace_b, "Chrome trace must be byte-identical across runs");
}

#[test]
fn training_is_bit_reproducible() {
    use ncpu::bnn::data::Dataset;
    use ncpu::bnn::train::{train, TrainConfig};
    let inputs: Vec<BitVec> =
        (0..30u32).map(|i| BitVec::from_bools((0..12).map(move |b| (i >> b) & 1 == 1))).collect();
    let labels: Vec<usize> = inputs.iter().map(|x| (x.count_ones() > 6) as usize).collect();
    let data = Dataset::new(inputs, labels, 2);
    let topo = Topology::new(12, vec![6], 2);
    let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
    let a = ncpu::bnn::io::to_bytes(&train(&topo, &data, &cfg));
    let b = ncpu::bnn::io::to_bytes(&train(&topo, &data, &cfg));
    assert_eq!(a, b, "trained artifacts must be byte-identical");
}

#[test]
fn power_model_is_pure() {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    let probe = |v: f64| {
        (
            pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode).to_bits(),
            pm.total_mw(CoreKind::NcpuBnnMode, &areas, v, 1.0).to_bits(),
        )
    };
    assert_eq!(probe(0.6), probe(0.6));
}
