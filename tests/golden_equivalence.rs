//! Golden equivalence: the Scenario/Engine refactor must reproduce the
//! pre-refactor `RunReport`s **exactly** for the paper's configurations.
//!
//! Every number below was captured by running the seed (pre-`fabric`)
//! code on these exact inputs. Unlike `golden_values.rs` (banded paper
//! numbers), these are byte-identity pins: the refactored engines share
//! one fabric, and sharing must not shift a single cycle. If a future
//! change moves one of these on purpose (e.g. a scheduler fix), update
//! the pins in the same commit with a note on why.

use ncpu::prelude::*;
use ncpu::soc::{EventDriven as EventEngine, Lockstep as LockstepEngine, RunReport};

/// The soc crate's internal deterministic test model, replicated: 4
/// hidden layers of `neurons`, weights `(i*7 + j*3 + l) % 5 < 2`, biases
/// `(j % 3) - 1`.
fn pseudo_model(input: usize, neurons: usize, classes: usize) -> BnnModel {
    let topo = Topology::new(input, vec![neurons; 4], classes);
    let layers = (0..4)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2)))
                .collect();
            let bias = (0..neurons).map(|j| (j as i32 % 3) - 1).collect();
            ncpu::bnn::BnnLayer::new(rows, bias)
        })
        .collect();
    BnnModel::new(topo, layers)
}

fn check(report: &RunReport, makespan: u64, predictions: &[usize], busy: &[u64]) {
    assert_eq!(report.makespan, makespan, "{}: makespan", report.config);
    assert_eq!(report.predictions, predictions, "{}: predictions", report.config);
    let got: Vec<u64> = report.cores.iter().map(|c| c.busy_cycles).collect();
    assert_eq!(got, busy, "{}: per-core busy cycles", report.config);
}

#[test]
fn analytic_engine_reproduces_pre_refactor_parametric_reports() {
    let model = pseudo_model(784, 100, 10);
    // (fraction, het, ncpu1, ncpu2) — makespans captured from the seed.
    let table = [
        (0.7, (6180, [5052, 2176]), 7266, 3633),
        (0.76, (8004, [6876, 2176]), 9090, 4545),
    ];
    for (fraction, (het_makespan, het_busy), n1, n2) in table {
        let uc = UseCase::parametric(fraction, 2, model.clone());
        let het = Analytic
            .report(&Scenario::new(uc.clone(), SystemConfig::Heterogeneous));
        check(&het, het_makespan, &[2, 2], &het_busy);
        let one =
            Analytic.report(&Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 1 }));
        check(&one, n1, &[2, 2], &[n1]);
        let two =
            Analytic.report(&Scenario::new(uc, SystemConfig::Ncpu { cores: 2 }));
        check(&two, n2, &[2, 2], &[n2, n2]);
        assert_eq!(
            fraction == 0.7,
            (two.improvement_over(&het) - 0.412).abs() < 0.01,
            "paper Fig. 13 band"
        );
    }
}

#[test]
fn analytic_engine_reproduces_pre_refactor_motion_report() {
    let uc = UseCase::motion(2, 4, 2);
    let het = Analytic.report(&Scenario::new(uc.clone(), SystemConfig::Heterogeneous));
    check(&het, 43866, &[3, 2], &[42502, 1040]);
    let two = Analytic.report(&Scenario::new(uc, SystemConfig::Ncpu { cores: 2 }));
    check(&two, 22591, &[3, 2], &[21791, 21791]);
}

#[test]
fn lockstep_engine_reproduces_pre_refactor_cosim_report() {
    let uc = UseCase::parametric(0.6, 4, pseudo_model(784, 30, 10));
    let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores: 2 });
    let (report, rec) = LockstepEngine.run(&scenario);
    check(&report, 4414, &[2, 2, 2, 2], &[4414, 4414]);
    assert_eq!(report.config, "2x ncpu (lockstep)");
    assert_eq!(rec.counters().get("soc.l2_conflict_cycles"), 2, "arbitration conflicts");
}

/// The event-driven engine is pinned to the *same* pre-refactor goldens
/// as the lock-step engine: jumping between events and replaying
/// steady-state items must not shift a single cycle.
#[test]
fn event_engine_reproduces_pre_refactor_cosim_report() {
    let uc = UseCase::parametric(0.6, 4, pseudo_model(784, 30, 10));
    let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores: 2 });
    let (report, rec) = EventEngine.run(&scenario);
    check(&report, 4414, &[2, 2, 2, 2], &[4414, 4414]);
    assert_eq!(report.config, "2x ncpu (event)");
    assert_eq!(rec.counters().get("soc.l2_conflict_cycles"), 2, "arbitration conflicts");
}
