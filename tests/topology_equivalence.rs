//! Topology equivalence: the heterogeneous-fabric refactor must be
//! invisible until asked for.
//!
//! * An explicit `Topology::homogeneous(n)` is **byte-identical** to
//!   leaving the topology unset — same `RunReport`, same counter
//!   registry, same `ncpu-scenario-v2` cache key — across the analytic,
//!   lock-step, and event-driven engines (a seeded property, not one
//!   example).
//! * The pre-refactor golden cosim pins (`golden_equivalence.rs`) hold
//!   under an explicit default topology too.
//! * On genuinely mixed fleets the twin engines stay byte-identical to
//!   each other, fixed-function cores stay out of the item plan, and
//!   the deep engine places segments on BNN-capable cores only.

use ncpu::prelude::*;
use ncpu::soc::topology::{CoreRole, CoreSpec, SchedulerKind, Topology as FleetTopology};
use ncpu::soc::{Deep, EventDriven as EventEngine, Lockstep as LockstepEngine, RunReport, L2_BYTES};
use ncpu_testkit::prop::Prop;
use ncpu_testkit::prop_assert_eq;

use ncpu::soc::{pseudo_deep_model, pseudo_model};

/// (fraction %, batch, wide input?, core selector, op selector, full trace?)
type Draw = (u8, u8, bool, u8, u8, bool);

fn scenario_from(draw: &Draw, topology: Option<FleetTopology>) -> Scenario {
    let &(frac, batch, wide, cores_sel, op_sel, full_trace) = draw;
    let cores = [1usize, 2, 4][cores_sel as usize % 3];
    let input = if wide { 256 } else { 64 };
    let uc = UseCase::parametric(
        f64::from(5 + u32::from(frac) % 81) / 100.0,
        1 + batch as usize % 4,
        pseudo_model(input, 12, 10),
    );
    let mut scenario = Scenario::new(uc, SystemConfig::Ncpu { cores })
        .with_trace(if full_trace { TraceLevel::Full } else { TraceLevel::Counters });
    if op_sel % 4 != 0 {
        scenario = scenario.with_operating_point(0.6 + f64::from(op_sel % 4) / 10.0);
    }
    if let Some(topo) = topology {
        scenario = scenario.with_topology(topo);
    }
    scenario
}

/// An explicit homogeneous default must not move a byte anywhere: not
/// in the reports, not in the counter registries, not in the v2 cache
/// key — for every engine that can run the scenario.
#[test]
fn explicit_homogeneous_topology_is_byte_identical_to_the_default() {
    Prop::new("explicit_homogeneous_topology_is_byte_identical_to_the_default").cases(48).run(
        |rng| {
            (
                rng.gen_range(0..=255u32) as u8,
                rng.gen_range(0..=255u32) as u8,
                rng.gen_bool(0.5),
                rng.gen_range(0..=255u32) as u8,
                rng.gen_range(0..=255u32) as u8,
                rng.gen_bool(0.5),
            )
        },
        |draw| {
            let unset = scenario_from(draw, None);
            let cores = [1usize, 2, 4][draw.3 as usize % 3];
            let explicit = scenario_from(draw, Some(FleetTopology::homogeneous(cores)));
            prop_assert_eq!(unset.cache_key(), explicit.cache_key(), "v2 cache key moved");
            for engine in [
                &Analytic as &dyn Engine,
                &LockstepEngine as &dyn Engine,
                &EventEngine as &dyn Engine,
            ] {
                let (r0, rec0) = engine.run(&unset);
                let (r1, rec1) = engine.run(&explicit);
                prop_assert_eq!(
                    format!("{r1:?}"),
                    format!("{r0:?}"),
                    "{}: RunReport moved",
                    engine.name()
                );
                prop_assert_eq!(
                    rec1.counters().to_json(),
                    rec0.counters().to_json(),
                    "{}: counters moved",
                    engine.name()
                );
            }
            Ok(())
        },
    );
}

/// The `golden_equivalence.rs` cosim pins, replayed with the topology
/// spelled out: the refactor's default path is the historical path.
#[test]
fn golden_cosim_pins_hold_under_an_explicit_default_topology() {
    let uc = UseCase::parametric(0.6, 4, pseudo_model(784, 30, 10));
    let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores: 2 })
        .with_topology(FleetTopology::homogeneous(2));
    for (report, rec, config) in [
        {
            let (r, rec) = LockstepEngine.run(&scenario);
            (r, rec, "2x ncpu (lockstep)")
        },
        {
            let (r, rec) = EventEngine.run(&scenario);
            (r, rec, "2x ncpu (event)")
        },
    ] {
        assert_eq!(report.makespan, 4414, "{config}: golden makespan");
        assert_eq!(report.predictions, [2, 2, 2, 2], "{config}: golden predictions");
        let busy: Vec<u64> = report.cores.iter().map(|c| c.busy_cycles).collect();
        assert_eq!(busy, [4414, 4414], "{config}: golden busy cycles");
        assert_eq!(report.config, config);
        assert_eq!(rec.counters().get("soc.l2_conflict_cycles"), 2, "{config}: conflicts");
    }
}

/// A genuinely mixed fleet: one nominal reconfigurable core, one 0.7 V
/// reconfigurable core on its own narrow L2 bank, a fixed BNN array,
/// and a CPU-only core. Both schedulers, both twin engines.
fn mixed_fleet(sched: SchedulerKind) -> FleetTopology {
    let mut specs = vec![CoreSpec::reconfigurable(); 4];
    specs[1].operating_point = Some(0.7);
    specs[1].bank = 1;
    specs[2].role = CoreRole::BnnOnly;
    specs[3].role = CoreRole::CpuOnly;
    FleetTopology::from_specs(specs, vec![3 * L2_BYTES / 4, L2_BYTES / 4], sched)
        .expect("mixed fleet is structurally valid")
}

fn normalized(report: &RunReport, tag: &str) -> String {
    assert!(report.config.ends_with(tag), "{} should end with {tag}", report.config);
    format!("{report:?}").replace(tag, "(engine)")
}

#[test]
fn twin_engines_stay_byte_identical_on_mixed_fleets() {
    let uc = UseCase::parametric(0.6, 6, pseudo_model(256, 16, 10));
    for sched in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
        let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 4 })
            .with_topology(mixed_fleet(sched));
        let (ls, ls_rec) = LockstepEngine.run(&scenario);
        let (ev, ev_rec) = EventEngine.run(&scenario);
        assert_eq!(
            normalized(&ev, "(event)"),
            normalized(&ls, "(lockstep)"),
            "{sched:?}: twin engines diverged on the mixed fleet"
        );
        assert_eq!(
            ev_rec.counters().to_json(),
            ls_rec.counters().to_json(),
            "{sched:?}: counters diverged"
        );
        // Roles are visible in the report, and fixed-function cores
        // never enter the item plan.
        let roles: Vec<&str> = ls.cores.iter().map(|c| c.role.as_str()).collect();
        assert_eq!(roles, ["ncpu0", "ncpu1", "bnn2", "cpu3"]);
        assert_eq!(ls.cores[2].busy_cycles, 0, "a fixed BNN array runs no items");
        assert_eq!(ls.cores[3].busy_cycles, 0, "a CPU-only core runs no items");
        assert_eq!(ls.predictions, EventEngine.report(&scenario).predictions);
    }
    // The scheduler is semantic: it changes the cache key even when it
    // happens to produce the same plan.
    let key = |s| {
        Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 4 })
            .with_topology(mixed_fleet(s))
            .cache_key()
    };
    assert_ne!(key(SchedulerKind::Static), key(SchedulerKind::WorkStealing));
}

/// The deep engine maps model segments onto BNN-capable cores only:
/// a CPU-only core holds no segment, and the placement is recorded in
/// the `deep.seg*.core` counters and `seg{s}@core{c}` roles.
#[test]
fn deep_engine_places_segments_on_bnn_capable_cores_only() {
    let model = pseudo_deep_model(64, 12, 8, 8);
    let inputs: Vec<BitVec> =
        (0..6).map(|k| BitVec::from_bools((0..64).map(|i| (i * 5 + k) % 3 == 0))).collect();
    let uc = UseCase::deep(model, &inputs);

    // Homogeneous 3-core reference: three segments, seg0..seg2.
    let reference = Deep.report(
        &Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 3 }),
    );

    // A 4-core fleet with one CPU-only core still has three BNN-capable
    // cores, so the pipeline shape — and every prediction — matches.
    let mut specs = vec![CoreSpec::reconfigurable(); 4];
    specs[1].role = CoreRole::BnnOnly;
    specs[3].role = CoreRole::CpuOnly;
    let topo = FleetTopology::from_specs(specs, vec![L2_BYTES], SchedulerKind::Static)
        .expect("deep fleet is structurally valid");
    let scenario =
        Scenario::new(uc, SystemConfig::Ncpu { cores: 4 }).with_topology(topo);
    let (report, rec) = Deep.run(&scenario);
    assert_eq!(report.predictions, reference.predictions);
    assert_eq!(report.makespan, reference.makespan, "placement must not shift the pipeline");
    let roles: Vec<&str> = report.cores.iter().map(|c| c.role.as_str()).collect();
    assert_eq!(roles, ["seg0@core0", "seg1@core1", "seg2@core2"]);
    assert_eq!(rec.counters().get("deep.seg0.core"), 0);
    assert_eq!(rec.counters().get("deep.seg1.core"), 1);
    assert_eq!(rec.counters().get("deep.seg2.core"), 2);
}
