//! Differential fuzz suite: the event-driven engine must be
//! **byte-identical** to the lock-step engine on every scenario — same
//! `RunReport`, same counter registry, same raw and sorted `ncpu-obs`
//! event streams. Random scenarios cover the full matrix (switch policy
//! × 1/2/4 cores × use-case kind × DMA operating point × trace level ×
//! DVFS point × heterogeneous topology — mixed roles, asymmetric L2
//! banks, per-core undervolting, both schedulers), seeded and
//! shrinking via `ncpu-testkit`.
//!
//! A second property checks the jump contract the engine is built on:
//! driving a core by `next_event_in`-sized `step_n` jumps never lands a
//! shared-L2 touch inside a multi-cycle jump — contended windows are
//! only ever crossed one cycle at a time.

use std::sync::OnceLock;

use ncpu::prelude::*;
use ncpu::soc::topology::{CoreRole, CoreSpec, SchedulerKind, Topology as FleetTopology};
use ncpu::soc::{EventDriven as EventEngine, Lockstep as LockstepEngine, RunReport, L2_BYTES};
use ncpu::core::StepOutcome;
use ncpu_testkit::prop::{Prop, Shrink};
use ncpu_testkit::prop_assert_eq;
use ncpu_testkit::rng::Rng;

/// The soc crate's deterministic test model (replicated here as in
/// `golden_equivalence.rs`): 4 hidden layers of `neurons`, weights
/// `(i*7 + j*3 + l) % 5 < 2`, biases `(j % 3) - 1`.
fn pseudo_model(input: usize, neurons: usize, classes: usize) -> BnnModel {
    let topo = Topology::new(input, vec![neurons; 4], classes);
    let layers = (0..4)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2)))
                .collect();
            let bias = (0..neurons).map(|j| (j as i32 % 3) - 1).collect();
            ncpu::bnn::BnnLayer::new(rows, bias)
        })
        .collect();
    BnnModel::new(topo, layers)
}

/// The non-parametric workloads train real models — build them once.
fn image_usecase() -> &'static UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| UseCase::image(2, 2, 1))
}

fn motion_usecase() -> &'static UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| UseCase::motion(2, 4, 2))
}

#[derive(Debug, Clone, PartialEq)]
enum Workload {
    /// CPU fraction in percent, batch size, hidden width, input bits.
    Parametric { fraction_pct: u32, batch: usize, neurons: usize, input: usize },
    Image,
    Motion,
}

/// Random fault-plan knobs. Rates are aggressive on purpose — a plan
/// that never fires exercises nothing.
#[derive(Debug, Clone, PartialEq)]
struct FaultCase {
    seed: u64,
    flip_ppm: u32,
    stall_ppm: u32,
    truncate_ppm: u32,
    hang_ppm: u32,
    /// A 3k-cycle watchdog trips on ordinary items, forcing the event
    /// engine down its lockstep-fallback path; the 20M default only
    /// catches injected hangs.
    watchdog_short: bool,
    max_retries: u32,
    backoff_cycles: u64,
    quarantine_after: u32,
}

impl FaultCase {
    fn plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            sram_flip_ppm: self.flip_ppm,
            dma_stall_ppm: self.stall_ppm,
            dma_stall_cycles: 48,
            dma_truncate_ppm: self.truncate_ppm,
            core_hang_ppm: self.hang_ppm,
            watchdog_cycles: if self.watchdog_short { 3_000 } else { 20_000_000 },
            max_retries: self.max_retries,
            backoff_cycles: self.backoff_cycles,
            quarantine_after: self.quarantine_after,
        }
    }
}

/// Heterogeneous-fleet knobs layered on top of the core count. The
/// concrete `soc::topology::Topology` is derived deterministically in
/// [`Case::fleet_topology`] so the knobs stay shrinkable one at a time.
#[derive(Debug, Clone, PartialEq)]
struct TopologyCase {
    /// Core 1 becomes a fixed BNN array and (on 4-core fleets) the last
    /// core CPU-only, so the dispatch plan must route around them.
    mixed_roles: bool,
    /// Split the L2 into a wide bank 0 and a narrow bank 1, odd cores
    /// on the narrow bank — per-bank port arbitration differs from the
    /// historical single port.
    asymmetric_banks: bool,
    /// Every core except core 0 runs at 0.7 V (weights the
    /// work-stealing planner and the energy model, never the clock).
    undervolt_littles: bool,
    work_stealing: bool,
}

#[derive(Debug, Clone)]
struct Case {
    workload: Workload,
    cores: usize,
    naive_switch: bool,
    dma_bytes_per_cycle: u32,
    dma_setup_cycles: u64,
    full_trace: bool,
    /// DVFS operating point in tenths of a volt (`None` = nominal).
    operating_point: Option<u32>,
    /// Fault plan the scenario carries (`None` = inert plan).
    fault: Option<FaultCase>,
    /// Heterogeneous topology (`None` = the homogeneous default).
    topology: Option<TopologyCase>,
}

impl Case {
    fn generate(rng: &mut Rng) -> Case {
        // Weight toward small parametric workloads: they explore the
        // timing space (spin length, batch, model size) cheaply, while
        // image/motion exercise the staged-DMA path.
        let workload = match rng.gen_range(0..10u32) {
            0 => Workload::Image,
            1 => Workload::Motion,
            _ => Workload::Parametric {
                fraction_pct: rng.gen_range(5..=85u32),
                batch: rng.gen_range(1..=5usize),
                neurons: rng.gen_range(10..=30usize),
                input: *[64usize, 256, 784].get(rng.gen_range(0..3usize)).unwrap(),
            },
        };
        Case {
            workload,
            cores: *[1usize, 2, 4].get(rng.gen_range(0..3usize)).unwrap(),
            naive_switch: rng.gen_bool(0.5),
            dma_bytes_per_cycle: *[1u32, 2, 4, 8].get(rng.gen_range(0..4usize)).unwrap(),
            dma_setup_cycles: *[0u64, 3, 16, 32].get(rng.gen_range(0..4usize)).unwrap(),
            full_trace: rng.gen_bool(0.5),
            operating_point: rng.gen_bool(0.3).then(|| rng.gen_range(6..=12u32)),
            // Drawn after the prefix so the corpus's earlier seeds
            // still decode the same prefix of the case.
            fault: rng.gen_bool(0.5).then(|| FaultCase {
                seed: rng.gen_range(0..1_000_000u64),
                flip_ppm: rng.gen_range(0..400_000u32),
                stall_ppm: rng.gen_range(0..300_000u32),
                truncate_ppm: rng.gen_range(0..300_000u32),
                hang_ppm: rng.gen_range(0..200_000u32),
                watchdog_short: rng.gen_bool(0.15),
                max_retries: rng.gen_range(0..=3u32),
                backoff_cycles: *[8u64, 32, 128].get(rng.gen_range(0..3usize)).unwrap(),
                quarantine_after: rng.gen_range(0..=3u32),
            }),
            // Drawn LAST (after the fault block) so every pre-topology
            // corpus seed still decodes byte-for-byte.
            topology: rng.gen_bool(0.5).then(|| TopologyCase {
                mixed_roles: rng.gen_bool(0.5),
                asymmetric_banks: rng.gen_bool(0.5),
                undervolt_littles: rng.gen_bool(0.5),
                work_stealing: rng.gen_bool(0.5),
            }),
        }
    }

    /// The concrete topology the knobs describe on this core count.
    /// Core 0 always stays reconfigurable so the fleet can run items.
    fn fleet_topology(&self) -> Option<FleetTopology> {
        let t = self.topology.as_ref()?;
        let mut specs = vec![CoreSpec::reconfigurable(); self.cores];
        if t.mixed_roles && self.cores > 1 {
            specs[1].role = CoreRole::BnnOnly;
            if self.cores > 2 {
                specs[self.cores - 1].role = CoreRole::CpuOnly;
            }
        }
        if t.undervolt_littles {
            for spec in specs.iter_mut().skip(1) {
                spec.operating_point = Some(0.7);
            }
        }
        let banks = if t.asymmetric_banks {
            for (c, spec) in specs.iter_mut().enumerate() {
                spec.bank = c % 2;
            }
            vec![3 * L2_BYTES / 4, L2_BYTES / 4]
        } else {
            vec![L2_BYTES]
        };
        let sched =
            if t.work_stealing { SchedulerKind::WorkStealing } else { SchedulerKind::Static };
        Some(FleetTopology::from_specs(specs, banks, sched).expect("generated topology is valid"))
    }

    fn scenario(&self) -> Scenario {
        let usecase = match &self.workload {
            Workload::Parametric { fraction_pct, batch, neurons, input } => UseCase::parametric(
                f64::from(*fraction_pct) / 100.0,
                *batch,
                pseudo_model(*input, *neurons, 10),
            ),
            Workload::Image => image_usecase().clone(),
            Workload::Motion => motion_usecase().clone(),
        };
        let soc = SocConfig {
            dma_bytes_per_cycle: self.dma_bytes_per_cycle,
            dma_setup_cycles: self.dma_setup_cycles,
            switch_policy: if self.naive_switch {
                SwitchPolicy::Naive
            } else {
                SwitchPolicy::ZeroLatency
            },
            ..SocConfig::default()
        };
        let mut scenario = Scenario::new(usecase, SystemConfig::Ncpu { cores: self.cores })
            .with_soc(soc)
            .with_trace(if self.full_trace { TraceLevel::Full } else { TraceLevel::Counters });
        if let Some(tenths) = self.operating_point {
            scenario = scenario.with_operating_point(f64::from(tenths) / 10.0);
        }
        if let Some(fault) = &self.fault {
            scenario = scenario.with_faults(fault.plan());
        }
        if let Some(topo) = self.fleet_topology() {
            scenario = scenario.with_topology(topo);
        }
        scenario
    }
}

impl Shrink for Case {
    fn shrink(&self) -> Vec<Case> {
        let mut out = Vec::new();
        let mut push = |c: Case| out.push(c);
        // Dropping the topology first: a divergence that needs a
        // heterogeneous fleet is a topology-threading bug, and the
        // minimal repro should say so by keeping only the guilty knob.
        if let Some(topo) = &self.topology {
            push(Case { topology: None, ..self.clone() });
            if topo.work_stealing {
                push(Case {
                    topology: Some(TopologyCase { work_stealing: false, ..topo.clone() }),
                    ..self.clone()
                });
            }
            if topo.mixed_roles {
                push(Case {
                    topology: Some(TopologyCase { mixed_roles: false, ..topo.clone() }),
                    ..self.clone()
                });
            }
            if topo.asymmetric_banks {
                push(Case {
                    topology: Some(TopologyCase { asymmetric_banks: false, ..topo.clone() }),
                    ..self.clone()
                });
            }
            if topo.undervolt_littles {
                push(Case {
                    topology: Some(TopologyCase { undervolt_littles: false, ..topo.clone() }),
                    ..self.clone()
                });
            }
        }
        // Dropping the fault plan next: most divergences that involve
        // one are simplest to debug when the plan itself is the cause.
        if let Some(fault) = &self.fault {
            push(Case { fault: None, ..self.clone() });
            if fault.watchdog_short {
                push(Case {
                    fault: Some(FaultCase { watchdog_short: false, ..fault.clone() }),
                    ..self.clone()
                });
            }
            if fault.quarantine_after > 0 {
                push(Case {
                    fault: Some(FaultCase { quarantine_after: 0, ..fault.clone() }),
                    ..self.clone()
                });
            }
        }
        if self.cores > 1 {
            push(Case { cores: self.cores / 2, ..self.clone() });
        }
        match &self.workload {
            Workload::Parametric { fraction_pct, batch, neurons, input } => {
                if *batch > 1 {
                    push(Case {
                        workload: Workload::Parametric {
                            fraction_pct: *fraction_pct,
                            batch: batch - 1,
                            neurons: *neurons,
                            input: *input,
                        },
                        ..self.clone()
                    });
                }
                if *neurons > 10 {
                    push(Case {
                        workload: Workload::Parametric {
                            fraction_pct: *fraction_pct,
                            batch: *batch,
                            neurons: 10,
                            input: *input,
                        },
                        ..self.clone()
                    });
                }
                if *input > 64 {
                    push(Case {
                        workload: Workload::Parametric {
                            fraction_pct: *fraction_pct,
                            batch: *batch,
                            neurons: *neurons,
                            input: 64,
                        },
                        ..self.clone()
                    });
                }
                if *fraction_pct != 50 {
                    push(Case {
                        workload: Workload::Parametric {
                            fraction_pct: 50,
                            batch: *batch,
                            neurons: *neurons,
                            input: *input,
                        },
                        ..self.clone()
                    });
                }
            }
            _ => push(Case {
                workload: Workload::Parametric {
                    fraction_pct: 50,
                    batch: 2,
                    neurons: 10,
                    input: 64,
                },
                ..self.clone()
            }),
        }
        if self.naive_switch {
            push(Case { naive_switch: false, ..self.clone() });
        }
        if self.dma_bytes_per_cycle != 4 || self.dma_setup_cycles != 16 {
            push(Case { dma_bytes_per_cycle: 4, dma_setup_cycles: 16, ..self.clone() });
        }
        if self.full_trace {
            push(Case { full_trace: false, ..self.clone() });
        }
        if self.operating_point.is_some() {
            push(Case { operating_point: None, ..self.clone() });
        }
        out
    }
}

/// Renders a report with the engine tag stripped from `config`, so the
/// two engines' reports can be compared as one byte string.
fn normalized(report: &RunReport, tag: &str) -> String {
    assert!(report.config.ends_with(tag), "{} should end with {tag}", report.config);
    let mut r = report.clone();
    r.config = r.config.replace(tag, "(engine)");
    format!("{r:?}")
}

fn check_case(case: &Case) -> Result<(), String> {
    let scenario = case.scenario();
    let (ls_report, ls_rec) = LockstepEngine.run(&scenario);
    let (ev_report, ev_rec) = EventEngine.run(&scenario);

    // The full report, byte for byte (modulo the engine name).
    prop_assert_eq!(
        normalized(&ev_report, "(event)"),
        normalized(&ls_report, "(lockstep)"),
        "RunReport diverged"
    );
    // The counter registries (includes soc.l2_conflict_cycles, per-core
    // pipeline/core counters, DMA and run counters).
    prop_assert_eq!(
        ev_rec.counters().to_json(),
        ls_rec.counters().to_json(),
        "counter registry diverged"
    );
    // The metrics block (latency/service/queue-depth/utilization
    // histograms), compared in its exported JSON form so the byte-level
    // artifact contract is what is actually pinned.
    prop_assert_eq!(
        ev_rec.metrics().to_json(),
        ls_rec.metrics().to_json(),
        "metrics histograms diverged"
    );
    // Raw emission-order streams and the exporter view.
    prop_assert_eq!(ev_rec.spans(), ls_rec.spans(), "span stream diverged");
    prop_assert_eq!(ev_rec.events(), ls_rec.events(), "instant stream diverged");
    prop_assert_eq!(ev_rec.dropped(), ls_rec.dropped(), "capacity drops diverged");
    prop_assert_eq!(
        ev_rec.sorted_events(),
        ls_rec.sorted_events(),
        "sorted event stream diverged"
    );
    Ok(())
}

/// 256 seeded, shrinking scenarios: EventDriven ≡ Lockstep.
#[test]
fn event_engine_is_byte_identical_to_lockstep() {
    Prop::new("event_engine_is_byte_identical_to_lockstep")
        .cases(256)
        // Known interesting corners: 4-core contention with naive
        // switching, and a staged (image) workload on the DMA path.
        .pin(&[7, 42])
        .corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/engine_differential.seeds"))
        .run(Case::generate, check_case);
}

/// The jump contract behind the event engine: driving a core by
/// `next_event_in`-sized `step_n` jumps reproduces the cycle-by-cycle
/// touch trace exactly, and no L2 touch ever lands inside a multi-cycle
/// jump (contended windows are crossed one observable cycle at a time).
#[test]
fn queue_driven_jumps_never_overshoot_l2_windows() {
    #[derive(Debug, Clone)]
    struct TouchCase {
        stores: Vec<u32>,
        spin: u32,
        naive_switch: bool,
    }
    impl Shrink for TouchCase {
        fn shrink(&self) -> Vec<TouchCase> {
            let mut out = Vec::new();
            if !self.stores.is_empty() {
                let mut fewer = self.clone();
                fewer.stores.pop();
                out.push(fewer);
            }
            if self.spin > 0 {
                out.push(TouchCase { spin: self.spin / 2, ..self.clone() });
            }
            if self.naive_switch {
                out.push(TouchCase { naive_switch: false, ..self.clone() });
            }
            out
        }
    }

    fn build_core(case: &TouchCase) -> NcpuCore {
        let policy = if case.naive_switch {
            SwitchPolicy::Naive
        } else {
            SwitchPolicy::ZeroLatency
        };
        NcpuCore::new(pseudo_model(32, 8, 4), AccelConfig::default(), policy)
    }

    fn program(core: &NcpuCore, case: &TouchCase) -> Vec<u32> {
        // L2 stores before and after a trans_bnn busy region, separated
        // by spin loops, so touches interleave with every region kind.
        let mut src = String::new();
        src.push_str("li s0, 0\nli s1, 0xbeef\n");
        for (i, off) in case.stores.iter().enumerate() {
            src.push_str(&format!("sw_l2 s1, {off}(s0)\n"));
            if i == case.stores.len() / 2 {
                src.push_str(&format!(
                    "li t0, {img}\nli t1, 0x0f0f0f0f\nsw t1, 0(t0)\n\
                     li t2, 1\nmv_neu t2, 0\ntrans_bnn\n",
                    img = core.image_base()
                ));
            }
        }
        for _ in 0..case.spin {
            src.push_str("addi s2, s2, 1\n");
        }
        src.push_str("ebreak\n");
        asm::assemble(&src).expect("valid touch program")
    }

    Prop::new("queue_driven_jumps_never_overshoot_l2_windows")
        .cases(64)
        .run(
            |rng| TouchCase {
                stores: (0..rng.gen_range(1..=6usize))
                    .map(|_| rng.gen_range(0..64u32) * 4)
                    .collect(),
                spin: rng.gen_range(0..40u32),
                naive_switch: rng.gen_bool(0.5),
            },
            |case| {
                // Reference: cycle-by-cycle walk.
                let mut reference = build_core(case);
                reference.set_l2_touch_log(true);
                reference.load_program(program(&reference, case));
                while !matches!(
                    reference.step_one().map_err(|e| e.to_string())?,
                    StepOutcome::Halted
                ) {}
                let expected = reference.take_l2_touch_cycles();

                // Jump-driven walk, recording each jump's busy window.
                let mut jumper = build_core(case);
                jumper.set_l2_touch_log(true);
                jumper.load_program(program(&jumper, case));
                let mut busy_windows: Vec<(u64, u64)> = Vec::new();
                while let Some(jump) = jumper.next_event_in() {
                    let start = jumper.total_cycles();
                    let (_, consumed) = jumper.step_n(jump).map_err(|e| e.to_string())?;
                    prop_assert_eq!(consumed, jump, "a jump must consume its full length");
                    if jump > 1 {
                        // Multi-cycle jumps only happen inside a BNN busy
                        // region; CPU-mode wakeups are always 1 cycle.
                        busy_windows.push((start + 1, start + consumed));
                    }
                }
                let got = jumper.take_l2_touch_cycles();
                prop_assert_eq!(&got, &expected, "touch traces diverged");
                prop_assert_eq!(jumper.total_cycles(), reference.total_cycles(), "clocks");
                for touch in &got {
                    let inside_busy =
                        busy_windows.iter().any(|(lo, hi)| touch >= lo && touch <= hi);
                    if inside_busy {
                        return Err(format!(
                            "touch at cycle {touch} landed inside a busy jump {busy_windows:?}"
                        ));
                    }
                }
                Ok(())
            },
        );
}
