//! Engine matrix: one scenario, every engine, any core count.
//!
//! Runs the same parametric use case through the [`Analytic`],
//! [`Lockstep`], and [`EventDriven`] engines at the requested core count
//! and prints the makespans side by side. The two co-simulating engines
//! must agree **exactly** — this example doubles as the CI smoke for the
//! event-driven scheduler at four cores:
//!
//! ```text
//! cargo run --release --example engine_matrix 4
//! ```

use ncpu::prelude::*;
use ncpu::soc::pseudo_model;

fn main() {
    let cores: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let uc = UseCase::parametric(0.6, 2 * cores.max(1), pseudo_model(784, 30, 10));
    let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores });

    let analytic = Analytic.report(&scenario);
    let lockstep = Lockstep.report(&scenario);
    let event = EventDriven.report(&scenario);

    println!("engine matrix — {} cores, batch {}", cores, analytic.predictions.len());
    println!("{:<12} {:>12}  predictions", "engine", "makespan");
    for (name, report) in
        [("analytic", &analytic), ("lockstep", &lockstep), ("event", &event)]
    {
        println!("{:<12} {:>12}  {:?}", name, report.makespan, report.predictions);
    }

    assert_eq!(
        event.makespan, lockstep.makespan,
        "the event-driven engine must match lock-step cycle for cycle"
    );
    assert_eq!(event.predictions, lockstep.predictions, "classification drift");
    assert_eq!(analytic.predictions, lockstep.predictions, "classification drift");
    println!("event == lockstep at {cores} cores: ok");
}
