//! Voltage explorer: walk the calibrated 65nm model across the paper's
//! 0.4–1.0 V operating range.
//!
//! Run with: `cargo run --release --example voltage_explorer [volts]`
//! (prints the full sweep, or the detailed picture at one voltage).

use ncpu::prelude::*;
use ncpu::soc::energy;

fn detail(v: f64) {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    println!("NCPU core at {v:.2} V:");
    for (label, kind) in
        [("CPU mode", CoreKind::NcpuCpuMode), ("BNN mode", CoreKind::NcpuBnnMode)]
    {
        let f = pm.dvfs.freq_hz(v, kind);
        println!(
            "  {label}: {:7.1} MHz, {:8.3} mW total ({:.3} dynamic + {:.3} leakage), \
             {:6.1} pJ/cycle",
            f / 1e6,
            pm.total_mw(kind, &areas, v, 1.0),
            pm.dynamic_mw(kind, v, 1.0),
            pm.leakage_mw(&areas, v),
            pm.energy_per_cycle_pj(kind, &areas, v, 1.0),
        );
    }
    println!("  BNN efficiency: {:.2} TOPS/W", pm.bnn_tops_per_watt(v, 400));
    let interval = 785u64; // 784-bit layer + sign
    let f = pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode);
    println!(
        "  image throughput: {:.0} classifications/s (1 per {interval} cycles)",
        f / interval as f64
    );

    // The same operating point threaded through a whole-SoC scenario:
    // run a small parametric batch end to end and price it at this
    // voltage via the scenario's DVFS knob.
    let model = ncpu_bench::context::pseudo_model(216, 30, 8);
    let uc = UseCase::parametric(0.3, 2, model);
    let scenario = |system| Scenario::new(uc.clone(), system).with_operating_point(v);
    let dual_scenario = scenario(SystemConfig::Ncpu { cores: 2 });
    let base = Analytic.report(&scenario(SystemConfig::Heterogeneous));
    let dual = Analytic.report(&dual_scenario);
    let volts = dual_scenario.volts();
    let (e_base, e_dual) = (
        energy::run_energy_uj(&base, &pm, &am, 30, volts),
        energy::run_energy_uj(&dual, &pm, &am, 30, volts),
    );
    println!(
        "  end-to-end 2-item batch at {volts:.2} V: heterogeneous {e_base:.3} µJ, \
         2×NCPU {e_dual:.3} µJ ({:+.1}%)",
        (e_dual / e_base - 1.0) * 100.0
    );
}

fn main() {
    if let Some(v) = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()) {
        detail(v);
        return;
    }
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "V", "f (MHz)", "BNN mW", "CPU mW", "CPU pJ/cyc", "TOPS/W"
    );
    for step in 0..=12 {
        let v = 0.4 + step as f64 * 0.05;
        println!(
            "{v:>5.2} {:>10.1} {:>10.2} {:>10.2} {:>12.1} {:>10.2}",
            pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode) / 1e6,
            pm.total_mw(CoreKind::NcpuBnnMode, &areas, v, 1.0),
            pm.total_mw(CoreKind::NcpuCpuMode, &areas, v, 1.0),
            pm.energy_per_cycle_pj(CoreKind::NcpuCpuMode, &areas, v, 1.0),
            pm.bnn_tops_per_watt(v, 400),
        );
    }
    println!("\n(re-run with a voltage argument for the detailed view, e.g. 0.4)");
}
