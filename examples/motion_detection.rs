//! The paper's motivating experiment (Table I): why the accelerator is
//! indispensable for real-time motion detection.
//!
//! Classifies one sensor window under a 5 ms deadline two ways: entirely
//! on the RISC-V CPU (feature extraction + naive software BNN), and with
//! the BNN accelerator — both at the 0.4 V ultra-low-power point.
//!
//! Run with: `cargo run --release --example motion_detection`

use ncpu::prelude::*;
use ncpu::bnn::data::motion;
use ncpu::bnn::train::{train, TrainConfig};
use ncpu::workloads::{motion as motion_prog, softbnn, Tail};
use ncpu_testkit::rng::Rng;

fn main() {
    println!("training the motion classifier on synthetic 6-channel windows…");
    let cfg = motion::MotionConfig { train_per_class: 80, ..Default::default() };
    let (train_w, test_w) = motion::generate(&cfg);
    let topo = Topology::paper(motion::INPUT_BITS, 100, motion::CLASSES);
    let model = train(
        &topo,
        &motion::to_dataset(&train_w),
        &TrainConfig { epochs: 30, ..TrainConfig::default() },
    );
    let acc = ncpu::bnn::metrics::accuracy(&model, &motion::to_dataset(&test_w));
    println!("accuracy: {:.1}% (paper: 74%)", acc * 100.0);

    // One gesture window to classify.
    let mut rng = Rng::seed_from_u64(9);
    let window = motion::generate_window(5, cfg.noise, &mut rng);

    // Feature extraction on the CPU pipeline (both systems pay this).
    let layout = motion_prog::MotionLayout::default();
    let program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
    let mut cpu = Pipeline::new(program, FlatMem::new(4096));
    cpu.set_obs_level(TraceLevel::from_env());
    cpu.mem_mut().local_mut()[..motion_prog::STAGE_BYTES]
        .copy_from_slice(&motion_prog::stage_bytes(&window));
    let feature_cycles = cpu.run(10_000_000).expect("feature extraction");
    if cpu.obs().level() == TraceLevel::Full {
        println!(
            "(NCPU_TRACE=full: {} pipeline events during feature extraction)",
            cpu.obs().events().len()
        );
    }

    // (a) software BNN on the same CPU.
    let input = motion::window_to_input(&window);
    let soft = softbnn::build(&model);
    let mut cpu2 = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
    cpu2.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
    let staged = softbnn::stage_input(&input);
    let at = soft.layout.input as usize;
    cpu2.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
    let soft_cycles = cpu2.run(500_000_000).expect("software BNN");

    // (b) the accelerator.
    let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
    let (class, accel_cycles) = accel.infer(&input);

    let pm = PowerModel::default();
    let f = pm.dvfs.freq_hz(0.4, CoreKind::StandaloneCpu);
    let ms = |c: u64| c as f64 / f * 1e3;
    println!("\nat 0.4 V ({:.1} MHz), 5 ms real-time budget:", f / 1e6);
    println!(
        "  standalone CPU : {:>9} cycles = {:6.2} ms  {}",
        feature_cycles + soft_cycles,
        ms(feature_cycles + soft_cycles),
        if ms(feature_cycles + soft_cycles) > 5.0 { "✗ deadline missed" } else { "✓" }
    );
    println!(
        "  CPU + BNN accel: {:>9} cycles = {:6.2} ms  {}",
        feature_cycles + accel_cycles,
        ms(feature_cycles + accel_cycles),
        if ms(feature_cycles + accel_cycles) <= 5.0 { "✓ deadline met" } else { "✗" }
    );
    println!(
        "  speedup {:.0}× (paper: 59×); both agree on class {class} \
         (software said {})",
        (feature_cycles + soft_cycles) as f64 / (feature_cycles + accel_cycles) as f64,
        cpu2.reg(Reg::A0)
    );

    // The same comparison through the SoC scenario layer: one Scenario
    // per system, so the end-to-end path (DMA staging, mode switches,
    // scheduling) is costed instead of hand-summed from probes.
    let uc = UseCase::motion(1, 4, 2);
    let scenario = |system| Scenario::new(uc.clone(), system).with_operating_point(0.4);
    let hetero = Analytic.report(&scenario(SystemConfig::Heterogeneous));
    let ncpu = Analytic.report(&scenario(SystemConfig::Ncpu { cores: 1 }));
    println!("\nend-to-end per window through the scenario layer:");
    for r in [&hetero, &ncpu] {
        println!("  {:<16} {:>9} cycles = {:6.2} ms", r.config, r.makespan, ms(r.makespan));
    }
}
