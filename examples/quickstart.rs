//! Quickstart: program an NCPU core end to end.
//!
//! Trains a tiny binary classifier, loads it into a reconfigurable NCPU
//! core, and runs a RISC-V program that pre-processes data in CPU mode,
//! switches to BNN mode with `trans_bnn`, and reads the classification
//! back — the full single-core story of the paper in ~50 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ncpu::prelude::*;
use ncpu_bnn::data::Dataset;
use ncpu_bnn::train::{train, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a 16-bit, 2-class BNN: "is the majority of bits set?"
    let inputs: Vec<BitVec> = (0..200u32)
        .map(|i| BitVec::from_bools((0..16).map(move |b| (i.wrapping_mul(2654435761) >> b) & 1 == 1)))
        .collect();
    let labels: Vec<usize> = inputs.iter().map(|x| (x.count_ones() > 8) as usize).collect();
    let data = Dataset::new(inputs, labels, 2);
    let topo = Topology::new(16, vec![16, 16], 2);
    let model = train(&topo, &data, &TrainConfig::default());
    println!("trained model accuracy: {:.1}%", ncpu::bnn::metrics::accuracy(&model, &data) * 100.0);

    // 2. Build the core and a program around its memory map.
    let mut core = NcpuCore::new(model.clone(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
    let sample = 0b1111_0110_1101_0111u32; // 12 ones -> class 1
    let program = asm::assemble(&format!(
        "li   t0, {img}        # image memory (reused SRAM bank)
         li   t1, {sample}
         sh   t1, 0(t0)        # store the 16 input bits
         li   t2, 1
         mv_neu t2, 0          # configure: one image
         trans_bnn             # CPU -> BNN, zero-latency
         li   t3, {out}
         lw   a0, 0(t3)        # classification result, already local
         ebreak",
        img = core.image_base(),
        out = core.output_base(),
    ))?;

    // 3. Run and inspect.
    core.set_obs_level(TraceLevel::from_env());
    core.load_program(program);
    core.run(1_000_000)?;
    let predicted = core.pipeline().reg(Reg::A0);
    println!("input 0x{sample:04x} -> class {predicted} (reference: {})", {
        model.classify(&BitVec::from_bytes(&(sample as u16).to_le_bytes(), 16))
    });
    println!(
        "total {} cycles: {} switches, {} switch-overhead cycles (zero-latency)",
        core.total_cycles(),
        core.stats().switches,
        core.stats().switch_overhead_cycles
    );
    for span in core.timeline().spans() {
        println!("  [{:>6}..{:>6}) {}", span.start, span.end, span.label);
    }
    if core.obs().level() == TraceLevel::Full {
        println!("NCPU_TRACE=full: captured {} instant events", core.obs().events().len());
    }

    // 4. Scale out: the core above is one instance of an N-core SoC
    //    scenario — same model, batch of items, round-robin schedule.
    let uc = ncpu::soc::UseCase::parametric(0.5, 4, model);
    let dual = Analytic.report(&Scenario::new(uc, SystemConfig::Ncpu { cores: 2 }));
    println!(
        "scaled out as a scenario: {} classifies a 4-image batch in {} cycles",
        dual.config, dual.makespan
    );
    Ok(())
}
