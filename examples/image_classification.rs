//! The paper's real-time image-classification use case, end to end.
//!
//! Builds one [`Scenario`] per system — the heterogeneous CPU+accelerator
//! baseline, one NCPU, and the two-core NCPU SoC — runs them through the
//! [`Analytic`] engine, and prints latency, utilization, and the power
//! picture.
//!
//! Run with: `cargo run --release --example image_classification [batch]`

use ncpu::prelude::*;
use ncpu::soc::energy;

fn main() {
    let batch: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let level = TraceLevel::from_env();
    println!("building image use case (batch {batch}, training a small classifier)…");
    let uc = UseCase::image(batch, 60, 25);
    let scenario = |system| {
        Scenario::new(uc.clone(), system).with_trace(level).with_operating_point(1.0)
    };

    let base = Analytic.report(&scenario(SystemConfig::Heterogeneous));
    let single = Analytic.report(&scenario(SystemConfig::Ncpu { cores: 1 }));
    let dual_scenario = scenario(SystemConfig::Ncpu { cores: 2 });
    let (dual, rec) = Analytic.run(&dual_scenario);

    println!("\nclassification accuracy over the batch: {:.0}%", dual.accuracy() * 100.0);
    println!("\n{:<16} {:>12} {:>10}", "system", "cycles", "vs base");
    for r in [&base, &single, &dual] {
        println!(
            "{:<16} {:>12} {:>9.1}%",
            r.config,
            r.makespan,
            (1.0 - r.makespan as f64 / base.makespan as f64) * 100.0
        );
    }

    println!("\ncore utilization:");
    for r in [&base, &dual] {
        for core in &r.cores {
            println!("  {:<14} {:<10} {:5.1}%", r.config, core.role, core.utilization(r.makespan) * 100.0);
        }
    }

    let pm = PowerModel::default();
    let am = AreaModel::default();
    let volts = dual_scenario.volts();
    println!(
        "\nenergy at {volts} V: baseline {:.2} µJ, 2×NCPU {:.2} µJ; at matched latency \
         the 2×NCPU system saves {:.0}% by voltage scaling",
        energy::run_energy_uj(&base, &pm, &am, 100, volts),
        energy::run_energy_uj(&dual, &pm, &am, 100, volts),
        energy::equivalent_energy_saving(&dual, &base, &pm, &am, 100, volts) * 100.0
    );
    println!(
        "predictions agree across systems: {}",
        base.predictions == dual.predictions && base.predictions == single.predictions
    );

    if level != TraceLevel::Off {
        let artifact = dual.artifact(dual_scenario.usecase().name(), &rec);
        match ncpu::obs::write_artifacts(&artifact, &rec, &dual.thread_names()) {
            Ok((run_path, trace_path)) => println!(
                "\ntrace artifacts: {} and {} (open the latter in Perfetto)",
                run_path.display(),
                trace_path.display()
            ),
            Err(e) => eprintln!("failed to write trace artifacts: {e}"),
        }
    }
}
