//! Deterministic fault injection, detection, and recovery, end to end.
//!
//! Attaches a seeded [`FaultPlan`] to a four-core image scenario at a
//! lowered operating point (a lower supply raises the SRAM soft-error
//! rate), runs it through the [`Analytic`], [`Lockstep`], and
//! [`EventDriven`] engines, prints the injection/detection/recovery
//! counters side by side, and asserts the two co-simulating engines
//! agree **byte for byte** — faults included. This example doubles as
//! the CI fault smoke:
//!
//! ```text
//! NCPU_TRACE=full NCPU_TRACE_DIR=out cargo run --release --example fault_injection
//! ```
//!
//! which also exports `RUN_fault.json`/`TRACE_fault.json` artifacts
//! carrying the fault instants for the trace checker.

use ncpu::prelude::*;
use ncpu::soc::{RunReport, DROPPED_PREDICTION};

/// The counters the fault layer exports from every engine.
const FAULT_COUNTERS: [&str; 9] = [
    "fault.injected.sram_flip",
    "fault.injected.dma_stall",
    "fault.injected.dma_truncate",
    "fault.injected.core_hang",
    "fault.detected.parity",
    "fault.detected.watchdog",
    "fault.retries",
    "fault.items_dropped",
    "fault.cores_quarantined",
];

/// Renders a report with the engine tag stripped from `config`, so the
/// two co-simulating engines' reports compare as one byte string.
fn normalized(report: &RunReport, tag: &str) -> String {
    assert!(report.config.ends_with(tag), "{} should end with {tag}", report.config);
    let mut r = report.clone();
    r.config = r.config.replace(tag, "(engine)");
    format!("{r:?}")
}

fn main() {
    let cores = 4;
    let level = TraceLevel::from_env();
    println!("building image use case (batch 8, training a small classifier)…");
    let uc = UseCase::image(8, 2, 1);
    let plan = FaultPlan {
        seed: 7,
        sram_flip_ppm: 200_000,
        dma_stall_ppm: 150_000,
        dma_stall_cycles: 48,
        dma_truncate_ppm: 150_000,
        core_hang_ppm: 100_000,
        watchdog_cycles: 20_000_000,
        max_retries: 3,
        backoff_cycles: 32,
        quarantine_after: 6,
    };
    let scenario = Scenario::new(uc, SystemConfig::Ncpu { cores })
        .with_trace(level)
        .with_operating_point(0.9)
        .with_faults(plan);

    let (analytic, an_rec) = Analytic.run(&scenario);
    let (lockstep, ls_rec) = Lockstep.run(&scenario);
    let (event, ev_rec) = EventDriven.run(&scenario);

    println!(
        "\nfault plan: seed {}, {} mV, flip {} ppm, stall {} ppm, truncate {} ppm, hang {} ppm",
        plan.seed,
        scenario.millivolts(),
        plan.sram_flip_ppm,
        plan.dma_stall_ppm,
        plan.dma_truncate_ppm,
        plan.core_hang_ppm,
    );
    println!("\n{:<28} {:>10} {:>10} {:>10}", "counter", "analytic", "lockstep", "event");
    for name in FAULT_COUNTERS {
        println!(
            "{:<28} {:>10} {:>10} {:>10}",
            name,
            an_rec.counters().get(name),
            ls_rec.counters().get(name),
            ev_rec.counters().get(name),
        );
    }
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "makespan", analytic.makespan, lockstep.makespan, event.makespan
    );
    let dropped = lockstep.predictions.iter().filter(|&&p| p == DROPPED_PREDICTION).count();
    println!(
        "items: {} total, {} dropped by the recovery policy",
        lockstep.predictions.len(),
        dropped
    );

    // The plan must actually exercise the fault layer…
    let injected: u64 = FAULT_COUNTERS[..4]
        .iter()
        .map(|name| ls_rec.counters().get(name))
        .sum();
    assert!(injected > 0, "the seeded plan must inject faults");
    assert!(
        ls_rec.counters().get("fault.detected.parity")
            + ls_rec.counters().get("fault.detected.watchdog")
            > 0,
        "detection must fire"
    );
    // …and the two co-simulating engines must agree on every byte of it.
    assert_eq!(
        normalized(&event, "(event)"),
        normalized(&lockstep, "(lockstep)"),
        "event and lockstep reports diverged under faults"
    );
    assert_eq!(
        ev_rec.counters().to_json(),
        ls_rec.counters().to_json(),
        "fault counters diverged"
    );
    assert_eq!(
        ev_rec.metrics().to_json(),
        ls_rec.metrics().to_json(),
        "recovery histograms diverged"
    );
    println!("event == lockstep under faults at {cores} cores: ok");

    if level != TraceLevel::Off {
        let artifact = event.artifact("fault", &ev_rec);
        match ncpu::obs::write_artifacts(&artifact, &ev_rec, &event.thread_names()) {
            Ok((run_path, trace_path)) => println!(
                "trace artifacts: {} and {}",
                run_path.display(),
                trace_path.display()
            ),
            Err(e) => eprintln!("failed to write trace artifacts: {e}"),
        }
    }
}
