//! Topology matrix: one mixed-role fleet, every engine that can run it.
//!
//! Builds a heterogeneous 4-core fleet — a nominal reconfigurable core
//! on a wide L2 bank, a 0.7 V reconfigurable core on a narrow bank, a
//! fixed BNN array, and a CPU-only core — and drives the same workloads
//! through the engines:
//!
//! * the [`Lockstep`] and [`EventDriven`] twins run an item batch and
//!   must agree **byte for byte** (reports and counters, modulo the
//!   engine tag), under both the static and work-stealing schedulers;
//! * the [`Deep`] engine runs an 8-layer model on the same fleet and
//!   must place one segment per BNN-capable core.
//!
//! This is the CI smoke for the heterogeneous fabric:
//!
//! ```text
//! cargo run --release --example topology_matrix
//! ```

use ncpu::prelude::*;
use ncpu::soc::pseudo_model;
use ncpu::soc::topology::{CoreRole, CoreSpec, SchedulerKind, Topology};
use ncpu::soc::{Deep, RunReport, L2_BYTES};

fn mixed_fleet(sched: SchedulerKind) -> Topology {
    let mut specs = vec![CoreSpec::reconfigurable(); 4];
    specs[1].operating_point = Some(0.7);
    specs[1].bank = 1;
    specs[2].role = CoreRole::BnnOnly;
    specs[3].role = CoreRole::CpuOnly;
    Topology::from_specs(specs, vec![3 * L2_BYTES / 4, L2_BYTES / 4], sched)
        .expect("mixed fleet is structurally valid")
}

fn normalized(report: &RunReport, tag: &str) -> String {
    assert!(report.config.ends_with(tag), "{} should end with {tag}", report.config);
    format!("{report:?}").replace(tag, "(engine)")
}

fn main() {
    let uc = UseCase::parametric(0.6, 8, pseudo_model(784, 30, 10));
    println!("topology matrix — mixed 4-core fleet [{}]", mixed_fleet(SchedulerKind::Static).label());
    println!("{:<16} {:<14} {:>12}  roles", "scheduler", "engine", "makespan");
    for sched in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
        let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 4 })
            .with_topology(mixed_fleet(sched));
        let (lockstep, ls_rec) = Lockstep.run(&scenario);
        let (event, ev_rec) = EventDriven.run(&scenario);
        for (name, report) in [("lockstep", &lockstep), ("event", &event)] {
            let roles: Vec<&str> = report.cores.iter().map(|c| c.role.as_str()).collect();
            println!("{:<16} {:<14} {:>12}  {:?}", format!("{sched:?}"), name, report.makespan, roles);
        }
        assert_eq!(
            normalized(&event, "(event)"),
            normalized(&lockstep, "(lockstep)"),
            "{sched:?}: the twin engines must agree byte for byte on the mixed fleet"
        );
        assert_eq!(
            ev_rec.counters().to_json(),
            ls_rec.counters().to_json(),
            "{sched:?}: counter registries diverged"
        );
        assert_eq!(lockstep.cores[2].busy_cycles, 0, "a fixed BNN array runs no items");
        assert_eq!(lockstep.cores[3].busy_cycles, 0, "a CPU-only core runs no items");
    }

    // The deep engine on the same fleet: 3 BNN-capable cores, 3 segments.
    let model = ncpu::soc::pseudo_deep_model(64, 12, 8, 8);
    let inputs: Vec<BitVec> =
        (0..4).map(|k| BitVec::from_bools((0..64).map(|i| (i * 5 + k) % 3 == 0))).collect();
    let deep_uc = UseCase::deep(model, &inputs);
    let scenario = Scenario::new(deep_uc, SystemConfig::Ncpu { cores: 4 })
        .with_topology(mixed_fleet(SchedulerKind::Static));
    let report = Deep.report(&scenario);
    let roles: Vec<&str> = report.cores.iter().map(|c| c.role.as_str()).collect();
    println!("{:<16} {:<14} {:>12}  {:?}", "-", "deep", report.makespan, roles);
    assert_eq!(roles, ["seg0@core0", "seg1@core1", "seg2@core2"], "segment placement");

    println!("lockstep == event on the mixed fleet, deep placed {} segments: ok", roles.len());
}
