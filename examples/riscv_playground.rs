//! RISC-V playground: assemble, disassemble and run a program on the
//! cycle-accurate pipeline, then inspect its microarchitectural behavior.
//!
//! Run with: `cargo run --release --example riscv_playground [file.s]`
//! (without an argument it runs a built-in Fibonacci program).

use ncpu::prelude::*;

const DEMO: &str = "
        # iterative fibonacci: a0 = F(20)
        li   t0, 20
        li   a0, 0
        li   a1, 1
loop:   add  t1, a0, a1
        mv   a0, a1
        mv   a1, t1
        addi t0, t0, -1
        bnez t0, loop
        ebreak
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };
    let words = asm::assemble(&src)?;

    println!("assembled {} instructions:", words.len());
    for (i, &w) in words.iter().enumerate() {
        println!("  {:#06x}: {w:08x}  {}", i * 4, decode(w)?);
    }

    let mut cpu = Pipeline::new(words, FlatMem::new(64 * 1024));
    cpu.set_trace_capacity(32);
    cpu.set_obs_level(TraceLevel::from_env());
    let cycles = match cpu.run(50_000_000) {
        Ok(cycles) => cycles,
        Err(trap) => {
            eprintln!("\ntrapped after {} cycles: {trap}", cpu.stats().cycles);
            eprintln!("last retired instructions before the trap:");
            eprint!("{}", cpu.trace().render());
            return Err(trap.into());
        }
    };
    let s = cpu.stats();
    println!("\nhalted after {cycles} cycles, {} instructions (IPC {:.3})", s.retired, s.ipc());
    println!(
        "stalls: {} load-use, {} flush cycles, {} EX stalls, {} MEM stalls",
        s.load_use_stalls, s.flush_cycles, s.ex_stall_cycles, s.mem_stall_cycles
    );
    println!("\nregister file:");
    for reg in Reg::all() {
        let v = cpu.reg(reg);
        if v != 0 {
            println!("  {:<5} = {v:#010x} ({})", reg.to_string(), v as i32);
        }
    }
    println!("\ntop retired mnemonics:");
    let mut counts: Vec<_> = s.per_instr.iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
    for (m, c) in counts.iter().take(8) {
        println!("  {m:<6} {c}");
    }
    println!("\nlast retired instructions (up to EBREAK):");
    print!("{}", cpu.trace().render());
    if cpu.obs().level() == TraceLevel::Full {
        println!("\nNCPU_TRACE=full: captured {} instant events", cpu.obs().events().len());
    }

    // This pipeline is the CPU half of the SoC scenarios. Pair the
    // measured cost of this program with one BNN inference per item and
    // let the two-core schedule overlap them.
    let model = ncpu_bench::context::pseudo_model(216, 30, 8);
    let topo = model.topology();
    let infer: u64 = (0..topo.layers().len())
        .map(|l| topo.layer_input(l) as u64 + ncpu::accel::SIGN_CYCLES)
        .sum();
    let frac = cycles as f64 / (cycles + infer) as f64;
    let uc = ncpu::soc::UseCase::parametric(frac, 4, model);
    let dual = Analytic.report(&Scenario::new(uc, SystemConfig::Ncpu { cores: 2 }));
    println!(
        "\nas the CPU phase of a 4-item scenario ({:.0}% CPU work per item), \
         {} finishes in {} cycles",
        frac * 100.0,
        dual.config,
        dual.makespan
    );
    Ok(())
}
