//! Scenario fleet service, in-process: submit a sweep twice and watch
//! the content-addressed cache turn the second pass into string copies.
//!
//! ```text
//! cargo run --release --example scenario_fleet
//! ```
//!
//! The same protocol is reachable from outside via `ncpu serve` (stdin)
//! or `ncpu serve --tcp 127.0.0.1:9000`.

use ncpu::serve::{serve_lines, Fleet, ServeConfig};

fn main() {
    let mut requests = String::new();
    for frac in [2, 5, 8] {
        for cores in [1, 2] {
            requests.push_str(&format!("{{\"cpu_fraction\":0.{frac},\"batch\":4,\"cores\":{cores}}}\n"));
        }
    }
    requests.push_str("{\"op\":\"stats\"}\n");

    let mut fleet = Fleet::from_env(64);
    println!("fleet: {} workers\n-- cold pass --", fleet.workers());
    let mut run = |input: &str| {
        let mut out = Vec::new();
        serve_lines(&mut fleet, input.as_bytes(), &mut out, &ServeConfig::default())
            .expect("in-memory serve cannot fail");
        let text = String::from_utf8(out).expect("responses are UTF-8");
        for line in text.lines() {
            // Keep the demo readable: print envelopes, not full reports.
            let head = line.split("\"report\":").next().unwrap_or(line);
            println!("{}", head.trim_end_matches(','));
        }
        text
    };
    let cold = run(&requests);
    println!("-- warm pass (same requests) --");
    let warm = run(&requests);

    let reports = |t: &str| {
        t.lines()
            .filter_map(|l| l.split_once("\"report\":").map(|(_, r)| r.to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(reports(&cold), reports(&warm), "cached reports must be byte-identical");
    assert_eq!(cold.matches("\"cache\":\"miss\"").count(), 6);
    assert_eq!(warm.matches("\"cache\":\"hit\"").count(), 6);
    println!("warm pass served 6/6 requests from cache, byte-identical to the cold pass");
}
