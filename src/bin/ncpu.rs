//! `ncpu` — command-line front end to the reproduction.
//!
//! ```text
//! ncpu asm <file.s> [-o out.bin]        assemble to flat binary
//! ncpu dis <file.bin>                   disassemble a flat binary
//! ncpu run <file.s|file.bin> [--trace N] [--reg NAME]...
//!                                       run on the cycle-accurate pipeline
//! ncpu train <digits|motion> <model.bnn>
//!                                       train a classifier, save artifact
//! ncpu classify <model.bnn>             accelerator stats for an artifact
//! ncpu sweep                            voltage/frequency/power table
//! ncpu serve [--tcp ADDR] [--batch N] [--cache N] [--artifacts DIR]
//!                                       scenario fleet service (line-delimited
//!                                       JSON over stdin, or TCP with --tcp)
//! ```

use std::process::ExitCode;

use ncpu::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..]),
        Some("dis") => cmd_dis(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("sweep") => cmd_sweep(),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: ncpu <asm|dis|run|train|classify|sweep|serve> …\n\
                 see the module docs (`cargo doc`) for details"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load_words(path: &str) -> Result<Vec<u32>, Box<dyn std::error::Error>> {
    if path.ends_with(".bin") {
        let bytes = std::fs::read(path)?;
        if bytes.len() % 4 != 0 {
            return Err(format!("{path}: length {} is not word-aligned", bytes.len()).into());
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    } else {
        let src = std::fs::read_to_string(path)?;
        Ok(asm::assemble(&src)?)
    }
}

fn cmd_asm(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("usage: ncpu asm <file.s> [-o out.bin]")?;
    let words = load_words(input)?;
    let out = match args.iter().position(|a| a == "-o") {
        Some(i) => args.get(i + 1).ok_or("-o needs a path")?.clone(),
        None => format!("{}.bin", input.trim_end_matches(".s")),
    };
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    std::fs::write(&out, bytes)?;
    println!("{} instructions -> {out}", words.len());
    Ok(())
}

fn cmd_dis(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("usage: ncpu dis <file.bin>")?;
    let words = load_words(input)?;
    for (i, &w) in words.iter().enumerate() {
        match decode(w) {
            Ok(instr) => println!("{:#06x}: {w:08x}  {instr}", i * 4),
            Err(_) => println!("{:#06x}: {w:08x}  .word {w:#x}", i * 4),
        }
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("usage: ncpu run <file.s|file.bin> [--trace N] [--reg R]")?;
    let words = load_words(input)?;
    let mut cpu = Pipeline::new(words, FlatMem::new(64 * 1024));
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let n: usize = args.get(i + 1).ok_or("--trace needs a count")?.parse()?;
        cpu.set_trace_capacity(n);
    }
    let cycles = cpu.run(1_000_000_000)?;
    let s = cpu.stats();
    println!(
        "halted: {cycles} cycles, {} instructions, IPC {:.3} \
         ({} load-use stalls, {} flush cycles)",
        s.retired,
        s.ipc(),
        s.load_use_stalls,
        s.flush_cycles
    );
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| a == "--reg" && i + 1 < args.len())
        .map(|(i, _)| &args[i + 1])
        .collect();
    if wanted.is_empty() {
        for reg in Reg::all() {
            let v = cpu.reg(reg);
            if v != 0 {
                println!("  {:<5} = {v:#010x} ({})", reg.to_string(), v as i32);
            }
        }
    } else {
        for name in wanted {
            let reg: Reg = name.parse()?;
            println!("  {:<5} = {:#010x}", reg.to_string(), cpu.reg(reg));
        }
    }
    if !cpu.trace().is_empty() {
        println!("--- last retirements ---\n{}", cpu.trace().render());
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> CmdResult {
    use ncpu::bnn::data::{digits, motion};
    use ncpu::bnn::train::{train, TrainConfig};
    let which = args.first().ok_or("usage: ncpu train <digits|motion> <out.bnn>")?;
    let out = args.get(1).ok_or("usage: ncpu train <digits|motion> <out.bnn>")?;
    let (model, acc) = match which.as_str() {
        "digits" => {
            let (tr, te) = digits::generate(&digits::DigitsConfig::default());
            let topo = Topology::paper(digits::PIXELS, 100, digits::CLASSES);
            let model = train(&topo, &tr, &TrainConfig::default());
            let acc = ncpu::bnn::metrics::accuracy(&model, &te);
            (model, acc)
        }
        "motion" => {
            let cfg = motion::MotionConfig::default();
            let (tr, te) = motion::generate(&cfg);
            let topo = Topology::paper(motion::INPUT_BITS, 100, motion::CLASSES);
            let model = train(&topo, &motion::to_dataset(&tr), &TrainConfig::default());
            let acc = ncpu::bnn::metrics::accuracy(&model, &motion::to_dataset(&te));
            (model, acc)
        }
        other => return Err(format!("unknown task `{other}` (digits|motion)").into()),
    };
    std::fs::write(out, ncpu::bnn::io::to_bytes(&model))?;
    println!("trained {which}: accuracy {:.1}%, artifact -> {out}", acc * 100.0);
    Ok(())
}

fn cmd_classify(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("usage: ncpu classify <model.bnn>")?;
    let model = ncpu::bnn::io::from_bytes(&std::fs::read(path)?)?;
    let topo = model.topology().clone();
    let mut accel = Accelerator::new(model, AccelConfig::default());
    let (class, latency) = accel.infer(&BitVec::zeros(topo.input()));
    let pm = PowerModel::default();
    let f = pm.dvfs.freq_hz(0.4, CoreKind::NcpuBnnMode);
    println!(
        "model: {} -> {:?} -> {} classes ({} binary MACs/inference)",
        topo.input(),
        topo.layers(),
        topo.classes(),
        topo.macs()
    );
    println!(
        "accelerator: {latency} cycles/image latency, 1 image per {} cycles \
         pipelined; at 0.4 V that is {:.0} classifications/s \
         (all-zero probe classified as {class})",
        accel.pipelined_interval(),
        f / accel.pipelined_interval() as f64,
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> CmdResult {
    use ncpu::serve::{serve_lines, serve_tcp, Fleet, ServeConfig};
    let mut cfg = ServeConfig::default();
    let mut cache_capacity = 1024usize;
    let mut tcp_addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => tcp_addr = Some(it.next().ok_or("--tcp needs an address")?.clone()),
            "--batch" => cfg.batch_max = it.next().ok_or("--batch needs a count")?.parse()?,
            "--cache" => cache_capacity = it.next().ok_or("--cache needs a count")?.parse()?,
            "--artifacts" => {
                cfg.artifacts_dir = Some(it.next().ok_or("--artifacts needs a dir")?.into());
            }
            other => return Err(format!("unknown serve flag `{other}`").into()),
        }
    }
    let mut fleet = Fleet::from_env(cache_capacity);
    match tcp_addr {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)?;
            eprintln!(
                "ncpu serve: listening on {} ({} workers)",
                listener.local_addr()?,
                fleet.workers()
            );
            serve_tcp(listener, &mut fleet, &cfg, None)?;
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_lines(&mut fleet, stdin.lock(), stdout.lock(), &cfg)?;
        }
    }
    Ok(())
}

fn cmd_sweep() -> CmdResult {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    println!("{:>5} {:>10} {:>10} {:>10} {:>10}", "V", "f (MHz)", "BNN mW", "CPU mW", "TOPS/W");
    for step in 0..=12 {
        let v = 0.4 + step as f64 * 0.05;
        println!(
            "{v:>5.2} {:>10.1} {:>10.2} {:>10.2} {:>10.2}",
            pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode) / 1e6,
            pm.total_mw(CoreKind::NcpuBnnMode, &areas, v, 1.0),
            pm.total_mw(CoreKind::NcpuCpuMode, &areas, v, 1.0),
            pm.bnn_tops_per_watt(v, 400),
        );
    }
    Ok(())
}
