//! # NCPU — a reproduction of the Neural CPU architecture (MICRO 2020)
//!
//! This workspace reproduces *"NCPU: An Embedded Neural CPU Architecture
//! on Resource-Constrained Low Power Devices for Real-time End-to-End
//! Performance"* (Jia, Ju, Joseph, Gu — MICRO 2020) in Rust: a
//! cycle-level simulator of the reconfigurable RISC-V/BNN core, every
//! substrate it depends on, and the paper's full evaluation.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one name and hosts the runnable examples and cross-crate integration
//! tests. The subsystems are:
//!
//! * [`isa`] — RV32I + the five customized NCPU instructions: encoder,
//!   decoder, assembler, golden-model interpreter,
//! * [`bnn`] — binarized neural networks: packed ±1 vectors, training,
//!   synthetic datasets (MNIST/Ninapro stand-ins),
//! * [`sim`] — SRAM banks, address arbiter, DMA, statistics, power traces,
//! * [`obs`] — cycle-stamped event tracing, counters, and run artifacts
//!   (`NCPU_TRACE=off|counters|full`, `NCPU_TRACE_DIR=<dir>`),
//! * [`pipeline`] — the cycle-accurate 5-stage in-order RV32I pipeline,
//! * [`accel`] — the cycle-level layer-pipelined BNN accelerator,
//! * [`core`] — **the paper's contribution**: the unified NCPU core with
//!   zero-latency mode switching and in-place memory reuse,
//! * [`soc`] — the two-core SoC, the heterogeneous baseline, and the
//!   end-to-end use cases,
//! * [`serve`] — the scenario fleet service: batched simulation serving
//!   over line-delimited JSON with a content-addressed result cache
//!   (`ncpu serve`),
//! * [`power`] — the calibrated 65nm DVFS/power/area model,
//! * [`workloads`] — the RV32I programs (image pipeline, motion features,
//!   software BNN, Dhrystone-class benchmark, MiBench-class kernels),
//! * [`nalu`] — the Neural-ALU counter-experiment.
//!
//! # Quick start
//!
//! ```
//! use ncpu::core::{NcpuCore, SwitchPolicy};
//! use ncpu::accel::AccelConfig;
//! use ncpu::bnn::{BnnModel, Topology};
//! use ncpu::isa::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A core serving a (untrained) 32-bit/4-class model.
//! let model = BnnModel::zeros(&Topology::new(32, vec![8, 8], 4));
//! let mut core = NcpuCore::new(model, AccelConfig::default(), SwitchPolicy::ZeroLatency);
//!
//! // A RISC-V program: write an image, reconfigure, classify, read back.
//! let program = asm::assemble(&format!(
//!     "li t0, {img}
//!      li t1, 0x0f0f0f0f
//!      sw t1, 0(t0)
//!      li t2, 1
//!      mv_neu t2, 0
//!      trans_bnn
//!      li t3, {out}
//!      lw a0, 0(t3)
//!      ebreak",
//!     img = core.image_base(),
//!     out = core.output_base(),
//! ))?;
//! core.load_program(program);
//! core.run(1_000_000)?;
//! assert!(core.pipeline().reg(ncpu::isa::Reg::A0) < 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Reproducing the paper
//!
//! Every table and figure has a regeneration target; see `DESIGN.md` for
//! the index and `EXPERIMENTS.md` for paper-vs-measured results:
//!
//! ```text
//! cargo run --release -p ncpu-bench --bin paper    # everything
//! cargo run --release -p ncpu-bench --bin fig13    # one experiment
//! cargo bench                                      # fast set + micro-benches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ncpu_accel as accel;
pub use ncpu_bnn as bnn;
pub use ncpu_core as core;
pub use ncpu_isa as isa;
pub use ncpu_nalu as nalu;
pub use ncpu_obs as obs;
pub use ncpu_pipeline as pipeline;
pub use ncpu_power as power;
pub use ncpu_serve as serve;
pub use ncpu_sim as sim;
pub use ncpu_soc as soc;
pub use ncpu_workloads as workloads;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use ncpu_accel::{AccelConfig, Accelerator};
    pub use ncpu_bnn::{BitVec, BnnModel, Topology};
    pub use ncpu_core::{NcpuCore, SwitchPolicy};
    pub use ncpu_isa::{asm, decode, Instruction, Reg};
    pub use ncpu_obs::TraceLevel;
    pub use ncpu_pipeline::{FlatMem, Pipeline};
    pub use ncpu_power::{AreaModel, CoreKind, PowerModel};
    pub use ncpu_soc::{
        run, run_traced, Analytic, Engine, EventDriven, FaultPlan, Lockstep, Scenario,
        SocConfig, SystemConfig, UseCase,
    };
}
