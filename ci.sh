#!/bin/sh
# Tier-1 verify, fully offline. The workspace has zero external
# dependencies (tests/hermetic.rs enforces it), so `--offline` must
# succeed from a clean checkout with no registry and no network.
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q

# Scenario/Engine smoke: a 4-core lock-step co-simulation must complete
# end to end and agree with the analytic engine (ext_lockstep hands the
# same Scenario to both engines at 1/2/4 cores and asserts identical
# classifications).
NCPU_TRACE=off cargo run --release --offline -p ncpu-bench --bin paper ext_lockstep

# Observability smoke: a fully traced end-to-end run must emit RUN_/TRACE_
# artifacts that the in-tree checker accepts (unknown event kinds and
# out-of-order lane timestamps fail).
OBS_DIR=target/obs-ci
rm -rf "$OBS_DIR"
NCPU_TRACE=full NCPU_TRACE_DIR="$OBS_DIR" \
    cargo run --release --offline --example image_classification 2
cargo run --release --offline -p ncpu-obs --bin trace_check -- \
    --summary "$OBS_DIR"/RUN_image.json "$OBS_DIR"/TRACE_image.json

# Fault-injection smoke: a seeded four-core faulty image scenario runs
# through all three SoC engines; the example itself asserts nonzero
# injection/detection/recovery counters and byte-identical lockstep and
# event reports, and its traced artifacts (fault instants included)
# must pass the checker. The FaultPlan::none() byte-neutrality gate is
# tests/golden_equivalence.rs in the workspace suite above.
FAULT_DIR=target/obs-fault-ci
rm -rf "$FAULT_DIR"
NCPU_TRACE=full NCPU_TRACE_DIR="$FAULT_DIR" \
    cargo run --release --offline --example fault_injection
cargo run --release --offline -p ncpu-obs --bin trace_check -- \
    --summary "$FAULT_DIR"/RUN_fault.json "$FAULT_DIR"/TRACE_fault.json

# Self-profile smoke: with NCPU_SELFPROF=1 the paper binary must emit a
# non-empty collapsed-stack profile whose visits weighting (a pure
# function of the workload) is byte-identical across two runs.
PROF_DIR_A=target/selfprof-ci-a
PROF_DIR_B=target/selfprof-ci-b
rm -rf "$PROF_DIR_A" "$PROF_DIR_B"
NCPU_SELFPROF=1 NCPU_THREADS=1 NCPU_TRACE=off NCPU_TRACE_DIR="$PROF_DIR_A" \
    cargo run --release --offline -p ncpu-bench --bin paper ext_lockstep > /dev/null
NCPU_SELFPROF=1 NCPU_THREADS=1 NCPU_TRACE=off NCPU_TRACE_DIR="$PROF_DIR_B" \
    cargo run --release --offline -p ncpu-bench --bin paper ext_lockstep > /dev/null
test -s "$PROF_DIR_A"/PROF_paper.folded
test -s "$PROF_DIR_A"/PROF_paper.visits.folded
cmp "$PROF_DIR_A"/PROF_paper.visits.folded "$PROF_DIR_B"/PROF_paper.visits.folded

# Determinism under the parallel execution layer: the full determinism
# suite must pass serially and with a 4-worker pool.
NCPU_THREADS=1 cargo test -q --offline --test determinism
NCPU_THREADS=4 cargo test -q --offline --test determinism

# Engine equivalence: the event-driven engine must be byte-identical to
# the lock-step reference on the fuzzed Scenario matrix (256 seeded,
# shrinking cases), serially and under a 4-worker pool.
NCPU_THREADS=1 cargo test -q --offline --test engine_differential
NCPU_THREADS=4 cargo test -q --offline --test engine_differential

# Event-driven 4-core smoke: the fast engine end to end at the widest
# core count, traced, against the lock-step makespan.
NCPU_TRACE=off cargo run --release --offline --example engine_matrix 4

# Heterogeneous-fabric smoke: a mixed-role 4-core fleet (reconfigurable
# + undervolted + fixed BNN + CPU-only, asymmetric L2 banks) through the
# lockstep/event twins under both schedulers (byte-equality asserted
# in-example) and the deep engine (segment placement asserted).
NCPU_TRACE=off cargo run --release --offline --example topology_matrix

# Fleet-service smoke: 8 scenario requests over stdin, of which 4 are
# content-addressed duplicates (field order, nesting, and an explicit
# engine pin inside the byte-identical lockstep/event pair all
# canonicalize away). The stats line must show exactly 4 hits and 4
# misses; the duplicated reports must be byte-identical to their fresh
# twins; and every artifact the service wrote must satisfy trace_check.
SERVE_DIR=target/serve-ci
rm -rf "$SERVE_DIR"
SERVE_OUT="$SERVE_DIR/transcript.jsonl"
mkdir -p "$SERVE_DIR"
cargo run --release --offline --bin ncpu -- serve --artifacts "$SERVE_DIR/artifacts" <<'EOF' > "$SERVE_OUT"
{"cpu_fraction":0.25,"batch":2,"cores":1}
{"cpu_fraction":0.75,"batch":4,"cores":2}
{"scenario":{"batch":2,"cores":1,"cpu_fraction":0.25}}
{"workload":"image","batch":4,"train_per_class":2,"epochs":1}
{"cpu_fraction":0.75,"batch":4,"cores":2,"engine":"lockstep"}
{"system":"hetero","cpu_fraction":0.5,"batch":2}
{"workload":"image","batch":4,"train_per_class":2,"epochs":1}
{"system":"hetero","cpu_fraction":0.5,"batch":2,"engine":"analytic"}
{"op":"stats"}
{"op":"shutdown"}
EOF
grep -q '"serve.cache.hits":4' "$SERVE_OUT"
grep -q '"serve.cache.misses":4' "$SERVE_OUT"
grep -q '"serve.cache.evictions":0' "$SERVE_OUT"
# Duplicate pairs (1,3), (2,5), (4,7), (6,8) must serve identical report bytes.
for pair in "1 3" "2 5" "4 7" "6 8"; do
    fresh=$(echo "$pair" | cut -d' ' -f1)
    dup=$(echo "$pair" | cut -d' ' -f2)
    sed -n "${fresh}p" "$SERVE_OUT" | sed 's/.*"report"://' > "$SERVE_DIR/fresh.json"
    sed -n "${dup}p" "$SERVE_OUT" | sed 's/.*"report"://' > "$SERVE_DIR/dup.json"
    cmp "$SERVE_DIR/fresh.json" "$SERVE_DIR/dup.json"
done
cargo run --release --offline -p ncpu-obs --bin trace_check -- \
    --summary "$SERVE_DIR"/artifacts/RUN_serve_*.json

# Benchmark artifacts: short samples keep CI fast; the JSON schema and
# the parallel byte-identity assertion are what this gate checks, not
# the absolute timings. The harness writes into the package dir (cargo
# bench cwd); surface the reports at the repo root so runs can be diffed.
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench micro
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench parallel
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench event
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench serve
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench topology
mv crates/bench/BENCH_micro.json crates/bench/BENCH_parallel.json \
    crates/bench/BENCH_event.json crates/bench/BENCH_serve.json \
    crates/bench/BENCH_topology.json .

# Perf regression gate: fresh medians against the committed baselines in
# baselines/, every suite in ONE bench_diff invocation so a run that
# regresses several suites reports all of them at once. The loose
# tolerance absorbs the wall-clock noise of tiny sample counts on a
# loaded shared host — the gate exists to catch order-of-magnitude
# regressions, not percent drift; the self-test below proves it still
# bites at 20% on clean data. Exit code 4 (some pair refused to compare
# because the host shape differs from the baseline machine, and no pair
# that did compare regressed) is tolerated: there the comparison would
# be meaningless. The topology suite's rows are deterministic model
# metrics, so its comparison is exact on any host.
rc=0
cargo run --release --offline -p ncpu-obs --bin bench_diff -- \
    --tolerance 2.0 \
    baselines/BENCH_micro.json BENCH_micro.json \
    baselines/BENCH_parallel.json BENCH_parallel.json \
    baselines/BENCH_event.json BENCH_event.json \
    baselines/BENCH_serve.json BENCH_serve.json \
    baselines/BENCH_topology.json BENCH_topology.json || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 4 ]; then
    echo "bench_diff: perf regression gate failed (rc=$rc)" >&2
    exit "$rc"
fi
# The gate must demonstrably fail on an injected 20% regression.
for suite in micro parallel event serve topology; do
    cargo run --release --offline -p ncpu-obs --bin bench_diff -- \
        --self-test "BENCH_$suite.json"
done
