#!/bin/sh
# Tier-1 verify, fully offline. The workspace has zero external
# dependencies (tests/hermetic.rs enforces it), so `--offline` must
# succeed from a clean checkout with no registry and no network.
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q

# Scenario/Engine smoke: a 4-core lock-step co-simulation must complete
# end to end and agree with the analytic engine (ext_lockstep hands the
# same Scenario to both engines at 1/2/4 cores and asserts identical
# classifications).
NCPU_TRACE=off cargo run --release --offline -p ncpu-bench --bin paper ext_lockstep

# Observability smoke: a fully traced end-to-end run must emit RUN_/TRACE_
# artifacts that the in-tree checker accepts (unknown event kinds and
# out-of-order lane timestamps fail).
OBS_DIR=target/obs-ci
rm -rf "$OBS_DIR"
NCPU_TRACE=full NCPU_TRACE_DIR="$OBS_DIR" \
    cargo run --release --offline --example image_classification 2
cargo run --release --offline -p ncpu-obs --bin trace_check -- \
    "$OBS_DIR"/RUN_image.json "$OBS_DIR"/TRACE_image.json

# Determinism under the parallel execution layer: the full determinism
# suite must pass serially and with a 4-worker pool.
NCPU_THREADS=1 cargo test -q --offline --test determinism
NCPU_THREADS=4 cargo test -q --offline --test determinism

# Engine equivalence: the event-driven engine must be byte-identical to
# the lock-step reference on the fuzzed Scenario matrix (256 seeded,
# shrinking cases), serially and under a 4-worker pool.
NCPU_THREADS=1 cargo test -q --offline --test engine_differential
NCPU_THREADS=4 cargo test -q --offline --test engine_differential

# Event-driven 4-core smoke: the fast engine end to end at the widest
# core count, traced, against the lock-step makespan.
NCPU_TRACE=off cargo run --release --offline --example engine_matrix 4

# Benchmark artifacts: short samples keep CI fast; the JSON schema and
# the parallel byte-identity assertion are what this gate checks, not
# the absolute timings. The harness writes into the package dir (cargo
# bench cwd); surface the reports at the repo root so runs can be diffed.
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench micro
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench parallel
NCPU_BENCH_SAMPLES=3 NCPU_BENCH_SAMPLE_MS=5 \
    cargo bench --offline -p ncpu-bench --bench event
mv crates/bench/BENCH_micro.json crates/bench/BENCH_parallel.json \
    crates/bench/BENCH_event.json .
