#!/bin/sh
# Tier-1 verify, fully offline. The workspace has zero external
# dependencies (tests/hermetic.rs enforces it), so `--offline` must
# succeed from a clean checkout with no registry and no network.
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
