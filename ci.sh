#!/bin/sh
# Tier-1 verify, fully offline. The workspace has zero external
# dependencies (tests/hermetic.rs enforces it), so `--offline` must
# succeed from a clean checkout with no registry and no network.
set -eux

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Observability smoke: a fully traced end-to-end run must emit RUN_/TRACE_
# artifacts that the in-tree checker accepts (unknown event kinds fail).
OBS_DIR=target/obs-ci
rm -rf "$OBS_DIR"
NCPU_TRACE=full NCPU_TRACE_DIR="$OBS_DIR" \
    cargo run --release --offline --example image_classification 2
cargo run --release --offline -p ncpu-obs --bin trace_check -- \
    "$OBS_DIR"/RUN_image.json "$OBS_DIR"/TRACE_image.json
