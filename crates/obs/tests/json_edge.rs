//! Edge cases of the in-tree JSON parser (`ncpu_obs::json`).
//!
//! The parser gates every artifact check in CI (`trace_check`,
//! `bench_diff`), so its behaviour on hostile-but-legal input is pinned
//! here: escape sequences, deep nesting, extreme numbers, and duplicate
//! keys.

use ncpu_obs::json::{parse, Json};

#[test]
fn string_escapes_round_trip() {
    let doc = parse(r#"{"s": "quote \" backslash \\ slash \/ nl \n tab \t cr \r"}"#)
        .expect("escapes parse");
    assert_eq!(
        doc.get("s").and_then(Json::as_str),
        Some("quote \" backslash \\ slash / nl \n tab \t cr \r")
    );
}

#[test]
fn control_character_escapes_decode() {
    let doc = parse(r#"{"s": "bs \b ff \f"}"#).expect("control escapes parse");
    assert_eq!(doc.get("s").and_then(Json::as_str), Some("bs \u{8} ff \u{c}"));
}

#[test]
fn unicode_escapes_decode() {
    let doc = parse(r#"{"s": "café ☃"}"#).expect("unicode escapes parse");
    assert_eq!(doc.get("s").and_then(Json::as_str), Some("café ☃"));
}

#[test]
fn lone_surrogate_becomes_replacement_character() {
    // \ud800 is an unpaired UTF-16 surrogate: not a valid scalar value.
    // The parser substitutes U+FFFD rather than crashing or emitting
    // invalid UTF-8.
    let doc = parse(r#"{"s": "x\ud800y"}"#).expect("lone surrogate tolerated");
    assert_eq!(doc.get("s").and_then(Json::as_str), Some("x\u{fffd}y"));
}

#[test]
fn deeply_nested_arrays_parse() {
    const DEPTH: usize = 200;
    let mut text = String::new();
    for _ in 0..DEPTH {
        text.push('[');
    }
    text.push('1');
    for _ in 0..DEPTH {
        text.push(']');
    }
    let mut doc = &parse(&text).expect("deep nesting parses");
    for _ in 0..DEPTH {
        let arr = doc.as_arr().expect("array at every level");
        assert_eq!(arr.len(), 1);
        doc = &arr[0];
    }
    assert_eq!(doc.as_num(), Some(1.0));
}

#[test]
fn large_and_negative_numbers_parse() {
    let doc = parse(
        r#"{"big": 18446744073709551615, "neg": -9007199254740991,
            "exp": 1.5e300, "negexp": -2.5E-300, "zero": -0.0}"#,
    )
    .expect("numbers parse");
    let get = |k: &str| doc.get(k).and_then(Json::as_num).unwrap();
    // u64::MAX exceeds f64's integer precision; the parser holds f64, so
    // the value rounds — but it must parse, stay finite, and stay huge.
    assert!(get("big") > 1.8e19 && get("big").is_finite());
    assert_eq!(get("neg"), -9007199254740991.0); // largest exact f64 int
    assert!(get("exp") > 1.0e300);
    assert!(get("negexp") < 0.0 && get("negexp") > -1.0e-299);
    assert_eq!(get("zero"), 0.0);
}

#[test]
fn duplicate_keys_first_wins_on_lookup() {
    let doc = parse(r#"{"k": 1, "k": 2}"#).expect("duplicate keys parse");
    // Both pairs are retained in the object; `get` resolves to the first,
    // and that choice is pinned (validators rely on it being stable).
    assert_eq!(doc.get("k").and_then(Json::as_num), Some(1.0));
    let Json::Obj(pairs) = &doc else { panic!("object expected") };
    assert_eq!(pairs.len(), 2);
}

#[test]
fn empty_containers_and_whitespace() {
    let doc = parse(" \t\r\n { \"a\" : [ ] , \"b\" : { } } \n").expect("whitespace ok");
    assert_eq!(doc.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    assert!(matches!(doc.get("b"), Some(Json::Obj(pairs)) if pairs.is_empty()));
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "\"unterminated",
        "nul",
        "01x",
        "{\"a\":1} trailing",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn literals_parse() {
    let doc = parse(r#"[true, false, null]"#).expect("literals parse");
    let arr = doc.as_arr().unwrap();
    assert_eq!(arr[0], Json::Bool(true));
    assert_eq!(arr[1], Json::Bool(false));
    assert_eq!(arr[2], Json::Null);
}
