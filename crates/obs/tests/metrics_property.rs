//! Property tests for the cycle-domain histogram
//! ([`ncpu_obs::CycleHistogram`]) on the workspace shrinking harness.
//!
//! The determinism story of the metrics layer rests on two algebraic
//! facts, so they are tested as properties rather than examples:
//!
//! * **merge is an order-independent monoid fold** — associative and
//!   commutative with the empty histogram as identity — so sharded
//!   recording + ordered merge equals serial recording;
//! * **quantiles are bracketed by observed values** — every reported
//!   quantile is the recorded maximum of some non-empty bucket, lies in
//!   `[min, max]`, and is monotone in `q`.

use ncpu_obs::CycleHistogram;
use ncpu_testkit::prop::Prop;
use ncpu_testkit::prop_assert_eq;
use ncpu_testkit::rng::Rng;

/// Samples spanning the full u64 bucket range, biased toward small
/// latencies the way real cycle counts are.
fn gen_samples(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            let magnitude = rng.gen_range(0u32..64);
            rng.next_u64() >> magnitude >> 1
        })
        .collect()
}

fn hist_of(samples: &[u64]) -> CycleHistogram {
    let mut h = CycleHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

#[test]
fn merge_is_associative_and_commutative() {
    Prop::new("cycle_histogram_merge_monoid").cases(128).run(
        |rng| {
            (
                gen_samples(rng, 40),
                gen_samples(rng, 40),
                gen_samples(rng, 40),
            )
        },
        |(a, b, c)| {
            let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));

            // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);

            // a ⊔ b == b ⊔ a
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);

            // empty is the identity
            let mut with_empty = ha.clone();
            with_empty.merge(&CycleHistogram::new());
            prop_assert_eq!(&with_empty, &ha);

            // merging equals recording the concatenated stream
            let mut concat: Vec<u64> = a.clone();
            concat.extend_from_slice(b);
            prop_assert_eq!(&ab, &hist_of(&concat));
            Ok(())
        },
    );
}

#[test]
fn quantiles_are_bracketed_and_monotone() {
    Prop::new("cycle_histogram_quantile_bounds").cases(128).run(
        |rng| gen_samples(rng, 60),
        |samples| {
            let h = hist_of(samples);
            if samples.is_empty() {
                prop_assert_eq!(h.p50(), 0);
                prop_assert_eq!(h.max(), 0);
                return Ok(());
            }
            let lo = *samples.iter().min().expect("non-empty");
            let hi = *samples.iter().max().expect("non-empty");
            prop_assert_eq!(h.min(), lo);
            prop_assert_eq!(h.max(), hi);
            prop_assert_eq!(h.count(), samples.len() as u64);
            // The histogram's sum saturates instead of wrapping.
            prop_assert_eq!(h.sum(), samples.iter().fold(0u64, |a, &s| a.saturating_add(s)));

            let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
            for q in [p50, p99, p999] {
                assert!(lo <= q && q <= hi, "quantile {q} outside [{lo}, {hi}]");
                // Every quantile is a per-bucket recorded maximum, i.e.
                // an actually observed value — never an interpolation.
                assert!(samples.contains(&q), "quantile {q} was never recorded");
            }
            assert!(p50 <= p99 && p99 <= p999, "quantiles must be monotone in q");

            // Nearest-rank with one sample: every quantile is that sample.
            let mut single = CycleHistogram::new();
            single.record(samples[0]);
            prop_assert_eq!(single.p50(), samples[0]);
            prop_assert_eq!(single.p999(), samples[0]);
            Ok(())
        },
    );
}

#[test]
fn merge_equals_serial_for_any_shard_split() {
    Prop::new("cycle_histogram_shard_split").cases(128).run(
        |rng| {
            let samples = gen_samples(rng, 50);
            let cut = if samples.is_empty() { 0 } else { rng.gen_range(0..=samples.len()) };
            (samples, cut)
        },
        |(samples, cut)| {
            let serial = hist_of(samples);
            let mut sharded = hist_of(&samples[..*cut]);
            sharded.merge(&hist_of(&samples[*cut..]));
            prop_assert_eq!(&sharded, &serial);
            prop_assert_eq!(sharded.to_json(), serial.to_json());
            Ok(())
        },
    );
}
