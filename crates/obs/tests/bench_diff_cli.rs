//! The `bench_diff` regression gate, end to end: exit codes for the
//! pass / regression / host-mismatch / self-test paths, driven through
//! the real binary against fixture reports written to a temp dir.

use std::path::PathBuf;
use std::process::Command;

/// A minimal report in the `ncpu_testkit::bench::Bench::to_json` shape.
fn report(suite: &str, threads: u64, medians: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    out.push_str("  \"host_parallelism\": 8,\n");
    out.push_str(&format!("  \"ncpu_threads\": {threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, (name, median)) in medians.iter().enumerate() {
        let comma = if i + 1 < medians.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {median:.1}, \"min_ns\": {median:.1}, \
             \"max_ns\": {median:.1}, \"samples\": 3, \"iters_per_sample\": 1, \
             \"elements\": 0, \"elems_per_sec\": null}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `contents` under a per-test temp dir and returns the path.
fn fixture(test: &str, name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncpu_bench_diff_{test}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("fixture written");
    path
}

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn identical_reports_pass() {
    let base = fixture("pass", "base.json", &report("s", 4, &[("a", 100.0), ("b", 50.0)]));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), base.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("within tolerance"), "{stdout}");
}

#[test]
fn twenty_percent_regression_fails_at_default_tolerance() {
    let base = fixture("reg", "base.json", &report("s", 4, &[("a", 100.0)]));
    let slow = fixture("reg", "slow.json", &report("s", 4, &[("a", 120.0)]));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn regression_within_raised_tolerance_passes() {
    let base = fixture("tol", "base.json", &report("s", 4, &[("a", 100.0)]));
    let slow = fixture("tol", "slow.json", &report("s", 4, &[("a", 120.0)]));
    let (code, stdout, _) =
        run(&["--tolerance", "0.5", base.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn disappeared_benchmark_fails() {
    let base = fixture("gone", "base.json", &report("s", 4, &[("a", 100.0), ("b", 50.0)]));
    let fresh = fixture("gone", "fresh.json", &report("s", 4, &[("a", 100.0)]));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("missing from fresh"), "{stdout}");
}

#[test]
fn new_benchmark_is_a_note_not_a_failure() {
    let base = fixture("new", "base.json", &report("s", 4, &[("a", 100.0)]));
    let fresh = fixture("new", "fresh.json", &report("s", 4, &[("a", 100.0), ("b", 50.0)]));
    let (code, stdout, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("new benchmark"), "{stdout}");
}

#[test]
fn host_shape_mismatch_refuses_with_exit_4() {
    let base = fixture("host", "base.json", &report("s", 1, &[("a", 100.0)]));
    let fresh = fixture("host", "fresh.json", &report("s", 4, &[("a", 100.0)]));
    let (code, _, stderr) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("ncpu_threads"), "{stderr}");

    let (code, _, _) = run(&[
        "--allow-host-mismatch",
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "override must bypass the refusal");
}

#[test]
fn missing_host_header_refuses_with_exit_4() {
    let headerless = r#"{
  "suite": "s",
  "results": [
    {"name": "a", "median_ns": 100.0, "min_ns": 100.0, "max_ns": 100.0,
     "samples": 3, "iters_per_sample": 1, "elements": 0, "elems_per_sec": null}
  ]
}"#;
    let base = fixture("nohdr", "base.json", headerless);
    let fresh = fixture("nohdr", "fresh.json", &report("s", 4, &[("a", 100.0)]));
    let (code, _, stderr) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("header missing"), "{stderr}");
}

#[test]
fn self_test_passes_on_a_well_formed_report() {
    let base = fixture("selftest", "base.json", &report("s", 4, &[("a", 100.0), ("b", 7.5)]));
    let (code, stdout, stderr) = run(&["--self-test", base.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("caught the injected regression"), "{stdout}");
}

#[test]
fn parse_and_usage_errors_exit_2() {
    let garbage = fixture("bad", "garbage.json", "not json at all");
    let ok = fixture("bad", "ok.json", &report("s", 4, &[("a", 100.0)]));
    let (code, _, stderr) = run(&[garbage.to_str().unwrap(), ok.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");

    let (code, _, _) = run(&[]);
    assert_eq!(code, Some(2));
    let (code, _, _) = run(&["--tolerance", "nope", "a", "b"]);
    assert_eq!(code, Some(2));
}
