//! The `trace_check` CLI gate itself: a Chrome trace whose lane
//! timestamps run backwards (the signature of a worker racing the
//! recorder) must make the binary exit nonzero, and a good trace must
//! keep it at zero. The bad input is a pinned regression fixture shared
//! with the workspace-level golden files.

use std::process::Command;

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/trace_lane_regression.json");
const GOOD: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/trace_tiny.json");

#[test]
fn exits_nonzero_on_out_of_order_lane_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_check"))
        .arg(FIXTURE)
        .output()
        .expect("trace_check runs");
    assert!(!out.status.success(), "out-of-order lane fixture must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("goes backwards"), "unexpected diagnostic: {stderr}");
}

#[test]
fn exits_zero_on_well_formed_trace() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_check"))
        .arg(GOOD)
        .output()
        .expect("trace_check runs");
    assert!(
        out.status.success(),
        "golden trace must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
