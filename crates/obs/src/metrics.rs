//! Deterministic, allocation-light cycle-domain metrics.
//!
//! The run reports carried only makespan and scalar counters; the
//! serving and QoS roadmap items need *distributions* — per-item
//! latency, queue depth, per-core utilization — and they need them to
//! stay byte-identical across engines and worker counts. This module
//! provides the one aggregate both can share:
//!
//! * [`CycleHistogram`] — a log2-bucketed histogram over `u64` cycle
//!   values with a fixed 65-bucket layout (no heap allocation per
//!   sample). Each bucket keeps a count *and* the maximum value it has
//!   seen, so quantiles are reported as the exact maximum of the bucket
//!   holding the nearest-rank sample — deterministic, merge-order
//!   independent, and exact whenever a bucket holds a single distinct
//!   value (the steady-state common case, where every item has the same
//!   latency). In the worst case the reported quantile overshoots the
//!   true nearest-rank value by strictly less than 2× (both live in the
//!   same power-of-two bucket).
//! * [`MetricsReport`] — a named registry of histograms, `BTreeMap`
//!   backed so iteration and JSON export are deterministic, with an
//!   associative+commutative [`MetricsReport::merge`] so per-worker
//!   shards fold to the same bytes in any grouping (the `ncpu-par`
//!   ordered fold relies on this).
//!
//! Determinism argument: `record` and `merge` only ever add counts and
//! take maxima — both commutative, associative monoids — so the final
//! histogram state is a function of the *multiset* of recorded values,
//! never of arrival order, thread interleaving, or merge tree shape.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Number of buckets: bucket 0 holds the value 0, bucket `k ≥ 1` holds
/// values in `[2^(k-1), 2^k)`, up to `k = 64` (all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over cycle counts (or any `u64` metric).
///
/// Fixed-size, no heap: recording is two array writes plus scalar
/// updates. See the module docs for the quantile semantics.
#[derive(Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    counts: [u64; HISTOGRAM_BUCKETS],
    maxes: [u64; HISTOGRAM_BUCKETS],
}

impl Default for CycleHistogram {
    fn default() -> CycleHistogram {
        CycleHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            counts: [0; HISTOGRAM_BUCKETS],
            maxes: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Bucket index for `value`: 0 for 0, else `1 + floor(log2 value)`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl CycleHistogram {
    /// An empty histogram.
    pub fn new() -> CycleHistogram {
        CycleHistogram::default()
    }

    /// Records one sample. The running sum saturates at `u64::MAX`
    /// rather than wrapping: a pegged total is visibly wrong, a wrapped
    /// one is silently misleading.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = bucket_of(value);
        self.counts[b] += 1;
        self.maxes[b] = self.maxes[b].max(value);
    }

    /// Folds `other` into `self`. Commutative and associative: any merge
    /// tree over the same samples yields the same histogram.
    pub fn merge(&mut self, other: &CycleHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for b in 0..HISTOGRAM_BUCKETS {
            self.counts[b] += other.counts[b];
            self.maxes[b] = self.maxes[b].max(other.maxes[b]);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile at `q ∈ [0, 1]` by nearest rank: the max of the
    /// bucket containing sample number `ceil(q·count)` in sorted order
    /// (0 when empty). Exact for `q = 1`; otherwise an upper bound
    /// within 2× of the true nearest-rank value (same log2 bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in 0..HISTOGRAM_BUCKETS {
            seen += self.counts[b];
            if seen >= rank {
                return self.maxes[b];
            }
        }
        self.max
    }

    /// Median ([`CycleHistogram::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// `(bucket_index, count, bucket_max)` for every non-empty bucket,
    /// in ascending bucket order.
    pub fn buckets(&self) -> Vec<(usize, u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter(|&b| self.counts[b] > 0)
            .map(|b| (b, self.counts[b], self.maxes[b]))
            .collect()
    }

    /// Renders the histogram as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p99(),
            self.p999(),
        );
        for (i, (b, count, max)) in self.buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{b},{count},{max}]");
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Debug for CycleHistogram {
    /// Compact, deterministic: summary scalars plus non-empty buckets
    /// (the raw 65-entry arrays would drown report Debug output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CycleHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("buckets", &self.buckets())
            .finish()
    }
}

/// A named registry of [`CycleHistogram`]s — the `metrics` block of a
/// run report / `RUN_*.json` artifact.
///
/// Naming follows the counter convention (`[a-z0-9._]`):
/// `item.latency_cycles`, `item.service_cycles`, `item.queue_depth`,
/// `core.util_permille`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    histograms: BTreeMap<String, CycleHistogram>,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> MetricsReport {
        MetricsReport::default()
    }

    /// Records `value` into the histogram named `name`, creating it
    /// empty first.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = CycleHistogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Folds `other` into `self`, histogram by histogram. Commutative
    /// and associative, like [`CycleHistogram::merge`].
    pub fn merge(&mut self, other: &MetricsReport) {
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// The histogram named `name`, if it has recorded anything.
    pub fn get(&self, name: &str) -> Option<&CycleHistogram> {
        self.histograms.get(name)
    }

    /// Number of named histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True if no histogram exists.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Sorted iteration over `(name, histogram)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CycleHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the registry as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, h)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", h.to_json());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = CycleHistogram::new();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!((h.p50(), h.p99(), h.p999()), (0, 0, 0));
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.to_json(), "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p99\":0,\"p999\":0,\"buckets\":[]}");
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = CycleHistogram::new();
        for _ in 0..1000 {
            h.record(1234);
        }
        assert_eq!(h.p50(), 1234);
        assert_eq!(h.p99(), 1234);
        assert_eq!(h.p999(), 1234);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.mean(), 1234.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = CycleHistogram::new();
        for v in [0u64, 1, 5, 17, 100, 1000, 65536, 7, 3, 3] {
            h.record(v);
        }
        assert!(h.min() <= h.p50());
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        assert_eq!(h.max(), 65536);
        assert_eq!(h.quantile(1.0), 65536);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 66672);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CycleHistogram::new();
        let mut b = CycleHistogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [2u64, 20, 200, 0] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.count(), 7);
    }

    #[test]
    fn report_records_merges_and_exports_sorted() {
        let mut a = MetricsReport::new();
        a.record("item.latency_cycles", 100);
        a.record("core.util_permille", 999);
        let mut b = MetricsReport::new();
        b.record("item.latency_cycles", 200);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("item.latency_cycles").unwrap().count(), 2);
        let json = a.to_json();
        // BTreeMap order: core.* before item.*.
        let core_at = json.find("core.util_permille").unwrap();
        let item_at = json.find("item.latency_cycles").unwrap();
        assert!(core_at < item_at, "{json}");
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn debug_output_is_compact() {
        let mut h = CycleHistogram::new();
        h.record(9);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("buckets: [(4, 1, 9)]"), "{dbg}");
        assert!(!dbg.contains("0, 0, 0, 0, 0, 0, 0, 0, 0"), "{dbg}");
    }
}
