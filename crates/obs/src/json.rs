//! A minimal recursive-descent JSON parser and the well-formedness
//! checkers `ci.sh` runs over emitted artifacts (via the `trace_check`
//! binary). In-tree on purpose: the workspace is hermetic, so no
//! external schema crates.

use crate::event::{KNOWN_EVENT_NAMES, KNOWN_PHASE_LABELS};

/// A parsed JSON value. Object keys keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in textual key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders a [`Json`] value as a single compact line: no whitespace,
/// object keys in their stored order. Deterministic — the same value
/// always renders to the same bytes — which is what the serve
/// protocol's byte-identical cached-vs-fresh contract rests on.
///
/// Numbers that are exact integers within ±2^53 render without a
/// decimal point; everything else uses Rust's shortest round-trip
/// `f64` formatting.
pub fn render_compact(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => out.push_str(&render_num(*n)),
        Json::Str(s) => out.push_str(&crate::export::json_string(s)),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&crate::export::json_string(key));
                out.push(':');
                render_into(item, out);
            }
            out.push('}');
        }
    }
}

fn render_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() <= crate::numparse::MAX_EXACT_INT {
        format!("{}", n as i64)
    } else {
        format!("{n:?}")
    }
}

/// Parses `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: take the whole scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty utf8 tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn require_num(value: &Json, key: &str, context: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{context}: missing numeric \"{key}\""))
}

fn require_str<'a>(value: &'a Json, key: &str, context: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{context}: missing string \"{key}\""))
}

/// Checks that `name` sticks to the counter/metric naming charset.
fn check_name_charset(name: &str, what: &str) -> Result<(), String> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
    if ok {
        Ok(())
    } else {
        Err(format!("{what} name \"{name}\" outside [a-z0-9._]"))
    }
}

/// Checks one histogram value in a v2 `"metrics"` block: the required
/// summary scalars plus a `buckets` array of `[index, count, max]`
/// triples.
fn validate_histogram(name: &str, value: &Json) -> Result<(), String> {
    let context = format!("metric \"{name}\"");
    for key in ["count", "sum", "min", "max", "p50", "p99", "p999"] {
        require_num(value, key, &context)?;
    }
    let buckets = value
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{context}: missing \"buckets\" array"))?;
    for bucket in buckets {
        let triple = bucket
            .as_arr()
            .filter(|t| t.len() == 3 && t.iter().all(|v| v.as_num().is_some()))
            .ok_or_else(|| format!("{context}: bucket is not a numeric triple"))?;
        if triple[1].as_num() == Some(0.0) {
            return Err(format!("{context}: empty bucket emitted"));
        }
    }
    Ok(())
}

/// Checks a parsed `RUN_<usecase>.json` document: required fields,
/// numeric types, counter-name charset, and span labels restricted to
/// the known phase taxonomy. Accepts schema `ncpu-run-v1` (no metrics)
/// and `ncpu-run-v2` (requires a well-formed `"metrics"` block).
pub fn validate_run_artifact(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("ncpu-run-v1") && schema != Some("ncpu-run-v2") {
        return Err("run artifact: missing or wrong \"schema\"".to_string());
    }
    require_str(doc, "name", "run artifact")?;
    require_str(doc, "config", "run artifact")?;
    require_num(doc, "makespan_cycles", "run artifact")?;
    require_num(doc, "accuracy", "run artifact")?;
    let cores = doc
        .get("cores")
        .and_then(Json::as_arr)
        .ok_or("run artifact: missing \"cores\" array")?;
    for core in cores {
        let role = require_str(core, "role", "core entry")?;
        require_num(core, "busy_cycles", &format!("core \"{role}\""))?;
        require_num(core, "utilization", &format!("core \"{role}\""))?;
        let spans = core
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("core \"{role}\": missing \"spans\" array"))?;
        for span in spans {
            let label = require_str(span, "label", "span")?;
            if !KNOWN_PHASE_LABELS.contains(&label) {
                return Err(format!("unknown span label \"{label}\""));
            }
            let start = require_num(span, "start", "span")?;
            let end = require_num(span, "end", "span")?;
            if end < start {
                return Err(format!("span \"{label}\" ends before it starts"));
            }
        }
    }
    let counters = doc.get("counters").ok_or("run artifact: missing \"counters\"")?;
    let Json::Obj(fields) = counters else {
        return Err("run artifact: \"counters\" must be an object".to_string());
    };
    for (name, value) in fields {
        check_name_charset(name, "counter")?;
        if value.as_num().is_none() {
            return Err(format!("counter \"{name}\" is not numeric"));
        }
    }
    if schema == Some("ncpu-run-v2") {
        let metrics = doc.get("metrics").ok_or("run artifact: missing \"metrics\"")?;
        let Json::Obj(fields) = metrics else {
            return Err("run artifact: \"metrics\" must be an object".to_string());
        };
        for (name, value) in fields {
            check_name_charset(name, "metric")?;
            validate_histogram(name, value)?;
        }
    }
    Ok(())
}

/// Checks a parsed Chrome `trace_event` document: required per-event
/// fields, every non-metadata event name in [`KNOWN_EVENT_NAMES`] (the
/// CI gate), and per-lane timestamp order — within one `(pid, tid)`
/// lane the `ts` values must be non-decreasing in document order.
/// The exporter sorts events before emission, so a backwards lane means
/// a worker raced the recorder; `trace_check` exits nonzero on it.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace: missing \"traceEvents\" array")?;
    let mut lane_ts: Vec<((f64, f64), f64)> = Vec::new();
    for event in events {
        let name = require_str(event, "name", "trace event")?;
        let ph = require_str(event, "ph", &format!("event \"{name}\""))?;
        let pid = require_num(event, "pid", &format!("event \"{name}\""))?;
        let tid = require_num(event, "tid", &format!("event \"{name}\""))?;
        if ph == "M" {
            continue; // metadata (thread names) — no timestamp, any name
        }
        let ts = require_num(event, "ts", &format!("event \"{name}\""))?;
        if ph == "X" {
            require_num(event, "dur", &format!("event \"{name}\""))?;
        } else if ph != "i" {
            return Err(format!("event \"{name}\": unexpected phase \"{ph}\""));
        }
        if !KNOWN_EVENT_NAMES.contains(&name) {
            return Err(format!("unknown event kind \"{name}\""));
        }
        match lane_ts.iter_mut().find(|(lane, _)| *lane == (pid, tid)) {
            Some((_, last)) if ts < *last => {
                return Err(format!(
                    "event \"{name}\": lane (pid {pid}, tid {tid}) goes backwards: \
                     ts {ts} after {last}"
                ));
            }
            Some((_, last)) => *last = ts,
            None => lane_ts.push(((pid, tid), ts)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#)
            .expect("parses");
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn compact_rendering_round_trips_and_is_deterministic() {
        let text = r#"{"a":[1,2.5,-300],"b":{"c":"x\ny","d":null},"e":true,"f":0.001}"#;
        let doc = parse(text).expect("parses");
        let rendered = render_compact(&doc);
        assert_eq!(rendered, text, "compact rendering is canonical for compact input");
        assert_eq!(parse(&rendered).expect("round trips"), doc);
        assert_eq!(render_compact(&doc), rendered, "rendering is deterministic");
        // Multi-line pretty input renders down to one line.
        let pretty = parse("{\n  \"k\": [ 1 ,\t2 ]\n}\n").unwrap();
        assert_eq!(render_compact(&pretty), r#"{"k":[1,2]}"#);
    }

    #[test]
    fn compact_rendering_keeps_integers_integral() {
        let doc = parse(r#"{"n":1000000,"u":0.973451,"z":0}"#).unwrap();
        assert_eq!(render_compact(&doc), r#"{"n":1000000,"u":0.973451,"z":0}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validator_flags_unknown_event_kind() {
        let doc = parse(
            r#"{"traceEvents":[{"name":"mystery","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn validator_flags_out_of_order_lane_timestamps() {
        // Interleaved lanes are fine as long as each lane's own clock
        // only moves forward...
        let ok = parse(
            r#"{"traceEvents":[
                {"name":"retire","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
                {"name":"retire","ph":"i","ts":1,"pid":0,"tid":1,"s":"t"},
                {"name":"retire","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"}]}"#,
        )
        .unwrap();
        validate_chrome_trace(&ok).expect("interleaved monotone lanes are valid");
        // ...but a single lane stepping backwards is a hard failure.
        let bad = parse(
            r#"{"traceEvents":[
                {"name":"retire","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
                {"name":"retire","ph":"i","ts":4,"pid":0,"tid":0,"s":"t"}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn validator_flags_unknown_span_label() {
        let doc = parse(
            r#"{"schema":"ncpu-run-v1","name":"x","config":"c","makespan_cycles":1,
                "accuracy":1.0,
                "cores":[{"role":"r","busy_cycles":1,"utilization":1.0,
                          "spans":[{"label":"mystery","start":0,"end":1}]}],
                "counters":{}}"#,
        )
        .unwrap();
        let err = validate_run_artifact(&doc).unwrap_err();
        assert!(err.contains("unknown span label"), "{err}");
    }

    #[test]
    fn validator_accepts_v2_metrics_and_flags_bad_histograms() {
        let ok = parse(
            r#"{"schema":"ncpu-run-v2","name":"x","config":"c","makespan_cycles":1,
                "accuracy":1.0,"cores":[],"counters":{},
                "metrics":{"item.latency_cycles":
                    {"count":2,"sum":34,"min":10,"max":24,"p50":10,"p99":24,"p999":24,
                     "buckets":[[4,1,10],[5,1,24]]}}}"#,
        )
        .unwrap();
        validate_run_artifact(&ok).expect("v2 with metrics validates");
        let missing = parse(
            r#"{"schema":"ncpu-run-v2","name":"x","config":"c","makespan_cycles":1,
                "accuracy":1.0,"cores":[],"counters":{}}"#,
        )
        .unwrap();
        assert!(validate_run_artifact(&missing).is_err(), "v2 requires metrics");
        let bad = parse(
            r#"{"schema":"ncpu-run-v2","name":"x","config":"c","makespan_cycles":1,
                "accuracy":1.0,"cores":[],"counters":{},
                "metrics":{"m":{"count":1,"sum":1,"min":1,"max":1,"p50":1,"p99":1,
                                "p999":1,"buckets":[[1,1]]}}}"#,
        )
        .unwrap();
        let err = validate_run_artifact(&bad).unwrap_err();
        assert!(err.contains("numeric triple"), "{err}");
    }

    #[test]
    fn validator_flags_bad_counter_names() {
        let doc = parse(
            r#"{"schema":"ncpu-run-v1","name":"x","config":"c","makespan_cycles":1,
                "accuracy":1.0,"cores":[],"counters":{"Bad Name":1}}"#,
        )
        .unwrap();
        assert!(validate_run_artifact(&doc).is_err());
    }
}
