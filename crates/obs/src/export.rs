//! Machine-readable run artifacts: `RUN_<usecase>.json` summaries and
//! Chrome `trace_event` files that open directly in Perfetto or
//! `chrome://tracing`.
//!
//! Everything is hand-rolled, deterministic JSON (same policy as
//! `ncpu-testkit`'s `BENCH_*.json` writer): keys appear in a fixed
//! order, floats are formatted with six decimals, and counter maps are
//! `BTreeMap`-sorted, so two identical runs produce byte-identical
//! files — `tests/determinism.rs` pins that.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::event::EventKind;
use crate::metrics::MetricsReport;
use crate::record::{Counters, Recorder};

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-core slice of a [`RunArtifact`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoreArtifact {
    /// Role string from the run report (`"ncpu0"`, `"cpu"`, `"accel"`, ...).
    pub role: String,
    /// Cycles the core spent busy.
    pub busy_cycles: u64,
    /// `busy_cycles / makespan`.
    pub utilization: f64,
    /// `(label, start_cycle, end_cycle)` phase spans on the global clock.
    pub spans: Vec<(String, u64, u64)>,
}

/// The machine-readable summary of one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// Use-case name (`image`, `motion`, `parametric`) — becomes the
    /// `RUN_<name>.json` / `TRACE_<name>.json` file stem.
    pub name: String,
    /// Human-readable system configuration (e.g. `"2x ncpu"`).
    pub config: String,
    /// End-to-end makespan in cycles.
    pub makespan: u64,
    /// Classification accuracy over the run's items.
    pub accuracy: f64,
    /// Per-core utilization and spans.
    pub cores: Vec<CoreArtifact>,
    /// Final counter registry snapshot.
    pub counters: Counters,
    /// Cycle-domain histograms (per-item latency, queue depth,
    /// per-core utilization) recorded over the run.
    pub metrics: MetricsReport,
}

impl RunArtifact {
    /// Renders the artifact as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"ncpu-run-v2\",");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        let _ = writeln!(out, "  \"config\": {},", json_string(&self.config));
        let _ = writeln!(out, "  \"makespan_cycles\": {},", self.makespan);
        let _ = writeln!(out, "  \"accuracy\": {:.6},", self.accuracy);
        out.push_str("  \"cores\": [\n");
        for (i, core) in self.cores.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"role\": {}, \"busy_cycles\": {}, \"utilization\": {:.6}, \"spans\": [",
                json_string(&core.role),
                core.busy_cycles,
                core.utilization
            );
            for (j, (label, start, end)) in core.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\": {}, \"start\": {start}, \"end\": {end}}}",
                    json_string(label)
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.cores.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {\n");
        let total = self.counters.len();
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(out, "    {}: {value}{comma}", json_string(name));
        }
        out.push_str("  },\n");
        out.push_str("  \"metrics\": {\n");
        let total = self.metrics.len();
        for (i, (name, hist)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(out, "    {}: {}{comma}", json_string(name), hist.to_json());
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Renders `rec` as a Chrome `trace_event` JSON document.
///
/// Span events become `"ph": "X"` duration events and instants become
/// `"ph": "i"` instant events; the cycle count is written as the
/// microsecond timestamp (1 cycle = 1 µs on screen). `thread_names`
/// maps core ids to display names via `thread_name` metadata events.
pub fn chrome_trace(rec: &Recorder, thread_names: &[(u16, String)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, name) in thread_names {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ),
        );
    }
    for event in rec.sorted_events() {
        let name = json_string(event.kind.name());
        let (cycle, core) = (event.cycle, event.core);
        let line = match &event.kind {
            EventKind::Phase { end, .. } => format!(
                "{{\"name\":{name},\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{cycle},\
                 \"dur\":{},\"pid\":0,\"tid\":{core}}}",
                end - cycle
            ),
            EventKind::Dma { bytes, end } => format!(
                "{{\"name\":{name},\"cat\":\"fabric\",\"ph\":\"X\",\"ts\":{cycle},\
                 \"dur\":{},\"pid\":0,\"tid\":{core},\"args\":{{\"bytes\":{bytes}}}}}",
                end - cycle
            ),
            EventKind::Inference { images, end } => format!(
                "{{\"name\":{name},\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{cycle},\
                 \"dur\":{},\"pid\":0,\"tid\":{core},\"args\":{{\"images\":{images}}}}}",
                end - cycle
            ),
            EventKind::Retire { pc } => format!(
                "{{\"name\":{name},\"cat\":\"pipeline\",\"ph\":\"i\",\"ts\":{cycle},\
                 \"pid\":0,\"tid\":{core},\"s\":\"t\",\"args\":{{\"pc\":{pc}}}}}"
            ),
            EventKind::L2Access { addr, .. } => format!(
                "{{\"name\":{name},\"cat\":\"mem\",\"ph\":\"i\",\"ts\":{cycle},\
                 \"pid\":0,\"tid\":{core},\"s\":\"t\",\"args\":{{\"addr\":{addr}}}}}"
            ),
            EventKind::Stall { .. } | EventKind::ModeSwitch { .. } => format!(
                "{{\"name\":{name},\"cat\":\"pipeline\",\"ph\":\"i\",\"ts\":{cycle},\
                 \"pid\":0,\"tid\":{core},\"s\":\"t\"}}"
            ),
            EventKind::Fault { .. } | EventKind::Detect { .. } | EventKind::Recover { .. } => {
                format!(
                    "{{\"name\":{name},\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{cycle},\
                     \"pid\":0,\"tid\":{core},\"s\":\"t\"}}"
                )
            }
        };
        push_event(&mut out, &mut first, &line);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, line: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(line);
}

/// Directory run artifacts are written to: `NCPU_TRACE_DIR`, or the
/// current directory when unset.
pub fn trace_dir() -> PathBuf {
    match std::env::var("NCPU_TRACE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("."),
    }
}

/// Writes `RUN_<name>.json` and `TRACE_<name>.json` into `dir`,
/// creating it if needed. Returns the two paths.
pub fn write_artifacts_to(
    dir: &Path,
    artifact: &RunArtifact,
    rec: &Recorder,
    thread_names: &[(u16, String)],
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let run_path = dir.join(format!("RUN_{}.json", artifact.name));
    let trace_path = dir.join(format!("TRACE_{}.json", artifact.name));
    std::fs::write(&run_path, artifact.to_json())?;
    std::fs::write(&trace_path, chrome_trace(rec, thread_names))?;
    Ok((run_path, trace_path))
}

/// [`write_artifacts_to`] into [`trace_dir()`].
pub fn write_artifacts(
    artifact: &RunArtifact,
    rec: &Recorder,
    thread_names: &[(u16, String)],
) -> io::Result<(PathBuf, PathBuf)> {
    write_artifacts_to(&trace_dir(), artifact, rec, thread_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceLevel;

    fn tiny_artifact() -> (RunArtifact, Recorder) {
        let mut rec = Recorder::new(TraceLevel::Full);
        rec.phase(0, "cpu", 0, 10);
        rec.phase(0, "bnn", 10, 30);
        rec.phase(1, "bnn", 4, 24);
        rec.emit(0, 10, EventKind::ModeSwitch { to: crate::event::Mode::Bnn });
        rec.set_counter("core0.retired", 12);
        rec.set_counter("run.makespan_cycles", 30);
        rec.metric("item.latency_cycles", 10);
        rec.metric("item.latency_cycles", 24);
        rec.metric("core.util_permille", 1000);
        let artifact = RunArtifact {
            name: "tiny".into(),
            config: "2x ncpu".into(),
            makespan: 30,
            accuracy: 1.0,
            cores: vec![
                CoreArtifact {
                    role: "ncpu0".into(),
                    busy_cycles: 30,
                    utilization: 1.0,
                    spans: vec![("cpu".into(), 0, 10), ("bnn".into(), 10, 30)],
                },
                CoreArtifact {
                    role: "ncpu1".into(),
                    busy_cycles: 20,
                    utilization: 20.0 / 30.0,
                    spans: vec![("bnn".into(), 4, 24)],
                },
            ],
            counters: rec.counters().clone(),
            metrics: rec.metrics().clone(),
        };
        (artifact, rec)
    }

    #[test]
    fn run_artifact_json_is_deterministic_and_parses() {
        let (artifact, _) = tiny_artifact();
        let a = artifact.to_json();
        let b = artifact.to_json();
        assert_eq!(a, b);
        let parsed = crate::json::parse(&a).expect("valid json");
        crate::json::validate_run_artifact(&parsed).expect("well-formed artifact");
    }

    #[test]
    fn chrome_trace_parses_and_validates() {
        let (_, rec) = tiny_artifact();
        let names = vec![(0, "ncpu0".to_string()), (1, "ncpu1".to_string())];
        let trace = chrome_trace(&rec, &names);
        let parsed = crate::json::parse(&trace).expect("valid json");
        crate::json::validate_chrome_trace(&parsed).expect("well-formed trace");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
