//! Trace levels, the counter registry, and the sharded [`Recorder`].
//!
//! Every instrumented component (pipeline, accelerator, DMA engine,
//! NCPU core) owns its own `Recorder` shard, recording against its
//! local cycle domain with core id 0. The SoC layer owns the root
//! shard and [`Recorder::absorb`]s the component shards at well-defined
//! points (item completion, mode-switch service, halt), re-stamping the
//! core id and re-basing cycles onto the global clock — the same
//! offset arithmetic the pre-obs `Timeline` re-basing used.
//!
//! The default recorder is disabled and capacity-0: every hot-path hook
//! guards on [`Recorder::wants_events`], a single predictable branch,
//! so an un-traced simulation pays one compare per hook site.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::metrics::MetricsReport;

/// How much the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing; every hook is a single branch.
    #[default]
    Off,
    /// Record counters and span events (phases, DMA, inference batches).
    Counters,
    /// Additionally record bounded per-cycle instant events
    /// (retirements, stalls, mode switches, L2 accesses).
    Full,
}

impl TraceLevel {
    /// Reads the level from the `NCPU_TRACE` environment variable
    /// (`off`, `counters`, or `full`; unset or empty means `Off`). An
    /// unrecognized value also falls back to `Off`, but loudly: a
    /// single stderr warning per process instead of silently tracing
    /// nothing.
    pub fn from_env() -> TraceLevel {
        match std::env::var("NCPU_TRACE") {
            Ok(raw) => TraceLevel::parse(&raw).unwrap_or_else(|| {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "ncpu-obs: ignoring invalid NCPU_TRACE={raw:?} \
                         (want \"off\", \"counters\", or \"full\"); tracing is off"
                    );
                });
                TraceLevel::Off
            }),
            Err(_) => TraceLevel::Off,
        }
    }

    /// Parses an `NCPU_TRACE` value without touching the environment:
    /// `off`, `counters`, `full`, or empty/whitespace (= `Off`); `None`
    /// for anything else.
    pub fn parse(raw: &str) -> Option<TraceLevel> {
        match raw.trim() {
            "" | "off" => Some(TraceLevel::Off),
            "counters" => Some(TraceLevel::Counters),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// This level, raised to at least `Counters`. The SoC root recorder
    /// uses this so run reports can always be derived from span events.
    pub fn at_least_counters(self) -> TraceLevel {
        self.max(TraceLevel::Counters)
    }
}

/// Monotonic counter registry with a stable, sorted naming scheme
/// (`core0.retired`, `core0.stall.load_use`, `dma.bytes`,
/// `run.makespan_cycles`, ...). Backed by a `BTreeMap` so iteration —
/// and therefore every export — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.values.get_mut(name) {
            *v += delta;
        } else {
            self.values.insert(name.to_string(), delta);
        }
    }

    /// Sets `name` to `value` (gauge-style snapshot).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sorted iteration over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds `other` into `self` by addition.
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// Renders the registry as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push('}');
        out
    }
}

/// Default bound on retained instant events at [`TraceLevel::Full`].
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

/// One shard of the cycle-stamped event bus.
///
/// Span events (few, report-bearing) are kept unbounded, exactly like
/// the pre-obs `Timeline`. Instant events are bounded by `capacity`;
/// overflow increments [`Recorder::dropped`] instead of reallocating,
/// so a `Full` trace of a long run degrades gracefully.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    level: TraceLevel,
    capacity: usize,
    spans: Vec<Event>,
    events: Vec<Event>,
    dropped: u64,
    counters: Counters,
    metrics: MetricsReport,
}

impl Recorder {
    /// A recorder at `level` with the default instant-event bound.
    pub fn new(level: TraceLevel) -> Recorder {
        Recorder::with_capacity(level, DEFAULT_EVENT_CAPACITY)
    }

    /// A disabled, capacity-0 recorder — the zero-cost default.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// A recorder at `level` retaining at most `capacity` instant events.
    pub fn with_capacity(level: TraceLevel, capacity: usize) -> Recorder {
        Recorder { level, capacity, ..Recorder::default() }
    }

    /// Current trace level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Changes the trace level without touching already-recorded data.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
        if level == TraceLevel::Full && self.capacity == 0 {
            self.capacity = DEFAULT_EVENT_CAPACITY;
        }
    }

    /// True when instant events should be emitted (level `Full`).
    #[inline]
    pub fn wants_events(&self) -> bool {
        self.level == TraceLevel::Full
    }

    /// True when span events should be emitted (level `Counters`+).
    #[inline]
    pub fn wants_spans(&self) -> bool {
        self.level >= TraceLevel::Counters
    }

    /// Records `kind` at `cycle` on `core`, routing span kinds to the
    /// unbounded span list and instants to the bounded event list.
    pub fn emit(&mut self, core: u16, cycle: u64, kind: EventKind) {
        if kind.is_span() {
            if self.wants_spans() {
                self.spans.push(Event { cycle, core, kind });
            }
        } else if self.wants_events() {
            self.push_instant(Event { cycle, core, kind });
        }
    }

    /// Convenience: records a `Phase` span.
    pub fn phase(&mut self, core: u16, label: impl Into<String>, start: u64, end: u64) {
        if self.wants_spans() {
            self.spans.push(Event {
                cycle: start,
                core,
                kind: EventKind::Phase { label: label.into(), end },
            });
        }
    }

    fn push_instant(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Adds `delta` to counter `name` (no-op when the level is `Off`).
    pub fn count(&mut self, name: &str, delta: u64) {
        if self.wants_spans() {
            self.counters.add(name, delta);
        }
    }

    /// Snapshots counter `name` to `value` (no-op when the level is `Off`).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        if self.wants_spans() {
            self.counters.set(name, value);
        }
    }

    /// Records one sample of `value` into the cycle-domain histogram
    /// `name` (no-op when the level is `Off`).
    pub fn metric(&mut self, name: &str, value: u64) {
        if self.wants_spans() {
            self.metrics.record(name, value);
        }
    }

    /// The metrics registry: cycle-domain histograms keyed by name.
    pub fn metrics(&self) -> &MetricsReport {
        &self.metrics
    }

    /// The counter registry.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Recorded span events, in emission order.
    pub fn spans(&self) -> &[Event] {
        &self.spans
    }

    /// Recorded instant events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Instant events lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains `child`, re-stamping every event with `core` and re-basing
    /// cycles by `offset` (child-local clock → this shard's clock).
    ///
    /// Absorption ignores this shard's own level: data the child already
    /// paid for is never silently discarded, only bounded.
    pub fn absorb(&mut self, child: &mut Recorder, core: u16, offset: i64) {
        for mut event in child.spans.drain(..) {
            event.core = core;
            event.shift(offset);
            self.spans.push(event);
        }
        for mut event in child.events.drain(..) {
            event.core = core;
            event.shift(offset);
            self.push_instant(event);
        }
        self.dropped += child.dropped;
        child.dropped = 0;
        self.counters.merge(&child.counters);
        child.counters = Counters::new();
        self.metrics.merge(&child.metrics);
        child.metrics = MetricsReport::new();
    }

    /// All recorded events (spans then instants) sorted by
    /// `(cycle, core)` with a stable order for ties — the exporter view.
    pub fn sorted_events(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.spans.iter().chain(self.events.iter()).cloned().collect();
        all.sort_by_key(|e| (e.cycle, e.core));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallCause;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = Recorder::disabled();
        rec.emit(0, 1, EventKind::Retire { pc: 4 });
        rec.phase(0, "cpu", 0, 10);
        rec.count("core0.retired", 3);
        assert!(rec.events().is_empty());
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn counters_level_keeps_spans_but_not_instants() {
        let mut rec = Recorder::new(TraceLevel::Counters);
        rec.emit(0, 1, EventKind::Retire { pc: 4 });
        rec.phase(0, "cpu", 0, 10);
        rec.count("core0.retired", 3);
        assert!(rec.events().is_empty());
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.counters().get("core0.retired"), 3);
    }

    #[test]
    fn full_level_bounds_instants_and_counts_drops() {
        let mut rec = Recorder::with_capacity(TraceLevel::Full, 2);
        for cycle in 0..5 {
            rec.emit(0, cycle, EventKind::Stall { cause: StallCause::LoadUse });
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn absorb_restamps_core_and_rebases_cycles() {
        let mut root = Recorder::new(TraceLevel::Full);
        let mut child = Recorder::new(TraceLevel::Full);
        child.phase(0, "bnn", 10, 20);
        child.emit(0, 12, EventKind::Retire { pc: 8 });
        child.count("images", 2);
        root.absorb(&mut child, 3, 100);
        assert!(child.spans().is_empty() && child.events().is_empty());
        assert!(child.counters().is_empty());
        let span = &root.spans()[0];
        assert_eq!((span.core, span.cycle, span.kind.end()), (3, 110, Some(120)));
        let inst = &root.events()[0];
        assert_eq!((inst.core, inst.cycle), (3, 112));
        assert_eq!(root.counters().get("images"), 2);
    }

    #[test]
    fn metrics_follow_the_counter_gate_and_absorb() {
        let mut off = Recorder::disabled();
        off.metric("item.latency_cycles", 7);
        assert!(off.metrics().is_empty());

        let mut root = Recorder::new(TraceLevel::Counters);
        root.metric("item.latency_cycles", 4);
        let mut child = Recorder::new(TraceLevel::Counters);
        child.metric("item.latency_cycles", 9);
        root.absorb(&mut child, 1, 0);
        assert!(child.metrics().is_empty());
        let hist = root.metrics().get("item.latency_cycles").unwrap();
        assert_eq!((hist.count(), hist.min(), hist.max()), (2, 4, 9));
    }

    #[test]
    fn counters_merge_and_json_are_sorted() {
        let mut a = Counters::new();
        a.add("b.second", 2);
        a.add("a.first", 1);
        let mut b = Counters::new();
        b.add("b.second", 3);
        a.merge(&b);
        assert_eq!(a.to_json(), "{\"a.first\":1,\"b.second\":5}");
    }

    #[test]
    fn env_level_parsing_defaults_off() {
        // Not touching the real environment (tests run in parallel):
        // only the default path is exercised here.
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
        assert_eq!(TraceLevel::Off.at_least_counters(), TraceLevel::Counters);
        assert_eq!(TraceLevel::Full.at_least_counters(), TraceLevel::Full);
    }

    #[test]
    fn trace_env_parsing_falls_back_not_panics() {
        // Pure-parse tests (no env mutation): every documented spelling
        // maps to its level, and junk is rejected so `from_env` can warn
        // once and fall back to Off instead of silently absorbing it.
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse(""), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("  "), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("counters"), Some(TraceLevel::Counters));
        assert_eq!(TraceLevel::parse(" full "), Some(TraceLevel::Full));
        for junk in ["Full", "FULL", "1", "on", "trace", "counter"] {
            assert_eq!(TraceLevel::parse(junk), None, "{junk:?} must be rejected");
        }
    }

    #[test]
    fn sorted_events_orders_by_cycle_then_core() {
        let mut rec = Recorder::new(TraceLevel::Full);
        rec.phase(1, "cpu", 5, 9);
        rec.phase(0, "cpu", 5, 7);
        rec.emit(0, 2, EventKind::Retire { pc: 0 });
        let sorted = rec.sorted_events();
        assert_eq!(sorted[0].cycle, 2);
        assert_eq!((sorted[1].cycle, sorted[1].core), (5, 0));
        assert_eq!((sorted[2].cycle, sorted[2].core), (5, 1));
    }
}
