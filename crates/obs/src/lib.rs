//! `ncpu-obs` — the unified observability layer for the NCPU simulator.
//!
//! The paper's headline claims are observability claims (>99% core
//! utilization, zero-cycle switching, Fig. 15 runtime breakdowns), so
//! this crate gives every layer of the stack one canonical event model
//! instead of five ad-hoc accumulators:
//!
//! * [`Event`] / [`EventKind`] — the cycle-stamped event taxonomy
//!   (retirements, stalls, mode switches, DMA, L2 accesses, phases);
//! * [`Recorder`] — a sharded event bus plus [`Counters`] registry,
//!   zero-cost when disabled (the default): each hook is one branch;
//! * [`RunArtifact`] / [`chrome_trace`] — deterministic hand-rolled
//!   JSON exporters (`RUN_<usecase>.json`, and a Chrome `trace_event`
//!   file that opens in Perfetto / `chrome://tracing`);
//! * [`json`] — a minimal in-tree parser and the well-formedness
//!   checkers behind the `trace_check` CI binary.
//!
//! Runtime control is by environment: `NCPU_TRACE=off|counters|full`
//! selects the [`TraceLevel`], `NCPU_TRACE_DIR=<dir>` the artifact
//! directory. The crate has zero dependencies, keeping the workspace
//! hermetic (`tests/hermetic.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod numparse;
pub mod record;
pub mod selfprof;

pub use event::{
    Detector, Event, EventKind, FaultClass, Mode, Recovery, StallCause, KNOWN_EVENT_NAMES,
    KNOWN_PHASE_LABELS,
};
pub use export::{chrome_trace, write_artifacts, write_artifacts_to, CoreArtifact, RunArtifact};
pub use metrics::{CycleHistogram, MetricsReport};
pub use record::{Counters, Recorder, TraceLevel};
