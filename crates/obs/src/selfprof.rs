//! Simulator self-profiling: where does *the simulator* spend its time?
//!
//! The cycle-domain recorder ([`crate::Recorder`]) observes the guest —
//! simulated cycles on simulated cores. This module observes the host:
//! wall-clock time per labelled region of the simulator itself
//! (engines, fabric hot paths, replay vs simulate), aggregated into a
//! call tree and exported as Brendan-Gregg collapsed-stack text that
//! any flamegraph renderer accepts (`flamegraph.pl`, speedscope,
//! inferno), plus a JSON summary with inclusive/exclusive times.
//!
//! Design mirrors the recorder's: profiling is **off by default** and
//! every [`span`] call is one thread-local flag check when disabled.
//! Enable it with `NCPU_SELFPROF=1` (read once per thread) or
//! programmatically via [`set_enabled`]. State is thread-local — with
//! `NCPU_THREADS=1` the whole run profiles on one thread; with a worker
//! pool each worker profiles its own slice (scoped workers die with
//! their map call, so profile runs intended for export should pin
//! `NCPU_THREADS=1`).
//!
//! Wall-clock times are inherently nondeterministic, so every export
//! comes in two weightings: wall microseconds (the flamegraph you look
//! at) and **visit counts** (deterministic — a pure function of the
//! workload, byte-identical across runs; the CI self-profile smoke
//! diffs two runs of the visits-weighted output).

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Environment variable enabling the self-profiler (`1` = on).
pub const SELFPROF_ENV: &str = "NCPU_SELFPROF";

#[derive(Debug)]
struct Node {
    label: String,
    /// Index of the parent node, or `usize::MAX` for roots.
    parent: usize,
    children: Vec<usize>,
    visits: u64,
    wall: Duration,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Tree {
    fn enter(&mut self, label: &str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(usize::MAX);
        let siblings: &[usize] = match self.stack.last() {
            Some(&p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].label == label);
        let node = found.unwrap_or_else(|| {
            let i = self.nodes.len();
            self.nodes.push(Node {
                label: label.to_string(),
                parent,
                children: Vec::new(),
                visits: 0,
                wall: Duration::ZERO,
            });
            match self.stack.last() {
                Some(&p) => self.nodes[p].children.push(i),
                None => self.roots.push(i),
            }
            i
        });
        self.stack.push(node);
        node
    }

    fn exit(&mut self, node: usize, elapsed: Duration) {
        // Guards drop LIFO within a thread; tolerate a mismatched pop
        // (a take() between enter and exit) rather than corrupting.
        if self.stack.last() == Some(&node) {
            self.stack.pop();
        }
        if let Some(n) = self.nodes.get_mut(node) {
            n.visits += 1;
            n.wall += elapsed;
        }
    }
}

thread_local! {
    /// -1 = not yet read from the environment, 0 = off, 1 = on.
    static ENABLED: Cell<i8> = const { Cell::new(-1) };
    static TREE: RefCell<Tree> = RefCell::new(Tree::default());
}

/// Whether the profiler is on for this thread (reads `NCPU_SELFPROF`
/// on first call).
pub fn enabled() -> bool {
    ENABLED.with(|e| {
        let v = e.get();
        if v >= 0 {
            return v == 1;
        }
        let on = std::env::var(SELFPROF_ENV).is_ok_and(|v| v == "1");
        e.set(i8::from(on));
        on
    })
}

/// Turns the profiler on or off for this thread (overrides the
/// environment; tests use this so they don't share global state).
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(i8::from(on)));
}

/// A scope guard returned by [`span`]; records the enclosed wall time
/// on drop. When the profiler is off this is an inert zero-field-ish
/// struct and `span` costs one thread-local flag check.
#[must_use = "the span measures until this guard drops"]
pub struct SpanGuard {
    armed: Option<(usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((node, start)) = self.armed.take() {
            let elapsed = start.elapsed();
            TREE.with(|t| t.borrow_mut().exit(node, elapsed));
        }
    }
}

/// Opens a labelled profiling span; the returned guard closes it.
/// Nested spans form the stack the flamegraph shows.
pub fn span(label: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: None };
    }
    let node = TREE.with(|t| t.borrow_mut().enter(label));
    SpanGuard {
        armed: Some((node, Instant::now())),
    }
}

/// One aggregated stack in a [`ProfReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfEntry {
    /// Root-to-leaf label path.
    pub stack: Vec<String>,
    /// Times this exact stack was entered.
    pub visits: u64,
    /// Inclusive wall time in nanoseconds.
    pub wall_ns: u128,
    /// Exclusive wall time (inclusive minus children's inclusive).
    pub excl_ns: u128,
}

impl ProfEntry {
    /// The collapsed-stack frame string: labels joined with `;`.
    pub fn frames(&self) -> String {
        self.stack.join(";")
    }
}

/// A drained profile: every observed stack with its aggregate weights,
/// sorted by frame path so exports are canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// Aggregated stacks, sorted by [`ProfEntry::frames`].
    pub entries: Vec<ProfEntry>,
}

/// Drains and resets this thread's profile tree into a report.
/// Open spans (guards not yet dropped) are discarded.
pub fn take() -> ProfReport {
    let tree = TREE.with(|t| std::mem::take(&mut *t.borrow_mut()));
    let mut entries = Vec::with_capacity(tree.nodes.len());
    for (i, node) in tree.nodes.iter().enumerate() {
        if node.visits == 0 {
            continue; // never-closed span: no measured weight
        }
        let mut stack = vec![node.label.clone()];
        let mut p = node.parent;
        while p != usize::MAX {
            stack.push(tree.nodes[p].label.clone());
            p = tree.nodes[p].parent;
        }
        stack.reverse();
        let child_wall: Duration = tree.nodes[i]
            .children
            .iter()
            .map(|&c| tree.nodes[c].wall)
            .sum();
        let wall_ns = node.wall.as_nanos();
        entries.push(ProfEntry {
            stack,
            visits: node.visits,
            wall_ns,
            excl_ns: wall_ns.saturating_sub(child_wall.as_nanos()),
        });
    }
    entries.sort_by(|a, b| a.stack.cmp(&b.stack));
    ProfReport { entries }
}

impl ProfReport {
    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Collapsed-stack text weighted by **visit counts** — fully
    /// deterministic (a pure function of the workload). One line per
    /// stack: `a;b;c <visits>`.
    pub fn collapsed_visits(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} {}", e.frames(), e.visits);
        }
        out
    }

    /// Collapsed-stack text weighted by **exclusive wall microseconds**
    /// (minimum 1 so no observed stack vanishes) — the flamegraph
    /// input. Wall times vary run to run; diff the visits weighting
    /// instead.
    pub fn collapsed_wall(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let us = (e.excl_ns / 1_000).max(1);
            let _ = writeln!(out, "{} {}", e.frames(), us);
        }
        out
    }

    /// JSON summary: schema `ncpu-selfprof-v1`, one record per stack
    /// with visits and inclusive/exclusive nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ncpu-selfprof-v1\",\n  \"spans\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"stack\": {}, \"visits\": {}, \"wall_ns\": {}, \"excl_ns\": {}}}{comma}",
                crate::export::json_string(&e.frames()),
                e.visits,
                e.wall_ns,
                e.excl_ns,
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `PROF_<name>.folded` (wall-weighted, flamegraph input),
    /// `PROF_<name>.visits.folded` (deterministic), and
    /// `PROF_<name>.json` into [`crate::export::trace_dir`], returning
    /// the three paths.
    pub fn write_artifacts(&self, name: &str) -> io::Result<[PathBuf; 3]> {
        let dir = crate::export::trace_dir();
        std::fs::create_dir_all(&dir)?;
        let folded = dir.join(format!("PROF_{name}.folded"));
        let visits = dir.join(format!("PROF_{name}.visits.folded"));
        let json = dir.join(format!("PROF_{name}.json"));
        std::fs::write(&folded, self.collapsed_wall())?;
        std::fs::write(&visits, self.collapsed_visits())?;
        std::fs::write(&json, self.to_json())?;
        Ok([folded, visits, json])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each test runs on its own thread in its own thread-local tree,
    /// so enabling here cannot leak into other tests.
    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _g = span("engine.test");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn nested_spans_build_stacks_with_visit_counts() {
        set_enabled(true);
        for _ in 0..3 {
            let _outer = span("outer");
            for _ in 0..2 {
                let _inner = span("inner");
            }
        }
        set_enabled(false);
        let report = take();
        assert_eq!(report.entries.len(), 2);
        let outer = &report.entries[0];
        let inner = &report.entries[1];
        assert_eq!(outer.frames(), "outer");
        assert_eq!(inner.frames(), "outer;inner");
        assert_eq!(outer.visits, 3);
        assert_eq!(inner.visits, 6);
        // Inclusive covers children; exclusive subtracts them.
        assert!(outer.wall_ns >= inner.wall_ns);
        assert!(outer.excl_ns <= outer.wall_ns);
        let folded = report.collapsed_visits();
        assert_eq!(folded, "outer 3\nouter;inner 6\n");
        assert!(!report.collapsed_wall().is_empty());
    }

    #[test]
    fn sibling_spans_share_a_parent_but_not_a_node() {
        set_enabled(true);
        {
            let _p = span("parent");
            let _a = span("a");
            drop(_a);
            let _b = span("b");
        }
        set_enabled(false);
        let report = take();
        let frames: Vec<String> = report.entries.iter().map(ProfEntry::frames).collect();
        assert_eq!(frames, ["parent", "parent;a", "parent;b"]);
    }

    #[test]
    fn visits_weighting_is_deterministic_across_runs() {
        let run = || {
            set_enabled(true);
            for i in 0..5 {
                let _g = span("top");
                if i % 2 == 0 {
                    let _h = span("even");
                }
            }
            set_enabled(false);
            take().collapsed_visits()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn json_summary_parses_with_in_tree_parser() {
        set_enabled(true);
        {
            let _g = span("engine.event");
            let _h = span("event.replay_item");
        }
        set_enabled(false);
        let report = take();
        let doc = crate::json::parse(&report.to_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("ncpu-selfprof-v1")
        );
        let spans = doc.get("spans").and_then(crate::json::Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn take_resets_the_tree() {
        set_enabled(true);
        {
            let _g = span("once");
        }
        set_enabled(false);
        assert!(!take().is_empty());
        assert!(take().is_empty());
    }
}
