//! Hardened number parsing shared by every env-variable and protocol
//! surface in the workspace.
//!
//! The workspace grew the same defensive parse three times — the
//! `NCPU_THREADS` worker count in `ncpu-par`, the `NCPU_TRACE` level in
//! [`crate::record::TraceLevel`], and the `NCPU_FAULT_*` plan knobs —
//! and the serve protocol adds a fourth consumer of untrusted numeric
//! text. This module is the one shared helper: trimmed input, explicit
//! empty-means-unset, a typed error carrying the rejected text
//! verbatim, and checked `f64`→integer conversions for JSON numbers
//! (the in-tree parser reads all numbers as `f64`, so an integer field
//! must reject NaN, negatives, fractions, and anything past 2^53 where
//! `f64` stops being exact).

/// A numeric value that failed to parse: the rejected text verbatim
/// plus what was wanted, for single-line diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadNumber {
    /// The rejected input, untrimmed.
    pub raw: String,
    /// Human description of the expected shape (`"a non-negative
    /// integer"`, `"a finite number"`).
    pub wanted: &'static str,
}

impl std::fmt::Display for BadNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid number {:?}: want {}", self.raw, self.wanted)
    }
}

impl std::error::Error for BadNumber {}

/// Parses a `u64` from untrusted text: `Ok(None)` for empty or
/// all-whitespace input (an unset knob), `Ok(Some(n))` for a
/// non-negative integer, [`BadNumber`] for garbage or overflow.
pub fn parse_u64(raw: &str) -> Result<Option<u64>, BadNumber> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed.parse::<u64>().map(Some).map_err(|_| BadNumber {
        raw: raw.to_string(),
        wanted: "a non-negative integer",
    })
}

/// [`parse_u64`] restricted to `u32` range.
pub fn parse_u32(raw: &str) -> Result<Option<u32>, BadNumber> {
    match parse_u64(raw)? {
        None => Ok(None),
        Some(n) => u32::try_from(n).map(Some).map_err(|_| BadNumber {
            raw: raw.to_string(),
            wanted: "a non-negative integer within u32 range",
        }),
    }
}

/// Parses a finite `f64` from untrusted text: `Ok(None)` for empty or
/// all-whitespace input, [`BadNumber`] for garbage, `inf`, or NaN.
pub fn parse_f64(raw: &str) -> Result<Option<f64>, BadNumber> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Some(v)),
        _ => Err(BadNumber { raw: raw.to_string(), wanted: "a finite number" }),
    }
}

/// Largest integer `f64` represents exactly (2^53); past it, JSON
/// numbers silently lose integer precision, so checked conversions
/// refuse rather than round.
pub const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// Checked conversion of a JSON number (always an `f64` in the in-tree
/// parser) to `u64`: `None` for NaN, negatives, fractions, and values
/// past 2^53.
pub fn num_as_u64(n: f64) -> Option<u64> {
    if n.is_finite() && (0.0..=MAX_EXACT_INT).contains(&n) && n.fract() == 0.0 {
        Some(n as u64)
    } else {
        None
    }
}

/// [`num_as_u64`] restricted to `u32` range.
pub fn num_as_u32(n: f64) -> Option<u32> {
    num_as_u64(n).and_then(|v| u32::try_from(v).ok())
}

/// Checked conversion of a JSON number to `usize` (via `u64`).
pub fn num_as_usize(n: f64) -> Option<usize> {
    num_as_u64(n).and_then(|v| usize::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace_mean_unset() {
        assert_eq!(parse_u64(""), Ok(None));
        assert_eq!(parse_u64("   "), Ok(None));
        assert_eq!(parse_u32("\t\n"), Ok(None));
        assert_eq!(parse_f64(""), Ok(None));
    }

    #[test]
    fn plain_values_parse_with_surrounding_whitespace() {
        assert_eq!(parse_u64(" 42 "), Ok(Some(42)));
        assert_eq!(parse_u64(&u64::MAX.to_string()), Ok(Some(u64::MAX)));
        assert_eq!(parse_u32("4294967295"), Ok(Some(u32::MAX)));
        assert_eq!(parse_f64(" 0.25 "), Ok(Some(0.25)));
        assert_eq!(parse_f64("-3e2"), Ok(Some(-300.0)));
    }

    #[test]
    fn garbage_is_rejected_with_the_raw_text() {
        for bad in ["12abc", "abc", "1 2", "0x10", "--3"] {
            let err = parse_u64(bad).unwrap_err();
            assert_eq!(err.raw, bad);
            assert!(err.to_string().contains(bad), "{err}");
        }
        assert!(parse_f64("1.2.3").is_err());
        assert!(parse_f64("nan").is_err(), "NaN is not a usable knob value");
        assert!(parse_f64("inf").is_err(), "infinity is not a usable knob value");
    }

    #[test]
    fn negative_integers_are_garbage_not_wraparound() {
        assert!(parse_u64("-1").is_err());
        assert!(parse_u32("-4").is_err());
    }

    #[test]
    fn overflow_is_rejected_not_saturated() {
        // One past u64::MAX, and a wall of nines.
        assert!(parse_u64("18446744073709551616").is_err());
        assert!(parse_u64("99999999999999999999999999").is_err());
        // In u64 range but past u32.
        let err = parse_u32("4294967296").unwrap_err();
        assert!(err.wanted.contains("u32"), "{err}");
    }

    #[test]
    fn json_number_conversions_are_checked() {
        assert_eq!(num_as_u64(0.0), Some(0));
        assert_eq!(num_as_u64(128.0), Some(128));
        assert_eq!(num_as_u64(MAX_EXACT_INT), Some(1 << 53));
        assert_eq!(num_as_u64(-1.0), None);
        assert_eq!(num_as_u64(1.5), None);
        assert_eq!(num_as_u64(f64::NAN), None);
        assert_eq!(num_as_u64(f64::INFINITY), None);
        assert_eq!(num_as_u64(MAX_EXACT_INT * 2.0), None, "past 2^53 is inexact");
        assert_eq!(num_as_u32(4294967295.0), Some(u32::MAX));
        assert_eq!(num_as_u32(4294967296.0), None);
        assert_eq!(num_as_usize(7.0), Some(7));
    }
}
