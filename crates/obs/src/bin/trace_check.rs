//! CI well-formedness checker for emitted observability artifacts.
//!
//! Usage: `trace_check <file.json>...` — files whose stem starts with
//! `RUN_` are checked against the run-artifact shape, files starting
//! with `TRACE_` against the Chrome `trace_event` shape; anything else
//! must pass at least one of the two. Exits non-zero on the first
//! malformed file or unknown event kind.

use std::process::ExitCode;

use ncpu_obs::json::{parse, validate_chrome_trace, validate_run_artifact, Json};

fn check_file(path: &str) -> Result<&'static str, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc: Json = parse(&text)?;
    let stem = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if stem.starts_with("RUN_") {
        validate_run_artifact(&doc)?;
        Ok("run artifact")
    } else if stem.starts_with("TRACE_") {
        validate_chrome_trace(&doc)?;
        Ok("chrome trace")
    } else if validate_run_artifact(&doc).is_ok() {
        Ok("run artifact")
    } else {
        validate_chrome_trace(&doc)?;
        Ok("chrome trace")
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        match check_file(file) {
            Ok(kind) => println!("trace_check: {file}: ok ({kind})"),
            Err(err) => {
                eprintln!("trace_check: {file}: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
