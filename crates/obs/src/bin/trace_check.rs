//! CI well-formedness checker for emitted observability artifacts.
//!
//! Usage: `trace_check [--summary] <file.json>...` — files whose stem
//! starts with `RUN_` are checked against the run-artifact shape, files
//! starting with `TRACE_` against the Chrome `trace_event` shape;
//! anything else must pass at least one of the two. Exits non-zero on
//! the first malformed file or unknown event kind.
//!
//! A run artifact with a nonzero `obs.dropped_instants` counter gets a
//! `warning:` line (exit code unchanged): the bounded instant buffer
//! overflowed, so the `TRACE_*` file silently truncates the run.
//!
//! With `--summary`, each file additionally prints aggregate totals:
//! span counts and a span-duration histogram (run artifacts aggregate
//! core spans, chrome traces aggregate `ph:"X"` events via the same
//! [`CycleHistogram`] the metrics layer uses), counter totals, and the
//! artifact's own metrics block when present.

use std::process::ExitCode;

use ncpu_obs::json::{parse, validate_chrome_trace, validate_run_artifact, Json};
use ncpu_obs::CycleHistogram;

struct Checked {
    kind: &'static str,
    warnings: Vec<String>,
    doc: Json,
}

fn check_file(path: &str) -> Result<Checked, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc: Json = parse(&text)?;
    let stem = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let kind = if stem.starts_with("RUN_") {
        validate_run_artifact(&doc)?;
        "run artifact"
    } else if stem.starts_with("TRACE_") {
        validate_chrome_trace(&doc)?;
        "chrome trace"
    } else if validate_run_artifact(&doc).is_ok() {
        "run artifact"
    } else {
        validate_chrome_trace(&doc)?;
        "chrome trace"
    };
    let mut warnings = Vec::new();
    if kind == "run artifact" {
        let dropped = doc
            .get("counters")
            .and_then(|c| c.get("obs.dropped_instants"))
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if dropped > 0.0 {
            warnings.push(format!(
                "{dropped:.0} instant events dropped by the bounded buffer — \
                 the TRACE_* file silently truncates this run \
                 (raise the recorder capacity to keep them)"
            ));
        }
    }
    Ok(Checked { kind, warnings, doc })
}

/// Span-duration aggregation: `(span_count, duration_histogram)`.
fn span_stats(checked: &Checked) -> (u64, CycleHistogram) {
    let mut hist = CycleHistogram::new();
    let mut count = 0u64;
    match checked.kind {
        "run artifact" => {
            for core in checked.doc.get("cores").and_then(Json::as_arr).unwrap_or(&[]) {
                for span in core.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
                    let (Some(start), Some(end)) = (
                        span.get("start").and_then(Json::as_num),
                        span.get("end").and_then(Json::as_num),
                    ) else {
                        continue;
                    };
                    count += 1;
                    hist.record((end - start).max(0.0) as u64);
                }
            }
        }
        _ => {
            for event in
                checked.doc.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[])
            {
                if event.get("ph").and_then(Json::as_str) == Some("X") {
                    count += 1;
                    hist.record(
                        event.get("dur").and_then(Json::as_num).unwrap_or(0.0).max(0.0) as u64,
                    );
                }
            }
        }
    }
    (count, hist)
}

fn print_summary(file: &str, checked: &Checked) {
    let (spans, durations) = span_stats(checked);
    println!(
        "  {file}: {spans} spans, duration cycles: total {} p50 {} p99 {} max {}",
        durations.sum(),
        durations.p50(),
        durations.p99(),
        durations.max(),
    );
    if let Some(Json::Obj(counters)) = checked.doc.get("counters") {
        let total: f64 = counters.iter().filter_map(|(_, v)| v.as_num()).sum();
        println!("  {file}: {} counters, total {total:.0}", counters.len());
    }
    if let Some(Json::Obj(metrics)) = checked.doc.get("metrics") {
        for (name, hist) in metrics {
            let get = |k: &str| hist.get(k).and_then(Json::as_num).unwrap_or(0.0);
            println!(
                "  {file}: metric {name}: count {:.0} p50 {:.0} p99 {:.0} max {:.0}",
                get("count"),
                get("p50"),
                get("p99"),
                get("max"),
            );
        }
    }
}

fn main() -> ExitCode {
    let mut summary = false;
    let files: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--summary" {
                summary = true;
                false
            } else {
                true
            }
        })
        .collect();
    if files.is_empty() {
        eprintln!("usage: trace_check [--summary] <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        match check_file(file) {
            Ok(checked) => {
                println!("trace_check: {file}: ok ({})", checked.kind);
                for warning in &checked.warnings {
                    println!("trace_check: {file}: warning: {warning}");
                }
                if summary {
                    print_summary(file, &checked);
                }
            }
            Err(err) => {
                eprintln!("trace_check: {file}: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
