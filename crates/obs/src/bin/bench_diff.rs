//! Bench regression gate: compares a fresh `BENCH_*.json` report
//! against a committed baseline and fails when any benchmark's median
//! slows down beyond a noise tolerance.
//!
//! Usage:
//!
//! ```text
//! bench_diff [--tolerance FRACTION] [--allow-host-mismatch] \
//!            <baseline.json> <fresh.json> [<baseline2.json> <fresh2.json> ...]
//! bench_diff --self-test <report.json>
//! ```
//!
//! A benchmark **regresses** when `fresh.median_ns > baseline.median_ns
//! × (1 + tolerance)` (default tolerance 0.15). A baseline benchmark
//! missing from the fresh report also fails the gate — a deleted
//! benchmark cannot hide a regression. Fresh-only benchmarks are
//! reported but never fail (new coverage is welcome).
//!
//! Any number of baseline/fresh *pairs* can be gated in one invocation;
//! every pair is always compared (and every regressed benchmark named)
//! before the tool exits, so one slow suite cannot hide another's
//! regressions behind an early failure.
//!
//! Reports carry `host_parallelism` / `ncpu_threads` headers; when the
//! two reports disagree (or a header is missing), the comparison is
//! meaningless and the tool refuses with exit code 4 unless
//! `--allow-host-mismatch` is given.
//!
//! `--self-test` proves the gate actually bites: the report is compared
//! against itself (must pass), then against a synthetic copy of itself
//! with every median inflated by 20% (must fail). CI runs this on each
//! fresh report so the regression gate cannot silently rot.
//!
//! Exit codes: 0 ok, 1 regression (or disappeared benchmark, or failed
//! self-test), 2 usage/parse error, 4 host-shape refusal.

use std::process::ExitCode;

use ncpu_obs::json::{parse, Json};

/// One benchmark row pulled out of a report's `results` array.
struct Row {
    name: String,
    median_ns: f64,
    /// Declared elements per iteration (0 when the row predates
    /// throughput declarations or never declared one). Informational
    /// only: the gate compares medians, and a baseline without
    /// `elements` stays comparable to a fresh report that has them.
    elements: f64,
}

/// A parsed `BENCH_*.json` report.
struct Report {
    suite: String,
    host_parallelism: Option<u64>,
    ncpu_threads: Option<u64>,
    rows: Vec<Row>,
}

fn load_report(path: &str) -> Result<Report, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    report_from_doc(path, &doc)
}

fn report_from_doc(path: &str, doc: &Json) -> Result<Report, String> {
    let suite = doc
        .get("suite")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing \"suite\" string"))?
        .to_string();
    let header = |key: &str| doc.get(key).and_then(Json::as_num).map(|n| n as u64);
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"results\" array"))?;
    let mut rows = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: results[{i}]: missing \"name\""))?
            .to_string();
        let median_ns = r
            .get("median_ns")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{path}: results[{i}]: missing \"median_ns\""))?;
        let elements = r.get("elements").and_then(Json::as_num).unwrap_or(0.0);
        rows.push(Row { name, median_ns, elements });
    }
    Ok(Report {
        suite,
        host_parallelism: header("host_parallelism"),
        ncpu_threads: header("ncpu_threads"),
        rows,
    })
}

/// Outcome of comparing two reports.
enum Verdict {
    Ok,
    Regression,
    HostMismatch(String),
}

fn compare(base: &Report, fresh: &Report, tolerance: f64, allow_host_mismatch: bool) -> Verdict {
    if !allow_host_mismatch {
        let shapes = [
            ("host_parallelism", base.host_parallelism, fresh.host_parallelism),
            ("ncpu_threads", base.ncpu_threads, fresh.ncpu_threads),
        ];
        for (key, b, f) in shapes {
            match (b, f) {
                (Some(b), Some(f)) if b == f => {}
                (Some(b), Some(f)) => {
                    return Verdict::HostMismatch(format!(
                        "{key}: baseline {b} vs fresh {f} — numbers from different \
                         host shapes are not comparable (--allow-host-mismatch to override)"
                    ));
                }
                _ => {
                    return Verdict::HostMismatch(format!(
                        "{key}: header missing from {} report — regenerate it with \
                         a harness that records the host shape \
                         (--allow-host-mismatch to override)",
                        if b.is_none() { "baseline" } else { "fresh" }
                    ));
                }
            }
        }
    }
    if base.suite != fresh.suite {
        println!(
            "bench_diff: note: comparing suite {:?} against {:?}",
            base.suite, fresh.suite
        );
    }

    let mut failed = false;
    for b in &base.rows {
        // A row that newly declares (or changes) its per-iteration
        // element count is still the same benchmark — medians stay
        // comparable, so note the change and move on. Old baselines
        // predate throughput declarations entirely (elements 0/null).
        if let Some(f) = fresh.rows.iter().find(|f| f.name == b.name) {
            if b.elements != f.elements {
                println!(
                    "bench_diff: note {}/{}: elements {} -> {} (throughput \
                     declaration changed; medians still compared)",
                    base.suite, b.name, b.elements, f.elements
                );
            }
        }
        let Some(f) = fresh.rows.iter().find(|f| f.name == b.name) else {
            println!(
                "bench_diff: FAIL {}/{}: present in baseline, missing from fresh report",
                base.suite, b.name
            );
            failed = true;
            continue;
        };
        let limit = b.median_ns * (1.0 + tolerance);
        let ratio = if b.median_ns > 0.0 { f.median_ns / b.median_ns } else { f64::INFINITY };
        if f.median_ns > limit {
            println!(
                "bench_diff: FAIL {}/{}: median {:.1} ns vs baseline {:.1} ns \
                 ({:+.1}% > +{:.0}% tolerance)",
                base.suite,
                b.name,
                f.median_ns,
                b.median_ns,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            );
            failed = true;
        } else {
            println!(
                "bench_diff: ok   {}/{}: median {:.1} ns vs baseline {:.1} ns ({:+.1}%)",
                base.suite,
                b.name,
                f.median_ns,
                b.median_ns,
                (ratio - 1.0) * 100.0,
            );
        }
    }
    for f in &fresh.rows {
        if !base.rows.iter().any(|b| b.name == f.name) {
            println!(
                "bench_diff: note {}/{}: new benchmark (no baseline), median {:.1} ns",
                fresh.suite, f.name, f.median_ns
            );
        }
    }
    if failed {
        Verdict::Regression
    } else {
        Verdict::Ok
    }
}

/// Proves the gate bites: a report must pass against itself and fail
/// against a copy of itself with every median inflated by 20%.
fn self_test(path: &str) -> Result<(), String> {
    let report = load_report(path)?;
    if report.rows.is_empty() {
        return Err(format!("{path}: empty results array — nothing to gate"));
    }
    println!("bench_diff: self-test {path}: comparing report against itself");
    match compare(&report, &report, 0.15, false) {
        Verdict::Ok => {}
        Verdict::Regression => {
            return Err(format!("{path}: report regressed against itself"));
        }
        Verdict::HostMismatch(why) => {
            return Err(format!("{path}: host mismatch against itself: {why}"));
        }
    }
    println!("bench_diff: self-test {path}: injecting a 20% regression on every median");
    let slowed = Report {
        suite: report.suite.clone(),
        host_parallelism: report.host_parallelism,
        ncpu_threads: report.ncpu_threads,
        rows: report
            .rows
            .iter()
            .map(|r| Row {
                name: r.name.clone(),
                median_ns: r.median_ns * 1.2,
                elements: r.elements,
            })
            .collect(),
    };
    match compare(&report, &slowed, 0.15, false) {
        Verdict::Regression => {
            println!("bench_diff: self-test {path}: gate caught the injected regression");
            Ok(())
        }
        _ => Err(format!("{path}: gate did NOT catch an injected 20% regression")),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff [--tolerance FRACTION] [--allow-host-mismatch] \
         <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]\n       \
         bench_diff --self-test <report.json>"
    );
    ExitCode::from(2)
}

/// Gates every (baseline, fresh) pair and aggregates: all pairs are
/// compared — and all regressed benchmarks named — before the verdict.
/// A regression anywhere wins over a host-shape refusal anywhere (1
/// beats 4), and either beats success (0).
fn gate_pairs(pairs: &[(Report, Report)], tolerance: f64, allow_host_mismatch: bool) -> u8 {
    let mut regressed = 0usize;
    let mut refused = 0usize;
    for (base, fresh) in pairs {
        match compare(base, fresh, tolerance, allow_host_mismatch) {
            Verdict::Ok => {
                println!(
                    "bench_diff: ok — suite {:?}: {} benchmarks within tolerance",
                    base.suite,
                    base.rows.len()
                );
            }
            Verdict::Regression => regressed += 1,
            Verdict::HostMismatch(why) => {
                eprintln!("bench_diff: refusing to compare suite {:?}: {why}", base.suite);
                refused += 1;
            }
        }
    }
    if regressed > 0 {
        eprintln!("bench_diff: {regressed} of {} suite(s) regressed", pairs.len());
        1
    } else if refused > 0 {
        4
    } else {
        0
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.15f64;
    let mut allow_host_mismatch = false;
    let mut self_test_mode = false;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if !(v >= 0.0 && v.is_finite()) {
                    return usage();
                }
                tolerance = v;
            }
            "--allow-host-mismatch" => allow_host_mismatch = true,
            "--self-test" => self_test_mode = true,
            arg if arg.starts_with("--") => return usage(),
            arg => files.push(arg.to_string()),
        }
        i += 1;
    }

    if self_test_mode {
        if files.len() != 1 {
            return usage();
        }
        return match self_test(&files[0]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_diff: self-test failed: {e}");
                ExitCode::from(1)
            }
        };
    }

    if files.len() < 2 || !files.len().is_multiple_of(2) {
        return usage();
    }
    // Load everything up front: a parse error anywhere is reported for
    // every broken file, then the whole invocation is a usage error.
    let mut pairs = Vec::with_capacity(files.len() / 2);
    let mut load_failed = false;
    for pair in files.chunks_exact(2) {
        match (load_report(&pair[0]), load_report(&pair[1])) {
            (Ok(b), Ok(f)) => pairs.push((b, f)),
            (b, f) => {
                for e in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("bench_diff: {e}");
                }
                load_failed = true;
            }
        }
    }
    if load_failed {
        return ExitCode::from(2);
    }
    ExitCode::from(gate_pairs(&pairs, tolerance, allow_host_mismatch))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(json: &str) -> Report {
        report_from_doc("test", &parse(json).expect("test report parses")).expect("valid")
    }

    /// An old baseline without `elements`/`elems_per_sec` must stay
    /// comparable to a fresh report that newly populates them — the
    /// medians are what the gate judges.
    #[test]
    fn newly_populated_elements_do_not_fail_the_gate() {
        let base = report(
            r#"{"suite":"s","host_parallelism":8,"ncpu_threads":8,"results":[
                {"name":"a","median_ns":100.0},
                {"name":"b","median_ns":200.0,"elements":0,"elems_per_sec":null}]}"#,
        );
        let fresh = report(
            r#"{"suite":"s","host_parallelism":8,"ncpu_threads":8,"results":[
                {"name":"a","median_ns":101.0,"elements":128,"elems_per_sec":1.2},
                {"name":"b","median_ns":199.0,"elements":16,"elems_per_sec":8.0}]}"#,
        );
        assert!(matches!(compare(&base, &fresh, 0.15, false), Verdict::Ok));
    }

    /// Populating `elements` cannot mask a real median regression.
    #[test]
    fn elements_change_does_not_mask_a_regression() {
        let base = report(
            r#"{"suite":"s","host_parallelism":8,"ncpu_threads":8,"results":[
                {"name":"a","median_ns":100.0}]}"#,
        );
        let fresh = report(
            r#"{"suite":"s","host_parallelism":8,"ncpu_threads":8,"results":[
                {"name":"a","median_ns":150.0,"elements":128}]}"#,
        );
        assert!(matches!(compare(&base, &fresh, 0.15, false), Verdict::Regression));
    }

    /// Rows missing `elements` entirely parse as 0 — the pre-throughput
    /// schema stays loadable.
    #[test]
    fn missing_elements_parse_as_zero() {
        let r = report(
            r#"{"suite":"s","host_parallelism":1,"ncpu_threads":1,"results":[
                {"name":"a","median_ns":5.0}]}"#,
        );
        assert_eq!(r.rows[0].elements, 0.0);
    }

    /// Multi-pair gating compares every suite before the verdict: a
    /// regression in the first pair does not stop the second from being
    /// compared, and the aggregate exit code ranks regression (1) over
    /// host refusal (4) over success (0).
    #[test]
    fn multi_pair_gate_compares_every_suite_and_aggregates() {
        let ok = || {
            report(
                r#"{"suite":"a","host_parallelism":1,"ncpu_threads":1,"results":[
                    {"name":"x","median_ns":100.0}]}"#,
            )
        };
        let slow = report(
            r#"{"suite":"a","host_parallelism":1,"ncpu_threads":1,"results":[
                {"name":"x","median_ns":200.0}]}"#,
        );
        let other_host = report(
            r#"{"suite":"a","host_parallelism":2,"ncpu_threads":2,"results":[
                {"name":"x","median_ns":100.0}]}"#,
        );
        assert_eq!(gate_pairs(&[(ok(), ok()), (ok(), ok())], 0.15, false), 0);
        assert_eq!(gate_pairs(&[(ok(), slow), (ok(), ok())], 0.15, false), 1);
        assert_eq!(gate_pairs(&[(ok(), other_host), (ok(), ok())], 0.15, false), 4);
        let slow = report(
            r#"{"suite":"a","host_parallelism":1,"ncpu_threads":1,"results":[
                {"name":"x","median_ns":200.0}]}"#,
        );
        let other_host = report(
            r#"{"suite":"a","host_parallelism":2,"ncpu_threads":2,"results":[
                {"name":"x","median_ns":100.0}]}"#,
        );
        assert_eq!(
            gate_pairs(&[(ok(), other_host), (ok(), slow)], 0.15, false),
            1,
            "a regression outranks a refusal"
        );
    }

    #[test]
    fn host_shape_refusal_still_bites() {
        let base = report(
            r#"{"suite":"s","host_parallelism":8,"ncpu_threads":8,"results":[
                {"name":"a","median_ns":100.0}]}"#,
        );
        let fresh = report(
            r#"{"suite":"s","host_parallelism":4,"ncpu_threads":4,"results":[
                {"name":"a","median_ns":100.0,"elements":7}]}"#,
        );
        assert!(matches!(compare(&base, &fresh, 0.15, false), Verdict::HostMismatch(_)));
        assert!(matches!(compare(&base, &fresh, 0.15, true), Verdict::Ok));
    }
}
