//! The canonical event taxonomy shared by every simulator layer.
//!
//! Each event is stamped with the cycle it happened on and the core it
//! happened in. Components record events against their *local* cycle
//! domain with core id 0; the SoC layer re-stamps both when it absorbs a
//! component recorder (see [`crate::Recorder::absorb`]), so by the time
//! events reach an exporter they all live on the global SoC clock.
//!
//! Kinds split into two tiers:
//!
//! * **span kinds** ([`EventKind::is_span`]) carry an `end` cycle and are
//!   recorded at [`crate::TraceLevel::Counters`] and above — there are
//!   few of them (phase boundaries, DMA transfers, inference batches)
//!   and the run reports are derived from them;
//! * **instant kinds** (retirements, stalls, mode switches, L2 accesses)
//!   are recorded only at [`crate::TraceLevel::Full`] and are bounded by
//!   the recorder's capacity.

/// Execution mode of a reconfigurable NCPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// General-purpose RV32I pipeline mode.
    Cpu,
    /// Reconfigured BNN accelerator mode.
    Bnn,
}

/// Why a pipeline (or a core sharing a fabric) lost a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Load-use interlock bubble between ID and EX.
    LoadUse,
    /// Control-flow redirect flushing younger stages.
    Flush,
    /// Multi-cycle EX occupancy (e.g. the iterative multiplier).
    Ex,
    /// Multi-cycle memory-port occupancy (L2/memport latency).
    Mem,
    /// Lost arbitration for the shared L2 bank (lockstep SoC runs).
    L2Conflict,
}

/// What class of injected fault an [`EventKind::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Single-bit upset in a staged SRAM/L2 image.
    SramFlip,
    /// DMA transfer delivered late.
    DmaStall,
    /// DMA transfer delivered only a prefix of the item.
    DmaTruncate,
    /// Core never retired its item.
    CoreHang,
}

/// Which checker noticed a fault in an [`EventKind::Detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Parity over the staged bytes mismatched at delivery.
    Parity,
    /// The per-item cycle watchdog expired.
    Watchdog,
}

/// What the fabric did about a detected fault in an
/// [`EventKind::Recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// The item was re-staged and re-run after a backoff.
    Retry,
    /// The core was quarantined and its queue re-scheduled.
    Quarantine,
    /// The item exhausted its retry budget and was dropped.
    Drop,
}

/// What happened. Variants with an `end` field are span kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An instruction retired from the WB stage.
    Retire {
        /// Program counter of the retired instruction.
        pc: u32,
    },
    /// A cycle was lost to `cause`.
    Stall {
        /// Why the cycle was lost.
        cause: StallCause,
    },
    /// The core reconfigured into `to` mode.
    ModeSwitch {
        /// Mode entered by the switch.
        to: Mode,
    },
    /// The pipeline touched the shared L2 / memory port.
    L2Access {
        /// Byte address of the access.
        addr: u32,
        /// True for stores, false for loads.
        is_store: bool,
    },
    /// A DMA transfer occupied the fabric from `cycle` to `end`.
    Dma {
        /// Bytes moved by the transfer.
        bytes: u32,
        /// Cycle the transfer completed.
        end: u64,
    },
    /// An inference batch of `images` completed between `cycle` and `end`.
    Inference {
        /// Images classified by the batch.
        images: u32,
        /// Cycle the batch completed.
        end: u64,
    },
    /// A labelled execution phase (`cpu`, `bnn`, `switch`, `front`,
    /// `mid`, `back`).
    Phase {
        /// Phase label; must be one of [`KNOWN_PHASE_LABELS`].
        label: String,
        /// Cycle the phase ended.
        end: u64,
    },
    /// A fault was injected into the fabric (instant, stamped at the
    /// dispatch the fault corrupted).
    Fault {
        /// What went wrong.
        class: FaultClass,
    },
    /// A checker noticed an earlier fault (instant, stamped at the
    /// detection cycle — parity at DMA delivery, watchdog at expiry).
    Detect {
        /// Which checker fired.
        by: Detector,
    },
    /// The fabric acted on a detected fault (instant, stamped at the
    /// decision cycle).
    Recover {
        /// Action taken.
        action: Recovery,
    },
}

/// Phase labels the exporters and the well-formedness checker accept.
pub const KNOWN_PHASE_LABELS: &[&str] =
    &["cpu", "bnn", "switch", "dma", "front", "mid", "back"];

/// Every stable event name the Chrome-trace checker accepts, phase
/// labels included.
pub const KNOWN_EVENT_NAMES: &[&str] = &[
    "retire",
    "stall.load_use",
    "stall.flush",
    "stall.ex",
    "stall.mem",
    "stall.l2_conflict",
    "mode_switch.cpu",
    "mode_switch.bnn",
    "l2.read",
    "l2.write",
    "dma",
    "infer",
    "cpu",
    "bnn",
    "switch",
    "front",
    "mid",
    "back",
    "fault.sram_flip",
    "fault.dma_stall",
    "fault.dma_truncate",
    "fault.core_hang",
    "detect.parity",
    "detect.watchdog",
    "recover.retry",
    "recover.quarantine",
    "recover.drop",
];

impl EventKind {
    /// Stable exporter-facing name of this kind.
    pub fn name(&self) -> &str {
        match self {
            EventKind::Retire { .. } => "retire",
            EventKind::Stall { cause: StallCause::LoadUse } => "stall.load_use",
            EventKind::Stall { cause: StallCause::Flush } => "stall.flush",
            EventKind::Stall { cause: StallCause::Ex } => "stall.ex",
            EventKind::Stall { cause: StallCause::Mem } => "stall.mem",
            EventKind::Stall { cause: StallCause::L2Conflict } => "stall.l2_conflict",
            EventKind::ModeSwitch { to: Mode::Cpu } => "mode_switch.cpu",
            EventKind::ModeSwitch { to: Mode::Bnn } => "mode_switch.bnn",
            EventKind::L2Access { is_store: false, .. } => "l2.read",
            EventKind::L2Access { is_store: true, .. } => "l2.write",
            EventKind::Dma { .. } => "dma",
            EventKind::Inference { .. } => "infer",
            EventKind::Phase { label, .. } => label,
            EventKind::Fault { class: FaultClass::SramFlip } => "fault.sram_flip",
            EventKind::Fault { class: FaultClass::DmaStall } => "fault.dma_stall",
            EventKind::Fault { class: FaultClass::DmaTruncate } => "fault.dma_truncate",
            EventKind::Fault { class: FaultClass::CoreHang } => "fault.core_hang",
            EventKind::Detect { by: Detector::Parity } => "detect.parity",
            EventKind::Detect { by: Detector::Watchdog } => "detect.watchdog",
            EventKind::Recover { action: Recovery::Retry } => "recover.retry",
            EventKind::Recover { action: Recovery::Quarantine } => "recover.quarantine",
            EventKind::Recover { action: Recovery::Drop } => "recover.drop",
        }
    }

    /// True for kinds that carry an `end` cycle (duration events).
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            EventKind::Dma { .. } | EventKind::Inference { .. } | EventKind::Phase { .. }
        )
    }

    /// End cycle for span kinds, `None` for instants.
    pub fn end(&self) -> Option<u64> {
        match self {
            EventKind::Dma { end, .. }
            | EventKind::Inference { end, .. }
            | EventKind::Phase { end, .. } => Some(*end),
            _ => None,
        }
    }

    fn shift_end(&mut self, offset: i64) {
        match self {
            EventKind::Dma { end, .. }
            | EventKind::Inference { end, .. }
            | EventKind::Phase { end, .. } => *end = shift_cycle(*end, offset),
            _ => {}
        }
    }
}

/// One timestamped occurrence on the canonical event bus.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Cycle the event happened on (start cycle for span kinds).
    pub cycle: u64,
    /// Core (Chrome-trace `tid`) the event belongs to. Components record
    /// with 0; the SoC re-stamps on absorption.
    pub core: u16,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Re-bases the event by `offset` cycles (start and, for spans, end).
    pub fn shift(&mut self, offset: i64) {
        self.cycle = shift_cycle(self.cycle, offset);
        self.kind.shift_end(offset);
    }
}

fn shift_cycle(cycle: u64, offset: i64) -> u64 {
    let shifted = cycle as i64 + offset;
    debug_assert!(shifted >= 0, "event shifted before cycle 0");
    shifted.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_all_known() {
        let kinds = [
            EventKind::Retire { pc: 0 },
            EventKind::Stall { cause: StallCause::LoadUse },
            EventKind::Stall { cause: StallCause::Flush },
            EventKind::Stall { cause: StallCause::Ex },
            EventKind::Stall { cause: StallCause::Mem },
            EventKind::Stall { cause: StallCause::L2Conflict },
            EventKind::ModeSwitch { to: Mode::Cpu },
            EventKind::ModeSwitch { to: Mode::Bnn },
            EventKind::L2Access { addr: 0, is_store: false },
            EventKind::L2Access { addr: 0, is_store: true },
            EventKind::Dma { bytes: 4, end: 9 },
            EventKind::Inference { images: 1, end: 9 },
            EventKind::Phase { label: "cpu".into(), end: 9 },
            EventKind::Fault { class: FaultClass::SramFlip },
            EventKind::Fault { class: FaultClass::DmaStall },
            EventKind::Fault { class: FaultClass::DmaTruncate },
            EventKind::Fault { class: FaultClass::CoreHang },
            EventKind::Detect { by: Detector::Parity },
            EventKind::Detect { by: Detector::Watchdog },
            EventKind::Recover { action: Recovery::Retry },
            EventKind::Recover { action: Recovery::Quarantine },
            EventKind::Recover { action: Recovery::Drop },
        ];
        for kind in kinds {
            assert!(
                KNOWN_EVENT_NAMES.contains(&kind.name()),
                "unknown name {}",
                kind.name()
            );
        }
        for label in KNOWN_PHASE_LABELS {
            assert!(KNOWN_EVENT_NAMES.contains(label));
        }
    }

    #[test]
    fn span_kinds_carry_ends() {
        assert!(EventKind::Dma { bytes: 1, end: 2 }.is_span());
        assert!(EventKind::Phase { label: "bnn".into(), end: 2 }.is_span());
        assert!(!EventKind::Retire { pc: 0 }.is_span());
        assert_eq!(EventKind::Inference { images: 2, end: 7 }.end(), Some(7));
        assert_eq!(EventKind::Retire { pc: 0 }.end(), None);
    }

    #[test]
    fn shift_rebases_start_and_end() {
        let mut e = Event {
            cycle: 10,
            core: 0,
            kind: EventKind::Phase { label: "bnn".into(), end: 20 },
        };
        e.shift(5);
        assert_eq!(e.cycle, 15);
        assert_eq!(e.kind.end(), Some(25));
        e.shift(-15);
        assert_eq!(e.cycle, 0);
        assert_eq!(e.kind.end(), Some(10));
    }
}
