//! Property tests: `BitVec` against a plain `Vec<bool>` reference.

use ncpu_bnn::BitVec;
use ncpu_testkit::prop::Prop;
use ncpu_testkit::rng::Rng;
use ncpu_testkit::prop_assert_eq;

fn any_bits(rng: &mut Rng, lo: usize, hi: usize) -> Vec<bool> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

#[test]
fn construction_and_access() {
    Prop::new("bitvec::construction_and_access").run(
        |rng| any_bits(rng, 0, 300),
        |bits| {
            let v = BitVec::from_bools(bits.iter().copied());
            prop_assert_eq!(v.len(), bits.len());
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(v.get(i), b);
                prop_assert_eq!(v.sign(i), if b { 1 } else { -1 });
            }
            prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
            Ok(())
        },
    );
}

#[test]
fn dot_matches_naive() {
    // Generated as a single vector of (a, b) pairs so shrinking can never
    // break the equal-length invariant `dot` requires.
    Prop::new("bitvec::dot_matches_naive").run(
        |rng| {
            let n = rng.gen_range(1usize..300);
            (0..n).map(|_| (rng.gen::<bool>(), rng.gen::<bool>())).collect::<Vec<(bool, bool)>>()
        },
        |pairs| {
            let a_bits: Vec<bool> = pairs.iter().map(|&(a, _)| a).collect();
            let b_bits: Vec<bool> = pairs.iter().map(|&(_, b)| b).collect();
            let a = BitVec::from_bools(a_bits.iter().copied());
            let b = BitVec::from_bools(b_bits.iter().copied());
            let naive: i32 = a_bits
                .iter()
                .zip(&b_bits)
                .map(|(&x, &y)| if x == y { 1 } else { -1 })
                .sum();
            prop_assert_eq!(a.dot(&b), naive);
            prop_assert_eq!(b.dot(&a), naive, "dot is symmetric");
            prop_assert_eq!(a.dot(&a), a.len() as i32, "self-dot is length");
            Ok(())
        },
    );
}

#[test]
fn byte_round_trip() {
    Prop::new("bitvec::byte_round_trip").run(
        |rng| any_bits(rng, 1, 300),
        |bits| {
            let v = BitVec::from_bools(bits.iter().copied());
            let bytes = v.to_bytes();
            prop_assert_eq!(bytes.len(), bits.len().div_ceil(8));
            prop_assert_eq!(BitVec::from_bytes(&bytes, bits.len()), v);
            Ok(())
        },
    );
}

#[test]
fn set_is_idempotent_and_local() {
    Prop::new("bitvec::set_is_idempotent_and_local").run(
        |rng| (any_bits(rng, 1, 200), rng.gen::<usize>(), rng.gen::<bool>()),
        |(bits, idx_raw, value)| {
            if bits.is_empty() {
                return Ok(()); // shrinking may drop the last element
            }
            let idx = idx_raw % bits.len();
            let mut v = BitVec::from_bools(bits.iter().copied());
            v.set(idx, *value);
            v.set(idx, *value);
            for (i, &b) in bits.iter().enumerate() {
                let want = if i == idx { *value } else { b };
                prop_assert_eq!(v.get(i), want, "bit {}", i);
            }
            Ok(())
        },
    );
}

#[test]
fn iter_matches_get() {
    Prop::new("bitvec::iter_matches_get").run(
        |rng| any_bits(rng, 0, 200),
        |bits| {
            let v = BitVec::from_bools(bits.iter().copied());
            let collected: Vec<bool> = v.iter().collect();
            prop_assert_eq!(&collected, bits);
            Ok(())
        },
    );
}
