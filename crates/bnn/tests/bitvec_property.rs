//! Property tests: `BitVec` against a plain `Vec<bool>` reference.

use ncpu_bnn::BitVec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn construction_and_access(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        prop_assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
            prop_assert_eq!(v.sign(i), if b { 1 } else { -1 });
        }
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn dot_matches_naive(
        pair in (1usize..300).prop_flat_map(|n| (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(any::<bool>(), n),
        ))
    ) {
        let (a_bits, b_bits) = pair;
        let a = BitVec::from_bools(a_bits.iter().copied());
        let b = BitVec::from_bools(b_bits.iter().copied());
        let naive: i32 = a_bits
            .iter()
            .zip(&b_bits)
            .map(|(&x, &y)| if x == y { 1 } else { -1 })
            .sum();
        prop_assert_eq!(a.dot(&b), naive);
        prop_assert_eq!(b.dot(&a), naive, "dot is symmetric");
        prop_assert_eq!(a.dot(&a), a.len() as i32, "self-dot is length");
    }

    #[test]
    fn byte_round_trip(bits in prop::collection::vec(any::<bool>(), 1..300)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let bytes = v.to_bytes();
        prop_assert_eq!(bytes.len(), bits.len().div_ceil(8));
        prop_assert_eq!(BitVec::from_bytes(&bytes, bits.len()), v);
    }

    #[test]
    fn set_is_idempotent_and_local(
        bits in prop::collection::vec(any::<bool>(), 1..200),
        idx_raw in any::<usize>(),
        value in any::<bool>(),
    ) {
        let idx = idx_raw % bits.len();
        let mut v = BitVec::from_bools(bits.iter().copied());
        v.set(idx, value);
        v.set(idx, value);
        for (i, &b) in bits.iter().enumerate() {
            let want = if i == idx { value } else { b };
            prop_assert_eq!(v.get(i), want, "bit {}", i);
        }
    }

    #[test]
    fn iter_matches_get(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let collected: Vec<bool> = v.iter().collect();
        prop_assert_eq!(collected, bits);
    }
}
