//! Accuracy-band calibration (release-mode; run explicitly with
//! `cargo test -p ncpu-bnn --release -- --ignored --nocapture`).
//!
//! Verifies the synthetic datasets put the paper's network sizes in the
//! right accuracy bands: digits ≈ 94.8% at 100 neurons and monotone in
//! capacity (Fig. 18), motion ≈ 74% (Table I / Fig. 15).

use ncpu_bnn::data::{digits, motion};
use ncpu_bnn::metrics::accuracy;
use ncpu_bnn::train::{train, TrainConfig};
use ncpu_bnn::Topology;

#[test]
#[ignore = "minutes-long training sweep; run in release"]
fn digits_accuracy_band() {
    let (train_set, test_set) = digits::generate(&digits::DigitsConfig::default());
    for neurons in [50, 100, 200, 400] {
        let topo = Topology::paper(digits::PIXELS, neurons, digits::CLASSES);
        let model = train(&topo, &train_set, &TrainConfig::default());
        let acc = accuracy(&model, &test_set);
        println!("digits neurons={neurons:4} acc={:.1}%", acc * 100.0);
    }
}

#[test]
#[ignore = "minutes-long training; run in release"]
fn motion_accuracy_band() {
    let (train_w, test_w) = motion::generate(&motion::MotionConfig::default());
    let train_set = motion::to_dataset(&train_w);
    let test_set = motion::to_dataset(&test_w);
    let topo = Topology::paper(motion::INPUT_BITS, 100, motion::CLASSES);
    let model = train(&topo, &train_set, &TrainConfig::default());
    let acc = accuracy(&model, &test_set);
    println!("motion acc={:.1}%", acc * 100.0);
}
