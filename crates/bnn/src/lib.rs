//! Binary neural networks for the NCPU reproduction.
//!
//! The paper builds its accelerator around a binarized neural network
//! (BNN): weights and activations constrained to ±1, multipliers replaced
//! by XNOR gates, accumulation by popcount ("Out = sign(ΣW×A + B)",
//! Fig. 2). This crate provides:
//!
//! * [`BitVec`] — packed ±1 vectors with the XNOR-popcount dot product,
//! * [`BnnModel`]/[`BnnLayer`] — the multi-layer fully-connected BNN with
//!   integer biases, exactly as the hardware evaluates it,
//! * [`train`] — a straight-through-estimator trainer producing deployable
//!   binary weights from real-valued shadow weights,
//! * [`data`] — the synthetic stand-ins for MNIST (procedural digit
//!   glyphs) and the Ninapro motion recordings (class-conditioned
//!   6-channel signals), per the substitution rules in `DESIGN.md`,
//! * [`metrics`] — accuracy and confusion-matrix helpers,
//! * [`io`] — the checksummed binary artifact format trained models ship in.
//!
//! # Examples
//!
//! ```
//! use ncpu_bnn::{BitVec, BnnModel, Topology};
//!
//! // A tiny untrained model still classifies deterministically.
//! let topo = Topology::new(16, vec![8, 8], 4);
//! let model = BnnModel::zeros(&topo);
//! let input = BitVec::from_bools((0..16).map(|i| i % 2 == 0));
//! let class = model.classify(&input);
//! assert!(class < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod data;
pub mod io;
pub mod metrics;
mod model;
pub mod train;

pub use bits::BitVec;
pub use model::{BnnLayer, BnnModel, Topology};
