//! Straight-through-estimator (STE) training for binarized networks.
//!
//! Training follows Hubara et al. (the paper's reference \[39\]): real-valued
//! shadow weights are binarized by sign on the forward pass; gradients flow
//! through the sign function inside a clipped window. Pre-activation sums
//! are normalized by `1/√fan_in` so the clip window and learning rate are
//! layer-size independent. Exported models carry only ±1 weights and
//! integer biases — exactly what the accelerator stores in its weight SRAM.

use ncpu_testkit::rng::Rng;

use crate::bits::BitVec;
use crate::data::Dataset;
use crate::model::{BnnLayer, BnnModel, Topology};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed (initialization and shuffling are deterministic in it).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig { epochs: 40, lr: 0.05, momentum: 0.9, batch: 16, seed: 7 }
    }
}

/// Real-valued shadow parameters of one layer during training.
#[derive(Debug, Clone)]
struct ShadowLayer {
    /// Row-major `[neuron][input]` shadow weights in `[-1, 1]`.
    w: Vec<f32>,
    b: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    inputs: usize,
    neurons: usize,
}

impl ShadowLayer {
    fn new(inputs: usize, neurons: usize, rng: &mut Rng) -> ShadowLayer {
        let w = (0..inputs * neurons).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        ShadowLayer {
            w,
            b: vec![0.0; neurons],
            vw: vec![0.0; inputs * neurons],
            vb: vec![0.0; neurons],
            inputs,
            neurons,
        }
    }

    fn scale(&self) -> f32 {
        1.0 / (self.inputs as f32).sqrt()
    }

    /// Forward with binarized weights: returns normalized pre-activations.
    fn forward(&self, a: &[f32]) -> Vec<f32> {
        debug_assert_eq!(a.len(), self.inputs);
        let s = self.scale();
        (0..self.neurons)
            .map(|j| {
                let row = &self.w[j * self.inputs..(j + 1) * self.inputs];
                let z: f32 = row
                    .iter()
                    .zip(a)
                    .map(|(&w, &x)| if w >= 0.0 { x } else { -x })
                    .sum();
                (z + self.b[j]) * s
            })
            .collect()
    }

    /// Accumulates gradients for one sample; returns gradient w.r.t. input.
    ///
    /// `dzn` is the gradient at the normalized pre-activation.
    fn backward(&self, a: &[f32], dzn: &[f32], gw: &mut [f32], gb: &mut [f32]) -> Vec<f32> {
        let s = self.scale();
        let mut da = vec![0.0f32; self.inputs];
        for j in 0..self.neurons {
            let dz = dzn[j] * s;
            if dz == 0.0 {
                continue;
            }
            gb[j] += dz;
            let row = &self.w[j * self.inputs..(j + 1) * self.inputs];
            let grow = &mut gw[j * self.inputs..(j + 1) * self.inputs];
            for i in 0..self.inputs {
                grow[i] += dz * a[i];
                da[i] += dz * if row[i] >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        da
    }

    fn apply(&mut self, gw: &[f32], gb: &[f32], lr: f32, momentum: f32, inv_batch: f32) {
        for (i, (&g, v)) in gw.iter().zip(self.vw.iter_mut()).enumerate() {
            *v = momentum * *v - lr * g * inv_batch;
            // STE weight clipping keeps shadow weights in [-1, 1].
            self.w[i] = (self.w[i] + *v).clamp(-1.0, 1.0);
        }
        for (j, (&g, v)) in gb.iter().zip(self.vb.iter_mut()).enumerate() {
            *v = momentum * *v - lr * g * inv_batch;
            self.b[j] += *v;
        }
    }

    fn export(&self) -> BnnLayer {
        let rows: Vec<BitVec> = (0..self.neurons)
            .map(|j| BitVec::from_signs(&self.w[j * self.inputs..(j + 1) * self.inputs]))
            .collect();
        let bias = self.b.iter().map(|&b| b.round() as i32).collect();
        BnnLayer::new(rows, bias)
    }
}

fn to_pm1(bits: &BitVec) -> Vec<f32> {
    bits.iter().map(|b| if b { 1.0 } else { -1.0 }).collect()
}

/// One sample's forward/backward pass, adding its gradient contribution
/// into `gw`/`gb`.
///
/// Each parameter receives **at most one add** per sample (weight `(j, i)`
/// is touched only by neuron `j`'s row loop), which is what makes the
/// parallel reduction in [`train`] byte-identical to serial accumulation:
/// summing per-sample buffers in sample order replays the exact same
/// sequence of additions into each accumulator slot.
fn accumulate_sample(
    layers: &[ShadowLayer],
    topology: &Topology,
    data: &Dataset,
    idx: usize,
    gw: &mut [Vec<f32>],
    gb: &mut [Vec<f32>],
) {
    let nlayers = layers.len();
    let (input, label) = data.sample(idx);
    assert_eq!(input.len(), topology.input(), "sample width mismatch");
    // ---- forward ----
    let mut acts: Vec<Vec<f32>> = Vec::with_capacity(nlayers + 1);
    let mut zns: Vec<Vec<f32>> = Vec::with_capacity(nlayers);
    acts.push(to_pm1(input));
    for (l, layer) in layers.iter().enumerate() {
        let zn = layer.forward(acts.last().expect("pushed"));
        let is_last = l == nlayers - 1;
        let next = if is_last {
            zn.clone() // kept linear; only first `classes` used
        } else {
            zn.iter().map(|&z| if z >= 0.0 { 1.0 } else { -1.0 }).collect()
        };
        zns.push(zn);
        acts.push(next);
    }
    // ---- loss gradient at the output ----
    let classes = topology.classes();
    let logits = &zns[nlayers - 1][..classes];
    let probs = softmax(logits);
    let mut dzn = vec![0.0f32; topology.layers()[nlayers - 1]];
    for c in 0..classes {
        dzn[c] = probs[c] - if c == label { 1.0 } else { 0.0 };
    }
    // ---- backward ----
    for l in (0..nlayers).rev() {
        let da = layers[l].backward(&acts[l], &dzn, &mut gw[l], &mut gb[l]);
        if l > 0 {
            // Gradient through the hidden sign: clipped STE.
            dzn = da
                .iter()
                .zip(&zns[l - 1])
                .map(|(&d, &zn)| if zn.abs() <= 1.0 { d } else { 0.0 })
                .collect();
        }
    }
}

fn softmax(z: &[f32]) -> Vec<f32> {
    let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Trains a BNN of shape `topology` on `data` and exports the binary model.
///
/// Training is deterministic in `config.seed` — including under parallel
/// minibatch evaluation: the gradient reduction sums per-sample buffers in
/// fixed sample order, so the exported model is byte-identical for every
/// `NCPU_THREADS` value.
///
/// # Panics
///
/// Panics if the dataset is empty, a sample's width differs from the
/// topology input, or a label is out of range.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::{data::Dataset, train::{train, TrainConfig}, BitVec, Topology};
///
/// // Learn "class = first bit".
/// let inputs: Vec<BitVec> =
///     (0..40).map(|i| BitVec::from_bools((0..8).map(|b| (i + b) % 2 == 0))).collect();
/// let labels: Vec<usize> = inputs.iter().map(|x| x.get(0) as usize).collect();
/// let data = Dataset::new(inputs, labels, 2);
/// let model = train(&Topology::new(8, vec![8], 2), &data, &TrainConfig::default());
/// let acc = ncpu_bnn::metrics::accuracy(&model, &data);
/// assert!(acc > 0.9, "easy task must be learned, got {acc}");
/// ```
pub fn train(topology: &Topology, data: &Dataset, config: &TrainConfig) -> BnnModel {
    assert!(!data.is_empty(), "empty training set");
    assert!(data.classes() <= topology.classes(), "label range exceeds topology classes");
    let mut rng = Rng::seed_from_u64(config.seed);
    let nlayers = topology.layers().len();
    let mut layers: Vec<ShadowLayer> = (0..nlayers)
        .map(|l| ShadowLayer::new(topology.layer_input(l), topology.layers()[l], &mut rng))
        .collect();

    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut gw: Vec<Vec<f32>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
    let mut gb: Vec<Vec<f32>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

    let pool = ncpu_par::Pool::from_env();
    for _epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch) {
            for g in gw.iter_mut() {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            for g in gb.iter_mut() {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            if pool.workers() > 1 && chunk.len() > 1 {
                // Each sample computes into private zeroed buffers; the
                // buffers are then summed in sample order. Because every
                // parameter slot receives at most one add per sample (see
                // `accumulate_sample`), this replays exactly the additions
                // the serial branch performs, in the same order — the two
                // branches are byte-identical, not merely close.
                let parts = pool.par_map_indexed(chunk.to_vec(), |_, idx| {
                    let mut igw: Vec<Vec<f32>> =
                        layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
                    let mut igb: Vec<Vec<f32>> =
                        layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                    accumulate_sample(&layers, topology, data, idx, &mut igw, &mut igb);
                    (igw, igb)
                });
                for (igw, igb) in parts {
                    for (acc, part) in gw.iter_mut().zip(&igw) {
                        for (a, &p) in acc.iter_mut().zip(part) {
                            *a += p;
                        }
                    }
                    for (acc, part) in gb.iter_mut().zip(&igb) {
                        for (a, &p) in acc.iter_mut().zip(part) {
                            *a += p;
                        }
                    }
                }
            } else {
                for &idx in chunk {
                    accumulate_sample(&layers, topology, data, idx, &mut gw, &mut gb);
                }
            }
            let inv_batch = 1.0 / chunk.len() as f32;
            for (l, layer) in layers.iter_mut().enumerate() {
                layer.apply(&gw[l], &gb[l], config.lr, config.momentum, inv_batch);
            }
        }
    }

    let exported = layers.iter().map(ShadowLayer::export).collect();
    BnnModel::new(topology.clone(), exported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn parity_dataset(n: usize, bits: usize, seed: u64) -> Dataset {
        // Class = majority vote of the bits: linearly separable, noisy-free.
        let mut rng = Rng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let v: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.5)).collect();
            let ones = v.iter().filter(|&&b| b).count();
            labels.push((ones * 2 > bits) as usize);
            inputs.push(BitVec::from_bools(v));
        }
        Dataset::new(inputs, labels, 2)
    }

    #[test]
    fn learns_majority_function() {
        let data = parity_dataset(200, 16, 3);
        let topo = Topology::new(16, vec![16, 16], 2);
        let model = train(&topo, &data, &TrainConfig { epochs: 30, ..TrainConfig::default() });
        let acc = accuracy(&model, &data);
        assert!(acc > 0.9, "majority should be learnable, got {acc}");
    }

    #[test]
    fn deterministic_in_seed() {
        let data = parity_dataset(50, 8, 1);
        let topo = Topology::new(8, vec![8], 2);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let a = train(&topo, &data, &cfg);
        let b = train(&topo, &data, &cfg);
        assert_eq!(a.layers()[0].weight_row(0), b.layers()[0].weight_row(0));
        assert_eq!(a.layers()[0].bias(0), b.layers()[0].bias(0));
    }

    #[test]
    fn different_seeds_differ() {
        let data = parity_dataset(50, 8, 1);
        let topo = Topology::new(8, vec![8], 2);
        let a = train(&topo, &data, &TrainConfig { seed: 1, epochs: 2, ..TrainConfig::default() });
        let b = train(&topo, &data, &TrainConfig { seed: 2, epochs: 2, ..TrainConfig::default() });
        assert_ne!(
            (0..8).map(|j| a.layers()[0].weight_row(j).clone()).collect::<Vec<_>>(),
            (0..8).map(|j| b.layers()[0].weight_row(j).clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exported_model_is_pure_binary() {
        let data = parity_dataset(30, 8, 9);
        let topo = Topology::new(8, vec![4], 2);
        let model = train(&topo, &data, &TrainConfig { epochs: 1, ..TrainConfig::default() });
        // Shape invariants guaranteed by construction; biases are integers.
        assert_eq!(model.layers()[0].neurons(), 4);
        assert_eq!(model.layers()[0].input_len(), 8);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_dataset_rejected() {
        let topo = Topology::new(8, vec![4], 2);
        train(&topo, &Dataset::new(vec![], vec![], 2), &TrainConfig::default());
    }

    #[test]
    fn softmax_is_normalized() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
