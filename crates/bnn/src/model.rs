//! The multi-layer fully-connected BNN exactly as the hardware computes it.

use std::fmt;

use crate::bits::BitVec;

/// Shape of a BNN: input width, hidden layer widths, and class count.
///
/// The paper's deployed network is `Topology::new(784, vec![100, 100, 100,
/// 100], 10)` — a 4-layer, 100-neurons-per-layer network sized to match the
/// 5-stage RISC-V pipeline (Section III). The classifier reads the first
/// `classes` pre-activation sums of the final layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    input: usize,
    layers: Vec<usize>,
    classes: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes` exceeds the final
    /// layer's width.
    pub fn new(input: usize, layers: Vec<usize>, classes: usize) -> Topology {
        assert!(input > 0, "input width must be nonzero");
        assert!(!layers.is_empty(), "need at least one layer");
        assert!(layers.iter().all(|&n| n > 0), "layer widths must be nonzero");
        assert!(
            classes > 0 && classes <= *layers.last().expect("nonempty"),
            "classes must fit in the final layer"
        );
        Topology { input, layers, classes }
    }

    /// The paper's 4-layer network with `neurons` cells per layer
    /// (Fig. 18 sweeps `neurons` over 50/100/200/400).
    pub fn paper(input: usize, neurons: usize, classes: usize) -> Topology {
        Topology::new(input, vec![neurons; 4], classes)
    }

    /// Input width in bits.
    pub const fn input(&self) -> usize {
        self.input
    }

    /// Widths of each layer.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Number of classes read from the final layer.
    pub const fn classes(&self) -> usize {
        self.classes
    }

    /// Input width of layer `l` (the previous layer's output width).
    pub fn layer_input(&self, l: usize) -> usize {
        if l == 0 {
            self.input
        } else {
            self.layers[l - 1]
        }
    }

    /// Total number of binary weights across all layers.
    pub fn weight_bits(&self) -> usize {
        (0..self.layers.len()).map(|l| self.layer_input(l) * self.layers[l]).sum()
    }

    /// Total ±1 multiply-accumulate operations for one inference — the
    /// op count behind the paper's TOPS/W figures.
    pub fn macs(&self) -> usize {
        self.weight_bits()
    }
}

/// One fully-connected binary layer: `out_j = sign(Σ_i w_ji·a_i + b_j)`.
#[derive(Clone, PartialEq, Eq)]
pub struct BnnLayer {
    /// One weight row per neuron, each `input_len` wide.
    weights: Vec<BitVec>,
    /// Integer bias per neuron, in units of the ±1 sum.
    bias: Vec<i32>,
}

impl BnnLayer {
    /// Creates a layer from per-neuron weight rows and biases.
    ///
    /// # Panics
    ///
    /// Panics if `weights` and `bias` lengths differ, the layer is empty,
    /// or the rows have unequal widths.
    pub fn new(weights: Vec<BitVec>, bias: Vec<i32>) -> BnnLayer {
        assert_eq!(weights.len(), bias.len(), "one bias per neuron");
        assert!(!weights.is_empty(), "layer must have neurons");
        let w = weights[0].len();
        assert!(weights.iter().all(|row| row.len() == w), "ragged weight rows");
        BnnLayer { weights, bias }
    }

    /// All-(−1) weights and zero biases (deterministic placeholder).
    pub fn zeros(input_len: usize, neurons: usize) -> BnnLayer {
        BnnLayer::new(vec![BitVec::zeros(input_len); neurons], vec![0; neurons])
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.weights.len()
    }

    /// Input width.
    pub fn input_len(&self) -> usize {
        self.weights[0].len()
    }

    /// Weight row of neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn weight_row(&self, j: usize) -> &BitVec {
        &self.weights[j]
    }

    /// Bias of neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn bias(&self, j: usize) -> i32 {
        self.bias[j]
    }

    /// Pre-activation sums `Σ w·a + b` for every neuron.
    pub fn preactivations(&self, input: &BitVec) -> Vec<i32> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(row, &b)| row.dot(input) + b)
            .collect()
    }

    /// Binarized layer output `sign(preactivations)` (`>= 0` → +1, matching
    /// the hardware's sign unit).
    pub fn forward(&self, input: &BitVec) -> BitVec {
        BitVec::from_bools(self.preactivations(input).into_iter().map(|z| z >= 0))
    }
}

impl fmt::Debug for BnnLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BnnLayer({}→{})", self.input_len(), self.neurons())
    }
}

/// A complete BNN: the layers of a [`Topology`] with trained parameters.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::{BitVec, BnnModel, Topology};
///
/// let topo = Topology::new(8, vec![4, 4], 2);
/// let model = BnnModel::zeros(&topo);
/// let x = BitVec::zeros(8);
/// assert_eq!(model.logits(&x).len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BnnModel {
    topology: Topology,
    layers: Vec<BnnLayer>,
}

impl BnnModel {
    /// Assembles a model from layers matching `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the layer shapes do not match the topology.
    pub fn new(topology: Topology, layers: Vec<BnnLayer>) -> BnnModel {
        assert_eq!(layers.len(), topology.layers().len(), "layer count mismatch");
        for (l, layer) in layers.iter().enumerate() {
            assert_eq!(layer.input_len(), topology.layer_input(l), "layer {l} input width");
            assert_eq!(layer.neurons(), topology.layers()[l], "layer {l} neuron count");
        }
        BnnModel { topology, layers }
    }

    /// All-zero (deterministic placeholder) model of the given shape.
    pub fn zeros(topology: &Topology) -> BnnModel {
        let layers = (0..topology.layers().len())
            .map(|l| BnnLayer::zeros(topology.layer_input(l), topology.layers()[l]))
            .collect();
        BnnModel::new(topology.clone(), layers)
    }

    /// The model's shape.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The layers in evaluation order.
    pub fn layers(&self) -> &[BnnLayer] {
        &self.layers
    }

    /// Pre-activation sums of the first `classes` neurons of the final
    /// layer — the classification scores the hardware reads out.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the topology's input.
    pub fn logits(&self, input: &BitVec) -> Vec<i32> {
        assert_eq!(input.len(), self.topology.input(), "input width mismatch");
        let mut acts = input.clone();
        for layer in &self.layers[..self.layers.len() - 1] {
            acts = layer.forward(&acts);
        }
        let last = self.layers.last().expect("nonempty");
        let mut z = last.preactivations(&acts);
        z.truncate(self.topology.classes());
        z
    }

    /// Argmax class for `input` (ties break to the lower index).
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the topology's input.
    pub fn classify(&self, input: &BitVec) -> usize {
        let logits = self.logits(input);
        let mut best = 0;
        for (i, &z) in logits.iter().enumerate() {
            if z > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Activations after every layer (for differential testing against the
    /// cycle-level accelerator).
    pub fn layer_outputs(&self, input: &BitVec) -> Vec<BitVec> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut acts = input.clone();
        for layer in &self.layers {
            acts = layer.forward(&acts);
            outs.push(acts.clone());
        }
        outs
    }
}

impl fmt::Debug for BnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BnnModel({} → {:?} → {} classes)", self.topology.input(), self.topology.layers(), self.topology.classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_layer() -> BnnLayer {
        // Two neurons over two inputs: identity-ish weights, bias 0.
        let w0 = BitVec::from_bools([true, false]);
        let w1 = BitVec::from_bools([false, true]);
        BnnLayer::new(vec![w0, w1], vec![0, 0])
    }

    #[test]
    fn layer_forward_signs() {
        let layer = xor_like_layer();
        let x = BitVec::from_bools([true, false]);
        // neuron0: +1·+1 + -1·-1 = 2 → +1; neuron1: -1·+1 + +1·-1 = -2 → -1
        assert_eq!(layer.preactivations(&x), vec![2, -2]);
        let y = layer.forward(&x);
        assert!(y.get(0));
        assert!(!y.get(1));
    }

    #[test]
    fn bias_shifts_threshold() {
        let w = BitVec::from_bools([true, true]);
        let layer = BnnLayer::new(vec![w], vec![-3]);
        let x = BitVec::from_bools([true, true]); // dot = 2, z = -1 → -1
        assert!(!layer.forward(&x).get(0));
    }

    #[test]
    fn sign_zero_maps_to_plus_one() {
        let w = BitVec::from_bools([true, false]);
        let layer = BnnLayer::new(vec![w], vec![0]);
        let x = BitVec::from_bools([true, true]); // dot = 0
        assert!(layer.forward(&x).get(0), "z = 0 must output +1");
    }

    #[test]
    fn topology_accounting() {
        let t = Topology::paper(784, 100, 10);
        assert_eq!(t.layers(), &[100, 100, 100, 100]);
        assert_eq!(t.layer_input(0), 784);
        assert_eq!(t.layer_input(3), 100);
        assert_eq!(t.weight_bits(), 784 * 100 + 3 * 100 * 100);
        assert_eq!(t.macs(), t.weight_bits());
    }

    #[test]
    #[should_panic(expected = "classes must fit")]
    fn classes_checked_against_last_layer() {
        Topology::new(8, vec![4], 5);
    }

    #[test]
    fn model_shape_checked() {
        let topo = Topology::new(8, vec![4, 4], 2);
        let model = BnnModel::zeros(&topo);
        assert_eq!(model.layers().len(), 2);
        assert_eq!(model.logits(&BitVec::zeros(8)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let topo = Topology::new(8, vec![4], 2);
        BnnModel::zeros(&topo).classify(&BitVec::zeros(9));
    }

    #[test]
    fn classify_prefers_lower_index_on_tie() {
        let topo = Topology::new(4, vec![4], 2);
        let model = BnnModel::zeros(&topo);
        // All-zero model: logits identical → class 0.
        assert_eq!(model.classify(&BitVec::zeros(4)), 0);
    }

    #[test]
    fn layer_outputs_chain() {
        let topo = Topology::new(4, vec![3, 2], 2);
        let model = BnnModel::zeros(&topo);
        let outs = model.layer_outputs(&BitVec::zeros(4));
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 3);
        assert_eq!(outs[1].len(), 2);
    }
}
