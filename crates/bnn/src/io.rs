//! Binary serialization of trained models.
//!
//! A deployed NCPU ships with trained weights in flash; this module defines
//! that artifact. The format is little-endian and self-describing:
//!
//! ```text
//! magic  "NCPUBNN1"                         8 bytes
//! input  u32 · classes u32 · layers u32     header
//! width  u32 × layers                       layer widths
//! per layer: weight rows (ceil(n_in/8) B each, bit i = input i)
//!            biases (i32 × width)
//! crc    u32 (CRC-32 of everything above)
//! ```

use std::error::Error;
use std::fmt;

use crate::bits::BitVec;
use crate::model::{BnnLayer, BnnModel, Topology};

const MAGIC: &[u8; 8] = b"NCPUBNN1";

/// Error raised when decoding a model artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The magic prefix is missing or wrong.
    BadMagic,
    /// The byte stream ended before the declared content.
    Truncated {
        /// Bytes needed beyond what was provided.
        missing: usize,
    },
    /// A header field is structurally invalid (zero width, class overflow…).
    BadHeader {
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
}

impl fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelDecodeError::BadMagic => write!(f, "not an NCPU model artifact"),
            ModelDecodeError::Truncated { missing } => {
                write!(f, "artifact truncated ({missing} bytes missing)")
            }
            ModelDecodeError::BadHeader { reason } => write!(f, "invalid header: {reason}"),
            ModelDecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl Error for ModelDecodeError {}

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

/// Serializes a model into the artifact format.
pub fn to_bytes(model: &BnnModel) -> Vec<u8> {
    let topo = model.topology();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(topo.input() as u32).to_le_bytes());
    out.extend_from_slice(&(topo.classes() as u32).to_le_bytes());
    out.extend_from_slice(&(topo.layers().len() as u32).to_le_bytes());
    for &w in topo.layers() {
        out.extend_from_slice(&(w as u32).to_le_bytes());
    }
    for layer in model.layers() {
        for j in 0..layer.neurons() {
            out.extend_from_slice(&layer.weight_row(j).to_bytes());
        }
        for j in 0..layer.neurons() {
            out.extend_from_slice(&layer.bias(j).to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelDecodeError> {
        if self.at + n > self.bytes.len() {
            return Err(ModelDecodeError::Truncated { missing: self.at + n - self.bytes.len() });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ModelDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

/// Maximum layer width / input width accepted (sanity bound against
/// corrupted headers allocating gigabytes).
const MAX_DIM: u32 = 1 << 20;

/// Decodes a model artifact.
///
/// # Errors
///
/// Returns [`ModelDecodeError`] for wrong magic, truncation, structurally
/// invalid headers, or checksum mismatch.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::{io, BnnModel, Topology};
///
/// let model = BnnModel::zeros(&Topology::new(16, vec![4], 2));
/// let bytes = io::to_bytes(&model);
/// assert_eq!(io::from_bytes(&bytes).unwrap(), model);
/// ```
pub fn from_bytes(bytes: &[u8]) -> Result<BnnModel, ModelDecodeError> {
    if bytes.len() < 4 {
        return Err(ModelDecodeError::Truncated { missing: 4 - bytes.len() });
    }
    let (content, tail) = bytes.split_at(bytes.len() - 4);
    let mut r = Reader { bytes: content, at: 0 };
    if r.take(8)? != MAGIC {
        return Err(ModelDecodeError::BadMagic);
    }
    let declared_crc = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(content) != declared_crc {
        return Err(ModelDecodeError::ChecksumMismatch);
    }
    let input = r.u32()?;
    let classes = r.u32()?;
    let n_layers = r.u32()?;
    if input == 0 || input > MAX_DIM {
        return Err(ModelDecodeError::BadHeader { reason: "input width out of range" });
    }
    if n_layers == 0 || n_layers > 64 {
        return Err(ModelDecodeError::BadHeader { reason: "layer count out of range" });
    }
    let mut widths = Vec::with_capacity(n_layers as usize);
    for _ in 0..n_layers {
        let w = r.u32()?;
        if w == 0 || w > MAX_DIM {
            return Err(ModelDecodeError::BadHeader { reason: "layer width out of range" });
        }
        widths.push(w as usize);
    }
    if classes == 0 || classes as usize > *widths.last().expect("nonempty") {
        return Err(ModelDecodeError::BadHeader { reason: "classes exceed final layer" });
    }
    let topo = Topology::new(input as usize, widths, classes as usize);
    let mut layers = Vec::with_capacity(topo.layers().len());
    for l in 0..topo.layers().len() {
        let n_in = topo.layer_input(l);
        let width = topo.layers()[l];
        let row_bytes = n_in.div_ceil(8);
        let mut rows = Vec::with_capacity(width);
        for _ in 0..width {
            rows.push(BitVec::from_bytes(r.take(row_bytes)?, n_in));
        }
        let mut bias = Vec::with_capacity(width);
        for _ in 0..width {
            bias.push(i32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes")));
        }
        layers.push(BnnLayer::new(rows, bias));
    }
    if r.at != content.len() {
        return Err(ModelDecodeError::BadHeader { reason: "trailing bytes after weights" });
    }
    Ok(BnnModel::new(topo, layers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> BnnModel {
        let topo = Topology::new(37, vec![9, 5], 3);
        let layers = (0..2)
            .map(|l| {
                let n_in = topo.layer_input(l);
                let width = topo.layers()[l];
                let rows: Vec<BitVec> = (0..width)
                    .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 5 + j + l) % 3 == 0)))
                    .collect();
                BnnLayer::new(rows, (0..width).map(|j| j as i32 * 7 - 11).collect())
            })
            .collect();
        BnnModel::new(topo, layers)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = sample_model();
        let decoded = from_bytes(&to_bytes(&model)).unwrap();
        assert_eq!(decoded, model);
        // And behaves identically.
        let x = BitVec::from_bools((0..37).map(|i| i % 2 == 0));
        assert_eq!(decoded.classify(&x), model.classify(&x));
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = to_bytes(&sample_model());
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes), Err(ModelDecodeError::BadMagic));
    }

    #[test]
    fn rejects_bit_flips_via_checksum() {
        let mut bytes = to_bytes(&sample_model());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert_eq!(from_bytes(&bytes), Err(ModelDecodeError::ChecksumMismatch));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&sample_model());
        for cut in [0usize, 3, 10, bytes.len() - 5] {
            let r = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample_model());
        let cut = bytes.len() - 4;
        bytes.splice(cut..cut, [0u8; 8]);
        // Content changed → checksum catches it first.
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ModelDecodeError::BadMagic.to_string().contains("artifact"));
        assert!(ModelDecodeError::Truncated { missing: 3 }.to_string().contains("3"));
    }
}
