//! Packed ±1 bit vectors with XNOR-popcount arithmetic.

use std::fmt;

/// A fixed-length vector over {-1, +1}, packed 64 values per word.
///
/// Bit value `1` represents `+1`, bit value `0` represents `-1` — the same
/// convention the accelerator's XNOR neurons use. The core operation is
/// [`dot`](BitVec::dot): the exact ±1 dot product computed as
/// `2·popcount(XNOR) − n`.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::BitVec;
///
/// let a = BitVec::from_bools([true, true, false, false]);
/// let b = BitVec::from_bools([true, false, true, false]);
/// // (+1·+1) + (+1·-1) + (-1·+1) + (-1·-1) = 0
/// assert_eq!(a.dot(&b), 0);
/// assert_eq!(a.dot(&a), 4);
/// ```
/// # Representation invariants
///
/// * Slack bits (positions `len..` of the last word) are always **zero**;
///   every constructor and mutator maintains this, so whole-word popcounts
///   need no masking.
/// * `tail_mask` is precomputed at construction: all-ones when `len` is a
///   multiple of 64, else the low `len % 64` bits. The dot-product hot
///   loop applies it to the last XNOR word only — XNOR turns matching
///   slack zeros into ones, and this is the single place a mask is needed.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    tail_mask: u64,
}

/// Mask selecting the valid bits of the last word of a `len`-bit vector.
const fn tail_mask_for(len: usize) -> u64 {
    if len.is_multiple_of(64) {
        !0
    } else {
        (1u64 << (len % 64)) - 1
    }
}

impl BitVec {
    /// Creates a vector of `len` elements, all −1 (bits clear).
    pub fn zeros(len: usize) -> BitVec {
        BitVec { words: vec![0; len.div_ceil(64)], len, tail_mask: tail_mask_for(len) }
    }

    /// Builds a vector from boolean values (`true` → +1).
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> BitVec {
        let mut words = Vec::new();
        let mut len = 0;
        for b in bits {
            if len % 64 == 0 {
                words.push(0u64);
            }
            if b {
                *words.last_mut().expect("pushed above") |= 1 << (len % 64);
            }
            len += 1;
        }
        BitVec { words, len, tail_mask: tail_mask_for(len) }
    }

    /// Builds a vector from the signs of real values (`>= 0` → +1).
    pub fn from_signs<'a, I: IntoIterator<Item = &'a f32>>(values: I) -> BitVec {
        BitVec::from_bools(values.into_iter().map(|&v| v >= 0.0))
    }

    /// Number of elements.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero elements.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i` as a boolean (`true` → +1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Element `i` as ±1.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn sign(&self, i: usize) -> i32 {
        if self.get(i) {
            1
        } else {
            -1
        }
    }

    /// Sets element `i` (`true` → +1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of +1 elements.
    ///
    /// Whole-word popcounts with no masking: the slack-bits-zero invariant
    /// makes the stored words exact.
    pub fn count_ones(&self) -> usize {
        debug_assert!(self.slack_bits_clear());
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Exact ±1 dot product via XNOR-popcount.
    ///
    /// The hot kernel of BNN inference: a 4-way unrolled popcount
    /// accumulation over full words, with the precomputed
    /// [`tail_mask`](Self) applied to the last word only (XNOR of matching
    /// slack zeros yields ones, so that single mask is unavoidable).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> i32 {
        assert_eq!(self.len, other.len, "dot of unequal lengths");
        let n = self.words.len();
        if n == 0 {
            return 0;
        }
        let (head_a, last_a) = self.words.split_at(n - 1);
        let (head_b, last_b) = other.words.split_at(n - 1);
        let mut chunks_a = head_a.chunks_exact(4);
        let mut chunks_b = head_b.chunks_exact(4);
        let mut acc = [0u32; 4];
        for (wa, wb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            acc[0] += (!(wa[0] ^ wb[0])).count_ones();
            acc[1] += (!(wa[1] ^ wb[1])).count_ones();
            acc[2] += (!(wa[2] ^ wb[2])).count_ones();
            acc[3] += (!(wa[3] ^ wb[3])).count_ones();
        }
        let mut matches = acc[0] + acc[1] + acc[2] + acc[3];
        for (wa, wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            matches += (!(wa ^ wb)).count_ones();
        }
        matches += (!(last_a[0] ^ last_b[0]) & self.tail_mask).count_ones();
        2 * matches as i32 - self.len as i32
    }

    /// Iterates over elements as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// The packed 64-bit words. Unused high bits of the last word are
    /// guaranteed zero (the slack-bits-zero invariant), so whole-word
    /// popcounts over this slice are exact.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Invariant check: no slack bit of the last word is set.
    fn slack_bits_clear(&self) -> bool {
        self.words.last().is_none_or(|&w| w & !self.tail_mask == 0)
    }

    /// Packs the vector into little-endian bytes (bit i of byte i/8),
    /// the layout the accelerator's image memory uses.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Unpacks `len` bits from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> BitVec {
        assert!(bytes.len() * 8 >= len, "not enough bytes for {len} bits");
        BitVec::from_bools((0..len).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1))
    }

}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            f.write_str(if self.get(i) { "+" } else { "-" })?;
        }
        if self.len > 64 {
            write!(f, "… ({} more)", self.len - 64)?;
        }
        f.write_str("]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitVec {
        BitVec::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &BitVec, b: &BitVec) -> i32 {
        (0..a.len()).map(|i| a.sign(i) * b.sign(i)).sum()
    }

    #[test]
    fn dot_matches_naive_on_varied_lengths() {
        for len in [1usize, 7, 63, 64, 65, 100, 128, 200, 784] {
            let a = BitVec::from_bools((0..len).map(|i| (i * 7) % 3 == 0));
            let b = BitVec::from_bools((0..len).map(|i| (i * 5) % 4 < 2));
            assert_eq!(a.dot(&b), naive_dot(&a, &b), "len={len}");
        }
    }

    #[test]
    fn self_dot_is_len() {
        let v = BitVec::from_bools((0..100).map(|i| i % 2 == 0));
        assert_eq!(v.dot(&v), 100);
    }

    #[test]
    fn set_get_round_trip() {
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(69, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(69));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 4);
        v.set(64, false);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn byte_round_trip() {
        let v = BitVec::from_bools((0..77).map(|i| (i * 13) % 5 < 2));
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(BitVec::from_bytes(&bytes, 77), v);
    }

    #[test]
    fn from_signs_thresholds_at_zero() {
        let v = BitVec::from_signs(&[-0.5f32, 0.0, 0.5]);
        assert!(!v.get(0));
        assert!(v.get(1));
        assert!(v.get(2));
    }

    #[test]
    #[should_panic(expected = "unequal")]
    fn dot_requires_equal_lengths() {
        BitVec::zeros(3).dot(&BitVec::zeros(4));
    }

    #[test]
    fn count_ones_ignores_slack_bits() {
        // Construct via from_bools to leave no stray bits, then check edge.
        let v = BitVec::from_bools((0..65).map(|_| true));
        assert_eq!(v.count_ones(), 65);
        assert_eq!(v.dot(&v), 65);
    }

    #[test]
    fn slack_bits_stay_clear_through_mutation() {
        // The dot/count_ones fast paths rely on slack bits being zero for
        // every construction and mutation sequence.
        for len in [1usize, 63, 64, 65, 127, 130] {
            let mut v = BitVec::from_bools((0..len).map(|_| true));
            assert!(v.slack_bits_clear(), "from_bools len={len}");
            v.set(len - 1, false);
            v.set(len - 1, true);
            assert!(v.slack_bits_clear(), "set len={len}");
            assert_eq!(v.count_ones(), len);
            let rt = BitVec::from_bytes(&v.to_bytes(), len);
            assert!(rt.slack_bits_clear(), "from_bytes len={len}");
            assert_eq!(rt.count_ones(), len);
        }
    }

    #[test]
    fn dot_unroll_matches_naive_near_chunk_boundaries() {
        // Word counts 1..=10 straddle the 4-word unroll boundary; bit
        // lengths probe full and partial tail words.
        for words in 1usize..=10 {
            for tail in [0usize, 1, 33, 63] {
                let len = match (words * 64).checked_sub(64 - tail) {
                    Some(l) if tail != 0 => l,
                    _ => words * 64,
                };
                let a = BitVec::from_bools((0..len).map(|i| (i * 11) % 7 < 3));
                let b = BitVec::from_bools((0..len).map(|i| (i * 3) % 5 < 2));
                assert_eq!(a.dot(&b), naive_dot(&a, &b), "len={len}");
            }
        }
    }

    #[test]
    fn debug_is_compact() {
        let v = BitVec::from_bools([true, false]);
        assert_eq!(format!("{v:?}"), "BitVec[2; +-]");
    }
}
