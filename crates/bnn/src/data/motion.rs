//! Synthetic human-motion windows: the Ninapro stand-in (see `DESIGN.md`).
//!
//! The paper's motion-detection use case records 6 accelerometer channels,
//! extracts time-domain features (mean and histogram per channel, reference
//! \[60\]) on the CPU, and classifies them with the BNN at ~74% accuracy.
//! This module generates class-conditioned 6-channel windows and defines
//! the *integer-exact* feature pipeline that the CPU-mode RV32I program in
//! `ncpu-workloads` mirrors.

use ncpu_testkit::rng::Rng;

use super::Dataset;
use crate::bits::BitVec;

/// Number of sensor channels used (six of Ninapro's twelve, per the paper).
pub const CHANNELS: usize = 6;
/// Samples per classification window (power of two so the mean is a shift).
pub const WINDOW: usize = 128;
/// Histogram bins per channel.
pub const HIST_BINS: usize = 8;
/// Features per channel: one mean + the histogram bins.
pub const FEATURES_PER_CHANNEL: usize = 1 + HIST_BINS;
/// Thermometer thresholds applied to each 0–255 feature value.
pub const THERMO_THRESHOLDS: [u8; 4] = [32, 96, 160, 224];
/// BNN input width: features × thermometer bits.
pub const INPUT_BITS: usize = CHANNELS * FEATURES_PER_CHANNEL * THERMO_THRESHOLDS.len();
/// Number of motion classes generated.
pub const CLASSES: usize = 8;

/// One recorded window: `samples[channel][t]`, 16-bit signed sensor counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotionWindow {
    samples: Vec<[i16; CHANNELS]>,
    label: usize,
}

impl MotionWindow {
    /// The samples, one `[i16; 6]` frame per time step.
    pub fn samples(&self) -> &[[i16; CHANNELS]] {
        &self.samples
    }

    /// Ground-truth class.
    pub const fn label(&self) -> usize {
        self.label
    }

    /// Serializes channel-major little-endian i16s — the layout the RV32I
    /// feature-extraction program reads (`ch0[0..WINDOW], ch1[..], …`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CHANNELS * WINDOW * 2);
        for c in 0..CHANNELS {
            for frame in &self.samples {
                out.extend_from_slice(&frame[c].to_le_bytes());
            }
        }
        out
    }

    /// Size of the serialized window in bytes.
    pub const fn byte_len() -> usize {
        CHANNELS * WINDOW * 2
    }
}

/// Configuration of the synthetic motion generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionConfig {
    /// Training windows per class.
    pub train_per_class: usize,
    /// Test windows per class.
    pub test_per_class: usize,
    /// Gaussian noise amplitude in sensor counts (difficulty knob; 15000
    /// puts a 100-neuron BNN in the paper's ~74% band).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MotionConfig {
    fn default() -> MotionConfig {
        MotionConfig { train_per_class: 120, test_per_class: 40, noise: 15000.0, seed: 24 }
    }
}

/// Generates one window of class `label`.
///
/// Each class has a distinct per-channel mix of DC offset, amplitude and
/// frequency; a shared random phase models gesture onset time.
///
/// # Panics
///
/// Panics if `label >= CLASSES`.
pub fn generate_window(label: usize, noise: f64, rng: &mut Rng) -> MotionWindow {
    assert!(label < CLASSES, "label out of range");
    let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut samples = Vec::with_capacity(WINDOW);
    for t in 0..WINDOW {
        let mut frame = [0i16; CHANNELS];
        for (c, slot) in frame.iter_mut().enumerate() {
            let offset = (((label * 5 + c * 3) % 9) as f64 - 4.0) * 1800.0;
            let amp = 2500.0 + 2200.0 * ((label + c) % 4) as f64;
            let freq = 1.0 + ((label + 2 * c) % 5) as f64;
            let x = offset
                + amp * (std::f64::consts::TAU * freq * t as f64 / WINDOW as f64 + phase).sin()
                + noise * rng.normal();
            *slot = x.clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        }
        samples.push(frame);
    }
    MotionWindow { samples, label }
}

/// Per-channel features of a window: `[mean, hist0..hist7] × 6`, each
/// scaled into 0–255. Pure integer arithmetic (shifts only) so the RV32I
/// program can reproduce it bit-exactly.
pub fn extract_features(window: &MotionWindow) -> Vec<u8> {
    let mut features = Vec::with_capacity(CHANNELS * FEATURES_PER_CHANNEL);
    for c in 0..CHANNELS {
        let mut sum: i32 = 0;
        let mut hist = [0u32; HIST_BINS];
        for frame in &window.samples {
            let v = frame[c] as i32;
            sum += v;
            hist[((v + 32768) >> 13) as usize] += 1;
        }
        let mean = sum >> 7; // WINDOW = 128
        features.push((((mean + 32768) >> 8) & 0xff) as u8);
        for count in hist {
            features.push((count * 2).min(255) as u8);
        }
    }
    features
}

/// Thermometer-encodes 0–255 feature values into the BNN input vector:
/// each feature yields one bit per threshold in [`THERMO_THRESHOLDS`].
pub fn encode_features(features: &[u8]) -> BitVec {
    BitVec::from_bools(
        features
            .iter()
            .flat_map(|&f| THERMO_THRESHOLDS.iter().map(move |&t| f >= t)),
    )
}

/// Full feature pipeline: window → BNN input bits.
pub fn window_to_input(window: &MotionWindow) -> BitVec {
    encode_features(&extract_features(window))
}

/// Generates `(train, test)` window sets.
pub fn generate(config: &MotionConfig) -> (Vec<MotionWindow>, Vec<MotionWindow>) {
    let mut rng = Rng::seed_from_u64(config.seed);
    let make = |per_class: usize, rng: &mut Rng| {
        let mut windows = Vec::with_capacity(per_class * CLASSES);
        for label in 0..CLASSES {
            for _ in 0..per_class {
                windows.push(generate_window(label, config.noise, rng));
            }
        }
        windows
    };
    let train = make(config.train_per_class, &mut rng);
    let test = make(config.test_per_class, &mut rng);
    (train, test)
}

/// Converts windows to a labelled BNN dataset via the feature pipeline.
pub fn to_dataset(windows: &[MotionWindow]) -> Dataset {
    let inputs = windows.iter().map(window_to_input).collect();
    let labels = windows.iter().map(MotionWindow::label).collect();
    Dataset::new(inputs, labels, CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_width_is_216() {
        assert_eq!(INPUT_BITS, 216);
        let mut rng = Rng::seed_from_u64(1);
        let w = generate_window(0, 100.0, &mut rng);
        assert_eq!(window_to_input(&w).len(), INPUT_BITS);
    }

    #[test]
    fn histogram_counts_sum_to_window() {
        let mut rng = Rng::seed_from_u64(2);
        let w = generate_window(3, 5000.0, &mut rng);
        let f = extract_features(&w);
        assert_eq!(f.len(), CHANNELS * FEATURES_PER_CHANNEL);
        // Each channel's scaled histogram sums to ~2×WINDOW (saturation aside).
        for c in 0..CHANNELS {
            let hist_sum: u32 = f[c * 9 + 1..c * 9 + 9].iter().map(|&x| x as u32).sum();
            assert!(hist_sum <= 2 * WINDOW as u32);
            assert!(hist_sum >= WINDOW as u32, "at most half the bins saturate");
        }
    }

    #[test]
    fn classes_are_separable_without_noise() {
        let mut rng = Rng::seed_from_u64(3);
        let a = window_to_input(&generate_window(0, 0.0, &mut rng));
        let b = window_to_input(&generate_window(5, 0.0, &mut rng));
        assert_ne!(a, b, "distinct classes must yield distinct features");
    }

    #[test]
    fn byte_serialization_layout() {
        let mut rng = Rng::seed_from_u64(4);
        let w = generate_window(1, 100.0, &mut rng);
        let bytes = w.to_bytes();
        assert_eq!(bytes.len(), MotionWindow::byte_len());
        // First channel-major entry equals sample[0][0].
        let first = i16::from_le_bytes([bytes[0], bytes[1]]);
        assert_eq!(first, w.samples()[0][0]);
        // Channel 1 starts at WINDOW i16s in.
        let ch1 = i16::from_le_bytes([bytes[WINDOW * 2], bytes[WINDOW * 2 + 1]]);
        assert_eq!(ch1, w.samples()[0][1]);
    }

    #[test]
    fn generate_respects_counts() {
        let cfg = MotionConfig { train_per_class: 3, test_per_class: 2, noise: 100.0, seed: 5 };
        let (train, test) = generate(&cfg);
        assert_eq!(train.len(), 3 * CLASSES);
        assert_eq!(test.len(), 2 * CLASSES);
        let ds = to_dataset(&train);
        assert_eq!(ds.len(), train.len());
        assert_eq!(ds.classes(), CLASSES);
    }

    #[test]
    fn thermometer_encoding_is_monotone() {
        let low = encode_features(&[0]);
        let high = encode_features(&[255]);
        assert_eq!(low.count_ones(), 0);
        assert_eq!(high.count_ones(), THERMO_THRESHOLDS.len());
    }

    #[test]
    fn noise_moments_track_amplitude() {
        // The generator's noise term is `noise * rng.normal()`; the
        // normal sampler's own moments are pinned in `ncpu-testkit`.
        let mut rng = Rng::seed_from_u64(6);
        let w = generate_window(0, 8000.0, &mut rng);
        let flat: Vec<f64> = w.samples().iter().flat_map(|f| f.iter().map(|&v| v as f64)).collect();
        let spread = flat.iter().cloned().fold(f64::MIN, f64::max)
            - flat.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 8000.0, "noise must dominate the signal, spread {spread}");
    }
}
