//! Datasets: a generic container plus the paper's two synthetic workloads.
//!
//! The environment has no MNIST or Ninapro files, so per the substitution
//! rules in `DESIGN.md` this module generates:
//!
//! * [`digits`] — procedural 28×28 digit images standing in for MNIST,
//! * [`motion`] — class-conditioned 6-channel sensor windows standing in
//!   for the Ninapro recordings, together with the exact integer feature
//!   pipeline (per-channel mean + histogram, thermometer-encoded) that the
//!   CPU-mode RV32I program reimplements,
//! * [`idx`] — an MNIST/IDX loader so the real dataset can replace the
//!   synthetic one when its files are available.

pub mod digits;
pub mod idx;
pub mod motion;

use crate::bits::BitVec;

/// A labelled set of binary input vectors.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::{data::Dataset, BitVec};
///
/// let d = Dataset::new(vec![BitVec::zeros(4)], vec![0], 2);
/// assert_eq!(d.len(), 1);
/// let (x, y) = d.sample(0);
/// assert_eq!((x.len(), y), (4, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Vec<BitVec>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or a label is `>= classes`.
    pub fn new(inputs: Vec<BitVec>, labels: Vec<usize>, classes: usize) -> Dataset {
        assert_eq!(inputs.len(), labels.len(), "one label per input");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Dataset { inputs, labels, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Number of classes.
    pub const fn classes(&self) -> usize {
        self.classes
    }

    /// Input width in bits (0 for an empty dataset).
    pub fn input_width(&self) -> usize {
        self.inputs.first().map_or(0, BitVec::len)
    }

    /// Sample `idx` as `(input, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn sample(&self, idx: usize) -> (&BitVec, usize) {
        (&self.inputs[idx], self.labels[idx])
    }

    /// All inputs in order.
    pub fn inputs(&self) -> &[BitVec] {
        &self.inputs
    }

    /// All labels in order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(input, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&BitVec, usize)> {
        self.inputs.iter().zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        Dataset::new(vec![BitVec::zeros(4)], vec![2], 2);
    }

    #[test]
    #[should_panic(expected = "one label per input")]
    fn length_mismatch_checked() {
        Dataset::new(vec![BitVec::zeros(4)], vec![], 2);
    }

    #[test]
    fn accessors() {
        let d = Dataset::new(vec![BitVec::zeros(4), BitVec::zeros(4)], vec![0, 1], 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.input_width(), 4);
        assert_eq!(d.iter().count(), 2);
        assert_eq!(d.labels(), &[0, 1]);
    }
}
