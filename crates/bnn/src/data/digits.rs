//! Procedural digit images: the MNIST stand-in (see `DESIGN.md`).
//!
//! Samples are 28×28 binary images built from a 5×7 glyph font, upscaled,
//! randomly shifted, and corrupted with pixel-flip noise. The module also
//! renders the *raw* 224×224×3 RGB frames the image-classification use
//! case starts from, plus the integer-exact [`preprocess`] pipeline
//! (resize → grayscale → normalize) that the CPU-mode RV32I program
//! mirrors instruction for instruction.

use ncpu_testkit::rng::Rng;

use super::Dataset;
use crate::bits::BitVec;

/// Width and height of the classifier input image.
pub const IMG: usize = 28;
/// Number of pixels of the classifier input (the BNN input width).
pub const PIXELS: usize = IMG * IMG;
/// Width and height of the raw sensor frame the use case pre-processes.
pub const RAW: usize = 224;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// 5×7 glyph font, one row per digit, bit 4..0 = left..right.
const FONT: [[u8; 7]; 10] = [
    [0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110], // 0
    [0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110], // 1
    [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111], // 2
    [0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110], // 3
    [0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010], // 4
    [0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110], // 5
    [0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110], // 6
    [0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000], // 7
    [0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110], // 8
    [0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100], // 9
];

/// Configuration of the synthetic digit dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitsConfig {
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Probability of flipping each pixel (task difficulty knob; 0.15
    /// places a 100-neuron BNN in the paper's mid-90s accuracy band).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DigitsConfig {
    fn default() -> DigitsConfig {
        DigitsConfig { train_per_class: 150, test_per_class: 50, noise: 0.15, seed: 42 }
    }
}

/// The 5×7 glyph of `digit` as booleans (`glyph[row][col]`).
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn glyph(digit: usize) -> [[bool; 5]; 7] {
    let rows = FONT[digit];
    let mut out = [[false; 5]; 7];
    for (r, &bits) in rows.iter().enumerate() {
        for (c, cell) in out[r].iter_mut().enumerate() {
            *cell = bits >> (4 - c) & 1 == 1;
        }
    }
    out
}

/// Renders one noisy 28×28 binary sample of `digit`.
///
/// The glyph is upscaled 4× (20×28), placed at a random horizontal offset,
/// then each pixel flips with probability `noise`.
///
/// # Panics
///
/// Panics if `digit >= 10` or `noise` is outside `[0, 1]`.
pub fn render_bitmap(digit: usize, noise: f64, rng: &mut Rng) -> BitVec {
    assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
    let g = glyph(digit);
    let x_off = rng.gen_range(0..=IMG - 20);
    let mut bits = vec![false; PIXELS];
    for (y, row) in bits.chunks_mut(IMG).enumerate() {
        for (x, px) in row.iter_mut().enumerate() {
            let on = x >= x_off && x < x_off + 20 && g[y / 4][(x - x_off) / 4];
            *px = on ^ rng.gen_bool(noise);
        }
    }
    BitVec::from_bools(bits)
}

/// Generates `(train, test)` datasets of noisy digit bitmaps.
pub fn generate(config: &DigitsConfig) -> (Dataset, Dataset) {
    let mut rng = Rng::seed_from_u64(config.seed);
    let make = |per_class: usize, rng: &mut Rng| {
        let mut inputs = Vec::with_capacity(per_class * CLASSES);
        let mut labels = Vec::with_capacity(per_class * CLASSES);
        for digit in 0..CLASSES {
            for _ in 0..per_class {
                inputs.push(render_bitmap(digit, config.noise, rng));
                labels.push(digit);
            }
        }
        Dataset::new(inputs, labels, CLASSES)
    };
    let train = make(config.train_per_class, &mut rng);
    let test = make(config.test_per_class, &mut rng);
    (train, test)
}

/// A raw 224×224 RGB frame (`rgb[(y*224 + x)*3 + c]`), the input of the
/// image-classification use case before CPU pre-processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawImage {
    rgb: Vec<u8>,
    label: usize,
}

impl RawImage {
    /// The interleaved RGB bytes (length `224·224·3`).
    pub fn rgb(&self) -> &[u8] {
        &self.rgb
    }

    /// Ground-truth digit.
    pub const fn label(&self) -> usize {
        self.label
    }

    /// Size of the raw frame in bytes.
    pub fn byte_len(&self) -> usize {
        self.rgb.len()
    }
}

/// Renders a raw RGB frame of `digit`: the noisy bitmap upscaled 8× and
/// colorized (bright foreground on dark background with per-pixel jitter).
///
/// [`preprocess`] recovers (approximately) the underlying bitmap, so models
/// trained on [`render_bitmap`] outputs transfer to the use-case pipeline.
pub fn render_raw(digit: usize, noise: f64, rng: &mut Rng) -> RawImage {
    let bitmap = render_bitmap(digit, noise, rng);
    let mut rgb = vec![0u8; RAW * RAW * 3];
    for y in 0..RAW {
        for x in 0..RAW {
            let on = bitmap.get((y / 8) * IMG + x / 8);
            let base: [i32; 3] = if on { [205, 205, 205] } else { [60, 60, 60] };
            for c in 0..3 {
                let jitter = rng.gen_range(-25i32..=25);
                rgb[(y * RAW + x) * 3 + c] = (base[c] + jitter).clamp(0, 255) as u8;
            }
        }
    }
    RawImage { rgb, label: digit }
}

/// Side of the decimated frame the DMA stages into the core's local
/// memory (every 4th raw pixel: pure strided data movement, no compute).
pub const STAGED: usize = 56;

/// Decimates the raw 224×224 frame to 56×56 by 4× pixel striding — the
/// strided-DMA view that lands in the core's data cache. No arithmetic is
/// involved, so this step belongs to the DMA, not the CPU workload.
pub fn decimate(raw: &RawImage) -> Vec<u8> {
    let mut out = vec![0u8; STAGED * STAGED * 3];
    for y in 0..STAGED {
        for x in 0..STAGED {
            for c in 0..3 {
                out[(y * STAGED + x) * 3 + c] = raw.rgb[((y * 4) * RAW + x * 4) * 3 + c];
            }
        }
    }
    out
}

/// Step 1 of the CPU pipeline: 2×2 block-average resize of the staged
/// 56×56×3 frame to 28×28×3. Integer-exact: each channel is
/// `(a + b + c + d) >> 2`, the arithmetic the RV32I program performs.
pub fn resize(staged56: &[u8]) -> Vec<u8> {
    assert_eq!(staged56.len(), STAGED * STAGED * 3, "expected 56x56 RGB");
    let mut out = vec![0u8; PIXELS * 3];
    for oy in 0..IMG {
        for ox in 0..IMG {
            for c in 0..3 {
                let px = |dy: usize, dx: usize| {
                    staged56[((oy * 2 + dy) * STAGED + ox * 2 + dx) * 3 + c] as u32
                };
                let sum = px(0, 0) + px(0, 1) + px(1, 0) + px(1, 1);
                out[(oy * IMG + ox) * 3 + c] = (sum >> 2) as u8;
            }
        }
    }
    out
}

/// Step 3 ("grayscale filtering" includes smoothing): approximate 3×3 box
/// filter — interior pixels become `min(Σ neighbourhood >> 3, 255)`,
/// border pixels pass through. Division-free, exactly as the RV32I
/// program computes it.
pub fn blur3(gray: &[u8]) -> Vec<u8> {
    assert_eq!(gray.len(), PIXELS, "expected 28x28 grayscale");
    let mut out = gray.to_vec();
    for y in 1..IMG - 1 {
        for x in 1..IMG - 1 {
            let mut sum = 0u32;
            for dy in 0..3 {
                for dx in 0..3 {
                    sum += gray[(y + dy - 1) * IMG + (x + dx - 1)] as u32;
                }
            }
            out[y * IMG + x] = (sum >> 3).min(255) as u8;
        }
    }
    out
}

/// The 28×28 grayscale image (step 2): `(77·r + 150·g + 29·b) >> 8`.
pub fn grayscale(rgb28: &[u8]) -> Vec<u8> {
    assert_eq!(rgb28.len(), PIXELS * 3, "expected 28x28 RGB");
    (0..PIXELS)
        .map(|i| {
            let r = rgb28[i * 3] as u32;
            let g = rgb28[i * 3 + 1] as u32;
            let b = rgb28[i * 3 + 2] as u32;
            ((77 * r + 150 * g + 29 * b) >> 8) as u8
        })
        .collect()
}

/// The binarized BNN input (step 3, "data normalization"): pixel `i` maps
/// to +1 iff `gray[i]·784 >= Σ gray` — i.e. above the image mean, written
/// division-free exactly as the RV32I program computes it.
pub fn normalize(gray: &[u8]) -> BitVec {
    assert_eq!(gray.len(), PIXELS, "expected 28x28 grayscale");
    let total: u32 = gray.iter().map(|&g| g as u32).sum();
    BitVec::from_bools(gray.iter().map(|&g| g as u32 * PIXELS as u32 >= total))
}

/// Full use-case pipeline on one raw frame: strided-DMA decimation, then
/// the CPU steps resize → grayscale → filter → normalize, exactly
/// mirroring the RV32I pre-processing program in `ncpu-workloads`.
pub fn preprocess(raw: &RawImage) -> BitVec {
    normalize(&blur3(&grayscale(&resize(&decimate(raw)))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_distinct() {
        let all: Vec<_> = (0..10).map(glyph).collect();
        for i in 0..10 {
            for j in i + 1..10 {
                assert_ne!(all[i], all[j], "glyphs {i} and {j} collide");
            }
        }
    }

    #[test]
    fn render_is_deterministic_per_rng_state() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        assert_eq!(render_bitmap(3, 0.1, &mut a), render_bitmap(3, 0.1, &mut b));
    }

    #[test]
    fn noiseless_render_contains_glyph() {
        let mut rng = Rng::seed_from_u64(0);
        let img = render_bitmap(1, 0.0, &mut rng);
        assert_eq!(img.len(), PIXELS);
        let ones = img.count_ones();
        let font_pixels: usize =
            glyph(1).iter().flatten().filter(|&&b| b).count();
        assert_eq!(ones, font_pixels * 16, "4x upscale preserves pixel count");
    }

    #[test]
    fn generate_shapes_and_labels() {
        let cfg = DigitsConfig { train_per_class: 2, test_per_class: 1, noise: 0.1, seed: 1 };
        let (train, test) = generate(&cfg);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.input_width(), PIXELS);
        assert_eq!(train.classes(), 10);
    }

    #[test]
    fn preprocess_recovers_clean_bitmap() {
        // The raw pipeline recovers the underlying glyph up to the ~1-pixel
        // stroke dilation the box filter introduces.
        let mut rng = Rng::seed_from_u64(9);
        let raw = render_raw(7, 0.0, &mut rng);
        let recovered = preprocess(&raw);
        let mut reference_rng = Rng::seed_from_u64(9);
        let reference = render_bitmap(7, 0.0, &mut reference_rng);
        // Every glyph pixel survives; extra pixels are bounded dilation.
        let lost = (0..PIXELS)
            .filter(|&i| reference.get(i) && !recovered.get(i))
            .count();
        let gained = (0..PIXELS)
            .filter(|&i| !reference.get(i) && recovered.get(i))
            .count();
        assert!(lost <= PIXELS / 40, "lost {lost} glyph pixels");
        assert!(gained <= PIXELS / 2, "gained {gained} pixels");
    }

    #[test]
    fn resize_averages_blocks() {
        let mut rng = Rng::seed_from_u64(2);
        let raw = render_raw(0, 0.0, &mut rng);
        let small = resize(&decimate(&raw));
        assert_eq!(small.len(), PIXELS * 3);
        // Averages stay within the raw value range.
        assert!(small.iter().all(|&v| v <= 230));
    }

    #[test]
    fn blur_preserves_borders_and_bounds() {
        let mut gray = vec![100u8; PIXELS];
        gray[0] = 7;
        gray[IMG + 1] = 255; // interior pixel
        let b = blur3(&gray);
        assert_eq!(b[0], 7, "border passes through");
        // Interior (1,1): neighbourhood holds the 7, seven 100s and the
        // 255: (7 + 700 + 255) >> 3 = 120.
        assert_eq!(b[IMG + 1], 120);
    }

    #[test]
    fn blur_saturates_at_255() {
        let gray = vec![255u8; PIXELS];
        let b = blur3(&gray);
        // 9×255 >> 3 = 286 -> clamped.
        assert_eq!(b[IMG + 1], 255);
    }

    #[test]
    fn normalize_is_mean_threshold() {
        let mut gray = vec![10u8; PIXELS];
        gray[0] = 250;
        let bits = normalize(&gray);
        assert!(bits.get(0));
        assert!(!bits.get(1));
    }
}
