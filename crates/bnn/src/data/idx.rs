//! IDX (MNIST-format) file support.
//!
//! The offline environment ships no MNIST, so the evaluation defaults to
//! the synthetic digit set — but a downstream user who *has* the four
//! classic files can drop them in and run the real thing. This module
//! parses the IDX container (big-endian, magic `0x0000080x`), binarizes
//! pixels at mid-scale, and exposes the result as an ordinary [`Dataset`].

use std::error::Error;
use std::fmt;
use std::path::Path;

use super::Dataset;
use crate::bits::BitVec;

/// Error raised when decoding an IDX file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdxError {
    /// The magic/type prefix is not an IDX unsigned-byte tensor.
    BadMagic {
        /// The four magic bytes found.
        found: u32,
    },
    /// The byte stream is shorter than the header declares.
    Truncated,
    /// Image and label files disagree on the sample count.
    CountMismatch {
        /// Images in the image file.
        images: usize,
        /// Labels in the label file.
        labels: usize,
    },
    /// A label byte exceeds the class count.
    LabelOutOfRange {
        /// The offending label.
        label: u8,
    },
    /// The underlying file could not be read.
    Io(String),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::BadMagic { found } => write!(f, "not an IDX file (magic {found:#010x})"),
            IdxError::Truncated => write!(f, "IDX file shorter than its header declares"),
            IdxError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            IdxError::LabelOutOfRange { label } => write!(f, "label {label} out of range"),
            IdxError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl Error for IdxError {}

fn be_u32(bytes: &[u8], at: usize) -> Result<u32, IdxError> {
    bytes
        .get(at..at + 4)
        .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
        .ok_or(IdxError::Truncated)
}

/// Parses an IDX3 image tensor (`magic 0x00000803`): returns
/// `(rows, cols, pixels)` with pixels sample-major.
pub fn parse_images(bytes: &[u8]) -> Result<(usize, usize, Vec<u8>), IdxError> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(IdxError::BadMagic { found: magic });
    }
    let count = be_u32(bytes, 4)? as usize;
    let rows = be_u32(bytes, 8)? as usize;
    let cols = be_u32(bytes, 12)? as usize;
    let need = 16 + count * rows * cols;
    if bytes.len() < need {
        return Err(IdxError::Truncated);
    }
    Ok((rows, cols, bytes[16..need].to_vec()))
}

/// Parses an IDX1 label tensor (`magic 0x00000801`).
pub fn parse_labels(bytes: &[u8]) -> Result<Vec<u8>, IdxError> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(IdxError::BadMagic { found: magic });
    }
    let count = be_u32(bytes, 4)? as usize;
    let need = 8 + count;
    if bytes.len() < need {
        return Err(IdxError::Truncated);
    }
    Ok(bytes[8..need].to_vec())
}

/// Pixel threshold above which a pixel becomes +1 (MNIST convention:
/// mid-scale binarization, as the paper's BNN input requires).
pub const BINARIZE_THRESHOLD: u8 = 128;

/// Combines parsed images and labels into a binarized [`Dataset`].
///
/// # Errors
///
/// Returns [`IdxError`] if counts disagree or a label is `>= classes`.
pub fn to_dataset(
    rows: usize,
    cols: usize,
    pixels: &[u8],
    labels: &[u8],
    classes: usize,
) -> Result<Dataset, IdxError> {
    let per = rows * cols;
    let images = pixels.len().checked_div(per).unwrap_or(0);
    if images != labels.len() {
        return Err(IdxError::CountMismatch { images, labels: labels.len() });
    }
    let mut inputs = Vec::with_capacity(images);
    let mut ys = Vec::with_capacity(images);
    for (i, &label) in labels.iter().enumerate() {
        if label as usize >= classes {
            return Err(IdxError::LabelOutOfRange { label });
        }
        let px = &pixels[i * per..(i + 1) * per];
        inputs.push(BitVec::from_bools(px.iter().map(|&p| p >= BINARIZE_THRESHOLD)));
        ys.push(label as usize);
    }
    Ok(Dataset::new(inputs, ys, classes))
}

/// Loads a matching `(images, labels)` IDX file pair from disk.
///
/// # Errors
///
/// Returns [`IdxError`] for unreadable or malformed files.
pub fn load_pair(
    images_path: impl AsRef<Path>,
    labels_path: impl AsRef<Path>,
    classes: usize,
) -> Result<Dataset, IdxError> {
    let read = |p: &Path| std::fs::read(p).map_err(|e| IdxError::Io(format!("{}: {e}", p.display())));
    let (rows, cols, pixels) = parse_images(&read(images_path.as_ref())?)?;
    let labels = parse_labels(&read(labels_path.as_ref())?)?;
    to_dataset(rows, cols, &pixels, &labels, classes)
}

/// Loads MNIST from a directory holding the four classic files
/// (`train-images-idx3-ubyte` etc.), if present. Returns `None` when the
/// directory or files are missing — callers fall back to the synthetic
/// digit set.
pub fn load_mnist(dir: impl AsRef<Path>) -> Option<(Dataset, Dataset)> {
    let dir = dir.as_ref();
    let train = load_pair(
        dir.join("train-images-idx3-ubyte"),
        dir.join("train-labels-idx1-ubyte"),
        10,
    )
    .ok()?;
    let test = load_pair(
        dir.join("t10k-images-idx3-ubyte"),
        dir.join("t10k-labels-idx1-ubyte"),
        10,
    )
    .ok()?;
    Some((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx3(count: usize, rows: usize, cols: usize, pixels: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        out.extend_from_slice(&(count as u32).to_be_bytes());
        out.extend_from_slice(&(rows as u32).to_be_bytes());
        out.extend_from_slice(&(cols as u32).to_be_bytes());
        out.extend_from_slice(pixels);
        out
    }

    fn idx1(labels: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        out.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        out.extend_from_slice(labels);
        out
    }

    #[test]
    fn round_trip_through_idx() {
        // 2 images of 2×3, pixel values straddling the threshold.
        let pixels = [0u8, 200, 127, 128, 255, 1, 9, 129, 0, 250, 80, 200];
        let images = idx3(2, 2, 3, &pixels);
        let labels = idx1(&[3, 7]);
        let (rows, cols, px) = parse_images(&images).unwrap();
        let ys = parse_labels(&labels).unwrap();
        let ds = to_dataset(rows, cols, &px, &ys, 10).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[3, 7]);
        let (x0, _) = ds.sample(0);
        assert!(!x0.get(0), "0 < threshold");
        assert!(x0.get(1), "200 >= threshold");
        assert!(!x0.get(2), "127 < threshold");
        assert!(x0.get(3), "128 >= threshold");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut images = idx3(1, 1, 1, &[0]);
        images[3] = 0x04;
        assert!(matches!(parse_images(&images), Err(IdxError::BadMagic { .. })));
        assert!(matches!(parse_labels(&images), Err(IdxError::BadMagic { .. })));
    }

    #[test]
    fn truncation_rejected() {
        let images = idx3(2, 28, 28, &[0; 784]); // declares 2, holds 1
        assert_eq!(parse_images(&images), Err(IdxError::Truncated));
        assert_eq!(parse_labels(&idx1(&[1, 2])[..9]), Err(IdxError::Truncated));
    }

    #[test]
    fn count_mismatch_rejected() {
        let err = to_dataset(2, 2, &[0; 8], &[1], 10).unwrap_err();
        assert_eq!(err, IdxError::CountMismatch { images: 2, labels: 1 });
    }

    #[test]
    fn label_range_enforced() {
        let err = to_dataset(1, 1, &[0], &[10], 10).unwrap_err();
        assert_eq!(err, IdxError::LabelOutOfRange { label: 10 });
    }

    #[test]
    fn missing_directory_falls_back() {
        assert!(load_mnist("/definitely/not/a/real/path").is_none());
    }

    #[test]
    fn load_pair_from_disk() {
        let dir = std::env::temp_dir().join("ncpu_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("imgs");
        let lbl_path = dir.join("lbls");
        std::fs::write(&img_path, idx3(3, 1, 2, &[0, 255, 255, 0, 200, 200])).unwrap();
        std::fs::write(&lbl_path, idx1(&[0, 1, 2])).unwrap();
        let ds = load_pair(&img_path, &lbl_path, 4).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.input_width(), 2);
    }
}
