//! Classification metrics: accuracy and confusion matrices.

use crate::data::Dataset;
use crate::model::BnnModel;

/// Fraction of `data` samples the model classifies correctly.
///
/// # Examples
///
/// ```
/// use ncpu_bnn::{data::Dataset, metrics::accuracy, BitVec, BnnModel, Topology};
///
/// let topo = Topology::new(4, vec![4], 2);
/// let model = BnnModel::zeros(&topo);
/// let data = Dataset::new(vec![BitVec::zeros(4)], vec![0], 2);
/// // The all-zeros model always answers class 0.
/// assert_eq!(accuracy(&model, &data), 1.0);
/// ```
pub fn accuracy(model: &BnnModel, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data.iter().filter(|(x, y)| model.classify(x) == *y).count();
    correct as f64 / data.len() as f64
}

/// Row-per-true-class confusion matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    classes: usize,
    counts: Vec<u64>,
}

impl Confusion {
    /// Evaluates `model` on `data`.
    pub fn evaluate(model: &BnnModel, data: &Dataset) -> Confusion {
        let classes = data.classes();
        let mut counts = vec![0u64; classes * classes];
        for (x, y) in data.iter() {
            let pred = model.classify(x);
            if pred < classes {
                counts[y * classes + pred] += 1;
            }
        }
        Confusion { classes, counts }
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        assert!(actual < self.classes && predicted < self.classes, "class out of range");
        self.counts[actual * self.classes + predicted]
    }

    /// Number of classes.
    pub const fn classes(&self) -> usize {
        self.classes
    }

    /// Overall accuracy implied by the matrix.
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitVec;
    use crate::model::Topology;

    #[test]
    fn confusion_diag_matches_accuracy() {
        let topo = Topology::new(4, vec![4], 2);
        let model = BnnModel::zeros(&topo); // always predicts 0
        let data = Dataset::new(
            vec![BitVec::zeros(4), BitVec::zeros(4), BitVec::zeros(4)],
            vec![0, 1, 0],
            2,
        );
        let c = Confusion::evaluate(&model, &data);
        assert_eq!(c.count(0, 0), 2);
        assert_eq!(c.count(1, 0), 1);
        assert_eq!(c.count(1, 1), 0);
        assert!((c.accuracy() - accuracy(&model, &data)).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_yields_zero() {
        let topo = Topology::new(4, vec![4], 2);
        let model = BnnModel::zeros(&topo);
        let data = Dataset::new(vec![], vec![], 2);
        assert_eq!(accuracy(&model, &data), 0.0);
        assert_eq!(Confusion::evaluate(&model, &data).accuracy(), 0.0);
    }
}
