//! Deterministic scoped parallelism for the NCPU workspace.
//!
//! Every figure and artifact in this repository is a pure function of its
//! seeds, and that contract must survive parallel execution. This crate
//! provides the one primitive the workspace parallelizes with:
//! [`Pool::par_map_indexed`], an order-preserving indexed map over owned
//! items. Results are collected **by item index**, never by completion
//! order, so the output vector is identical for any worker count — the
//! scheduler can only change wall-clock time, not bytes.
//!
//! The rules call sites must follow to keep that guarantee:
//!
//! 1. **No shared mutable state across items.** Each task owns its inputs
//!    and returns its outputs; reductions happen after the map, in item
//!    order.
//! 2. **No shared RNG.** Seeded streams are derived per item
//!    (`ncpu_testkit::rng::Rng::split(seed, index)`), never advanced from a
//!    generator that multiple items observe.
//! 3. **Reductions sum in fixed index order.** Floating-point addition is
//!    not associative; summing partial results `0, 1, 2, …` makes the
//!    reduced value independent of which worker finished first.
//!
//! Worker count comes from the `NCPU_THREADS` environment variable
//! (default: [`std::thread::available_parallelism`]). With one worker the
//! map runs inline on the caller's thread — no threads are spawned, so
//! `NCPU_THREADS=1` is byte-for-byte *and* stack-for-stack the serial
//! program.
//!
//! Built on `std::thread::scope` + `std::sync::mpsc` channels only: the
//! workspace's zero-dependency policy (DESIGN.md §6) forbids rayon and
//! crossbeam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc;
use std::sync::Mutex;

/// Environment variable overriding the worker count (`0` or unset ⇒
/// the host's available parallelism).
pub const THREADS_ENV: &str = "NCPU_THREADS";

/// Worker count the workspace runs with: `NCPU_THREADS` if set to a
/// positive integer, otherwise the host's available parallelism
/// (falling back to 1 if that is unknowable).
///
/// # Examples
///
/// ```
/// assert!(ncpu_par::thread_count() >= 1);
/// ```
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match parse_threads(&v) {
            Ok(Some(n)) => n,
            Ok(None) => host_parallelism(),
            Err(bad) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("ncpu-par: ignoring {bad}; using host parallelism");
                });
                host_parallelism()
            }
        },
        Err(_) => host_parallelism(),
    }
}

/// An `NCPU_THREADS` value that is neither a non-negative integer nor
/// one of the documented "use the host" spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadThreadsValue {
    /// The rejected value, verbatim.
    pub raw: String,
}

impl std::fmt::Display for BadThreadsValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {THREADS_ENV}={:?}: want a non-negative worker count", self.raw)
    }
}

impl std::error::Error for BadThreadsValue {}

/// Parses an `NCPU_THREADS` value without touching the environment:
/// `Ok(Some(n))` for a positive worker count, `Ok(None)` for the
/// documented "use the host" spellings (`0`, empty/whitespace), and
/// [`BadThreadsValue`] for anything else — which [`thread_count`]
/// reports once on stderr and then treats as unset rather than
/// panicking or silently absorbing.
pub fn parse_threads(raw: &str) -> Result<Option<usize>, BadThreadsValue> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(BadThreadsValue { raw: raw.to_string() }),
    }
}

/// The host's available parallelism (1 if the OS cannot report it).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scoped worker pool with a fixed worker count.
///
/// The pool is a *policy* object — threads are spawned per
/// [`par_map_indexed`](Pool::par_map_indexed) call inside a
/// `std::thread::scope` and joined before it returns, so borrows of the
/// caller's stack are allowed in the task closure and no threads outlive
/// any call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool sized from the environment ([`thread_count`]).
    pub fn from_env() -> Pool {
        Pool::with_workers(thread_count())
    }

    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool { workers: workers.max(1) }
    }

    /// This pool's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` in parallel, then folds the outputs into
    /// `init` **in item index order** on the calling thread.
    ///
    /// This is the deterministic reduction primitive: the map fans out
    /// across workers, but the fold always visits results `0, 1, 2, …`,
    /// so non-commutative or merely non-associative accumulators
    /// (floating-point sums, histogram merges whose observable byte
    /// order matters) produce identical bytes for any worker count.
    ///
    /// # Examples
    ///
    /// ```
    /// let pool = ncpu_par::Pool::with_workers(4);
    /// let concat = pool.par_map_fold(
    ///     vec![1u32, 2, 3],
    ///     |i, x| format!("{i}:{x}"),
    ///     String::new(),
    ///     |mut acc, s| { acc.push_str(&s); acc.push(' '); acc },
    /// );
    /// assert_eq!(concat, "0:1 1:2 2:3 ");
    /// ```
    pub fn par_map_fold<T, U, A, F, G>(&self, items: Vec<T>, f: F, init: A, fold: G) -> A
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
        G: FnMut(A, U) -> A,
    {
        self.par_map_indexed(items, f).into_iter().fold(init, fold)
    }

    /// Maps `f` over `items`, returning outputs **in item order**.
    ///
    /// `f` receives each item's index alongside the item, so call sites
    /// can derive per-item seeds and labels. The result at position `i`
    /// is always `f(i, items[i])` regardless of worker count or
    /// scheduling; a pool of one worker runs the whole map inline on the
    /// caller's thread.
    ///
    /// # Panics
    ///
    /// If any task panics, the panic is resurfaced on the calling thread
    /// after the scope unwinds.
    ///
    /// # Examples
    ///
    /// ```
    /// let pool = ncpu_par::Pool::with_workers(4);
    /// let squares = pool.par_map_indexed(vec![1u64, 2, 3, 4, 5], |i, x| (i as u64, x * x));
    /// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16), (4, 25)]);
    /// ```
    pub fn par_map_indexed<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        let n = items.len();
        let (task_tx, task_rx) = mpsc::channel::<(usize, T)>();
        for pair in items.into_iter().enumerate() {
            task_tx.send(pair).expect("task queue open");
        }
        drop(task_tx); // workers drain until the queue is empty
        let task_rx = Mutex::new(task_rx);

        let (out_tx, out_rx) = mpsc::channel::<(usize, U)>();
        let mut slots: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let out_tx = out_tx.clone();
                let task_rx = &task_rx;
                let f = &f;
                scope.spawn(move || {
                    loop {
                        // Hold the queue lock only for the pop, not the work.
                        let next = task_rx.lock().expect("task queue lock").try_recv();
                        match next {
                            Ok((i, item)) => {
                                let out = f(i, item);
                                if out_tx.send((i, out)).is_err() {
                                    return; // collector gone: scope is unwinding
                                }
                            }
                            Err(_) => return, // queue drained
                        }
                    }
                });
            }
            drop(out_tx);
            // Collect by index: completion order never reaches the caller.
            for (i, out) in out_rx {
                slots[i] = Some(out);
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("task {i} produced no output")))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

/// Maps `f` over `items` on a pool sized from the environment.
///
/// Convenience wrapper for `Pool::from_env().par_map_indexed(items, f)`;
/// see [`Pool::par_map_indexed`] for the determinism contract.
pub fn par_map_indexed<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    Pool::from_env().par_map_indexed(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_env_parsing_falls_back_not_panics() {
        // Pure-parse tests: the real environment stays untouched
        // (tests run in parallel).
        assert_eq!(parse_threads("4"), Ok(Some(4)));
        assert_eq!(parse_threads(" 16 "), Ok(Some(16)));
        assert_eq!(parse_threads("0"), Ok(None), "0 means host parallelism");
        assert_eq!(parse_threads(""), Ok(None));
        assert_eq!(parse_threads("   "), Ok(None));
        for junk in ["four", "-2", "3.5", "1e3", "0x4", "4 cores"] {
            let err = parse_threads(junk).expect_err(junk);
            assert_eq!(err.raw, junk, "the error carries the rejected value");
            assert!(err.to_string().contains(THREADS_ENV), "message names the env var");
        }
    }

    #[test]
    fn preserves_order_for_any_worker_count() {
        let items: Vec<u32> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 16, 97, 200] {
            let pool = Pool::with_workers(workers);
            let got = pool.par_map_indexed(items.clone(), |_, x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let pool = Pool::with_workers(5);
        let got = pool.par_map_indexed(vec!['a', 'b', 'c', 'd'], |i, c| (i, c));
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd')]);
    }

    #[test]
    fn parallel_equals_serial_with_per_item_rng() {
        use ncpu_testkit::rng::Rng;
        let task = |i: usize, seed: u64| {
            let mut rng = Rng::split(seed, i as u64);
            (0..64).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
        };
        let items: Vec<u64> = vec![42; 33];
        let serial = Pool::with_workers(1).par_map_indexed(items.clone(), task);
        let parallel = Pool::with_workers(8).par_map_indexed(items, task);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::with_workers(4);
        let empty: Vec<u8> = pool.par_map_indexed(Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.par_map_indexed(vec![9u8], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let table: Vec<u64> = (0..10).map(|i| i * i).collect();
        let pool = Pool::with_workers(3);
        let got = pool.par_map_indexed((0..10usize).collect(), |_, i| table[i]);
        assert_eq!(got, table);
    }

    #[test]
    fn par_map_fold_folds_in_index_order_for_any_worker_count() {
        // String concatenation is order-sensitive: any completion-order
        // leak into the fold would scramble the bytes.
        let items: Vec<u32> = (0..53).collect();
        let expect: String = items.iter().map(|i| format!("{i};")).collect();
        for workers in [1, 2, 4, 8, 53] {
            let got = Pool::with_workers(workers).par_map_fold(
                items.clone(),
                |_, x| format!("{x};"),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_map_fold_empty_returns_init() {
        let got = Pool::with_workers(4).par_map_fold(
            Vec::<u8>::new(),
            |_, x| x,
            7u64,
            |acc, x| acc + u64::from(x),
        );
        assert_eq!(got, 7);
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(Pool::with_workers(0).workers(), 1);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        Pool::with_workers(4).par_map_indexed(vec![0u8, 1, 2, 3], |_, x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
