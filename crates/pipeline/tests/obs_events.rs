//! The pipeline's observability shard: event emission vs. the cheap
//! `PipeStats` counters, and the zero-cost-when-off contract.

use ncpu_isa::asm::assemble;
use ncpu_obs::{EventKind, StallCause, TraceLevel};
use ncpu_pipeline::{FlatMem, Pipeline};

fn traced(src: &str, level: TraceLevel) -> Pipeline<FlatMem> {
    let program = assemble(src).unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(8192));
    cpu.set_obs_level(level);
    cpu.run(100_000).unwrap();
    cpu
}

#[test]
fn full_trace_retire_events_match_stats() {
    let cpu = traced(
        "addi t0, zero, 1
         addi t1, t0, 2
         sw t1, 0(zero)
         lw t2, 0(zero)
         addi t3, t2, 1
         ebreak",
        TraceLevel::Full,
    );
    let retires = cpu
        .obs()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Retire { .. }))
        .count() as u64;
    assert_eq!(retires, cpu.stats().retired);
    // The lw → addi dependency is a load-use hazard: the stall appears
    // both in the cheap counter and as an event.
    let load_use = cpu
        .obs()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Stall { cause: StallCause::LoadUse })
        .count() as u64;
    assert_eq!(load_use, cpu.stats().load_use_stalls);
    assert!(load_use > 0);
}

#[test]
fn l2_accesses_are_events_and_mem_stalls_counted() {
    let cpu = traced(
        "addi t0, zero, 7
         sw_l2 t0, 0(zero)
         lw_l2 t1, 0(zero)
         ebreak",
        TraceLevel::Full,
    );
    let l2: Vec<_> = cpu
        .obs()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::L2Access { is_store, .. } => Some(is_store),
            _ => None,
        })
        .collect();
    assert_eq!(l2, vec![true, false]);
    let mem_stalls = cpu
        .obs()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Stall { cause: StallCause::Mem })
        .count() as u64;
    assert_eq!(mem_stalls, cpu.stats().mem_stall_cycles);
}

#[test]
fn off_and_counters_levels_record_no_instants() {
    for level in [TraceLevel::Off, TraceLevel::Counters] {
        let cpu = traced("addi t0, zero, 1\nebreak", level);
        assert!(cpu.obs().events().is_empty());
        assert!(cpu.obs().spans().is_empty());
    }
}
