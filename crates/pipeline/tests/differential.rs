//! Differential tests: the cycle-accurate pipeline must produce exactly the
//! architectural state of the functional golden model (`ncpu_isa::interp`)
//! for identical programs.

use ncpu_isa::asm::assemble;
use ncpu_isa::interp::Interp;
use ncpu_isa::Reg;
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_testkit::prop::{Prop, Shrink};
use ncpu_testkit::rng::Rng;
use ncpu_testkit::prop_assert_eq;

/// Runs a program on both models and compares register files plus the data
/// memory window `[4096, 8192)` (kept clear of code in the golden model's
/// unified address space). Returns `Err` so the property harness can shrink.
fn check_equivalent(src: &str) -> Result<(), String> {
    let program = assemble(src).map_err(|e| format!("assembly failed: {e}\n{src}"))?;
    let mut gold = Interp::with_program(&program, 8192);
    gold.run(1_000_000).map_err(|e| format!("golden model failed: {e}\n{src}"))?;

    let mut cpu = Pipeline::new(program, FlatMem::new(8192));
    cpu.run(5_000_000).map_err(|e| format!("pipeline failed: {e}\n{src}"))?;

    for reg in Reg::all() {
        prop_assert_eq!(cpu.reg(reg), gold.reg(reg), "register {} differs\n{}", reg, src);
    }
    prop_assert_eq!(
        &cpu.mem().local()[4096..8192],
        &gold.mem()[4096..8192],
        "data memory differs\n{}",
        src
    );
    prop_assert_eq!(cpu.stats().retired, gold.retired(), "retire count differs\n{}", src);
    Ok(())
}

fn assert_equivalent(src: &str) {
    check_equivalent(src).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn loops_and_arithmetic() {
    assert_equivalent(
        "      li t0, 37
               li t1, 1
               li t2, 0
        loop:  add t2, t2, t0
               mul t1, t1, t0
               srli t3, t2, 1
               xor t4, t3, t1
               addi t0, t0, -1
               bnez t0, loop
               ebreak",
    );
}

#[test]
fn memory_widths_and_signs() {
    assert_equivalent(
        "li s0, 4096
         li t0, -12345
         sw t0, 0(s0)
         sh t0, 4(s0)
         sb t0, 6(s0)
         lb a0, 0(s0)
         lbu a1, 0(s0)
         lh a2, 0(s0)
         lhu a3, 4(s0)
         lw a4, 0(s0)
         ebreak",
    );
}

#[test]
fn function_calls_with_stack() {
    assert_equivalent(
        "        li sp, 8192
                 li a0, 10
                 jal ra, fib
                 j done
        fib:     addi t0, zero, 2
                 blt a0, t0, base
                 addi sp, sp, -12
                 sw ra, 0(sp)
                 sw a0, 4(sp)
                 addi a0, a0, -1
                 jal ra, fib
                 sw a0, 8(sp)
                 lw a0, 4(sp)
                 addi a0, a0, -2
                 jal ra, fib
                 lw t1, 8(sp)
                 add a0, a0, t1
                 lw ra, 0(sp)
                 addi sp, sp, 12
        base:    ret
        done:    ebreak",
    );
}

#[test]
fn insertion_sort_in_memory() {
    assert_equivalent(
        "        li s0, 4096
                 # fill 16 pseudo-random words
                 li t0, 16
                 li t1, 12345
        fill:    mul t1, t1, t1
                 srli t2, t1, 7
                 xor t1, t1, t2
                 andi t3, t1, 1023
                 sw t3, 0(s0)
                 addi s0, s0, 4
                 addi t0, t0, -1
                 bnez t0, fill
                 # insertion sort
                 li s0, 4096
                 li s1, 1
        outer:   li t6, 16
                 bge s1, t6, done
                 slli t0, s1, 2
                 add t0, t0, s0
                 lw t1, 0(t0)
        inner:   beq t0, s0, place
                 lw t2, -4(t0)
                 bge t1, t2, place
                 sw t2, 0(t0)
                 addi t0, t0, -4
                 j inner
        place:   sw t1, 0(t0)
                 addi s1, s1, 1
                 j outer
        done:    ebreak",
    );
}

#[test]
fn l2_round_trip_matches() {
    assert_equivalent(
        "li t0, 256
         li t1, 0xabcd
         sw_l2 t1, 0(t0)
         lw_l2 a0, 0(t0)
         addi a0, a0, 1
         ebreak",
    );
}

#[test]
fn hazard_heavy_sequences() {
    assert_equivalent(
        "li s0, 4096
         li t0, 3
         sw t0, 0(s0)
         lw t1, 0(s0)
         add t2, t1, t1
         lw t3, 0(s0)
         add t4, t3, t2
         sw t4, 4(s0)
         lw t5, 4(s0)
         add t6, t5, t5
         ebreak",
    );
}

// ---- property-based differential testing ----

const REGS: [&str; 8] = ["t0", "t1", "t2", "a0", "a1", "a2", "s2", "s3"];
const ALU_R: [&str; 11] =
    ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "mul"];
const ALU_I: [&str; 9] =
    ["addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"];

#[derive(Debug, Clone)]
enum Stmt {
    AluR(usize, usize, usize, usize),
    AluI(usize, usize, usize, i32),
    Store(u32, usize, u32),
    Load(u32, usize, u32),
    SkipIf(usize, usize, usize, bool),
}

/// Field-wise shrinking; every field shrinks toward 0 and stays inside the
/// range `render` accepts (it re-maps out-of-range values defensively).
impl Shrink for Stmt {
    fn shrink(&self) -> Vec<Stmt> {
        match self.clone() {
            Stmt::AluR(a, b, c, d) => {
                (a, b, c, d).shrink().into_iter().map(|(a, b, c, d)| Stmt::AluR(a, b, c, d)).collect()
            }
            Stmt::AluI(a, b, c, d) => {
                (a, b, c, d).shrink().into_iter().map(|(a, b, c, d)| Stmt::AluI(a, b, c, d)).collect()
            }
            Stmt::Store(a, b, c) => {
                (a, b, c).shrink().into_iter().map(|(a, b, c)| Stmt::Store(a, b, c)).collect()
            }
            Stmt::Load(a, b, c) => {
                (a, b, c).shrink().into_iter().map(|(a, b, c)| Stmt::Load(a, b, c)).collect()
            }
            Stmt::SkipIf(a, b, c, d) => {
                (a, b, c, d).shrink().into_iter().map(|(a, b, c, d)| Stmt::SkipIf(a, b, c, d)).collect()
            }
        }
    }
}

fn any_stmt(rng: &mut Rng) -> Stmt {
    match rng.gen_range(0u32..5) {
        0 => Stmt::AluR(
            rng.gen_range(0..ALU_R.len()),
            rng.gen_range(0..8usize),
            rng.gen_range(0..8usize),
            rng.gen_range(0..8usize),
        ),
        1 => Stmt::AluI(
            rng.gen_range(0..ALU_I.len()),
            rng.gen_range(0..8usize),
            rng.gen_range(0..8usize),
            rng.gen_range(-2048i32..=2047),
        ),
        2 => Stmt::Store(rng.gen_range(0u32..256), rng.gen_range(0..8usize), rng.gen_range(0u32..3)),
        3 => Stmt::Load(rng.gen_range(0u32..256), rng.gen_range(0..8usize), rng.gen_range(0u32..5)),
        _ => Stmt::SkipIf(
            rng.gen_range(0..8usize),
            rng.gen_range(0..8usize),
            rng.gen_range(1..3usize),
            rng.gen::<bool>(),
        ),
    }
}

fn render(stmts: &[Stmt]) -> String {
    let mut src = String::from("li s0, 4096\n");
    // Give registers distinct initial values.
    for (i, r) in REGS.iter().enumerate() {
        src.push_str(&format!("li {r}, {}\n", (i as i64 + 1) * 1103515245 % 9973));
    }
    let mut label = 0usize;
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (label, stmts remaining)
    for stmt in stmts {
        match stmt {
            Stmt::AluR(op, rd, rs1, rs2) => {
                // Shift amounts must stay in range; mask the source first.
                let m = ALU_R[*op % ALU_R.len()];
                if matches!(m, "sll" | "srl" | "sra") {
                    src.push_str(&format!("andi {}, {}, 31\n", REGS[*rs2 % 8], REGS[*rs2 % 8]));
                }
                src.push_str(&format!(
                    "{m} {}, {}, {}\n",
                    REGS[*rd % 8],
                    REGS[*rs1 % 8],
                    REGS[*rs2 % 8]
                ));
            }
            Stmt::AluI(op, rd, rs1, imm) => {
                let m = ALU_I[*op % ALU_I.len()];
                let imm = if matches!(m, "slli" | "srli" | "srai") {
                    imm & 31
                } else {
                    (*imm).clamp(-2048, 2047)
                };
                src.push_str(&format!("{m} {}, {}, {imm}\n", REGS[*rd % 8], REGS[*rs1 % 8]));
            }
            Stmt::Store(slot, rs, w) => {
                let w = (*w % 3) as usize;
                let op = ["sb", "sh", "sw"][w];
                let align = [1u32, 2, 4][w];
                src.push_str(&format!("{op} {}, {}(s0)\n", REGS[*rs % 8], (slot % 256) * align));
            }
            Stmt::Load(slot, rd, w) => {
                let w = (*w % 5) as usize;
                let op = ["lb", "lh", "lw", "lbu", "lhu"][w];
                let align = [1u32, 2, 4, 1, 2][w];
                src.push_str(&format!("{op} {}, {}(s0)\n", REGS[*rd % 8], (slot % 256) * align));
            }
            Stmt::SkipIf(a, b, skip, eq) => {
                let op = if *eq { "beq" } else { "bne" };
                src.push_str(&format!("{op} {}, {}, lbl{label}\n", REGS[*a % 8], REGS[*b % 8]));
                pending.push((label, *skip));
                label += 1;
            }
        }
        // Close any branch whose skip window has elapsed.
        for entry in pending.iter_mut() {
            if entry.1 == 0 {
                src.push_str(&format!("lbl{}:\n", entry.0));
            }
            entry.1 = entry.1.wrapping_sub(1);
        }
        pending.retain(|e| e.1 != usize::MAX);
    }
    for (lbl, _) in pending {
        src.push_str(&format!("lbl{lbl}:\n"));
    }
    src.push_str("ebreak\n");
    src
}

/// The minimal counterexample proptest once found and persisted for this
/// suite (`differential.proptest-regressions`, since retired): a single
/// `add t0, t0, t0`, which shook out a writeback-forwarding bug. Pinned
/// explicitly so it outlives the harness that discovered it.
#[test]
fn regression_minimal_alu_r() {
    assert_equivalent(&render(&[Stmt::AluR(0, 0, 0, 0)]));
}

/// Random programs of ALU ops, memory accesses and forward branches
/// produce identical state on the pipeline and the golden model.
#[test]
fn random_programs_match_golden_model() {
    Prop::new("pipeline::random_programs_match_golden_model")
        .corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/differential.seeds"))
        .run(
            |rng| {
                let n = rng.gen_range(1usize..40);
                (0..n).map(|_| any_stmt(rng)).collect::<Vec<Stmt>>()
            },
            |stmts| check_equivalent(&render(stmts)),
        );
}
