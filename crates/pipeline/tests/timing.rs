//! Exact cycle-count tests for the 5-stage microarchitecture.
//!
//! Instruction `k` of a hazard-free straight-line program retires at cycle
//! `k + 5`, so an `N`-instruction program (including the final `ebreak`)
//! halts after `N + 4` cycles. Each hazard adds a precisely known penalty.

use ncpu_isa::asm::assemble;
use ncpu_pipeline::{FlatMem, Pipeline, PipelineConfig};

fn cycles_of(src: &str) -> u64 {
    let program = assemble(src).unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(8192));
    cpu.run(100_000).unwrap()
}

#[test]
fn straight_line_ipc_approaches_one() {
    // 4 independent ALU ops + ebreak = 5 instructions -> 9 cycles.
    let c = cycles_of(
        "addi t0, zero, 1
         addi t1, zero, 2
         addi t2, zero, 3
         addi t3, zero, 4
         ebreak",
    );
    assert_eq!(c, 9);
}

#[test]
fn alu_dependency_chains_need_no_stall() {
    // Full forwarding: back-to-back dependent ALU ops run at IPC 1.
    let c = cycles_of(
        "addi t0, zero, 1
         addi t0, t0, 1
         addi t0, t0, 1
         addi t0, t0, 1
         ebreak",
    );
    assert_eq!(c, 9);
}

#[test]
fn load_use_costs_exactly_one_cycle() {
    let base = cycles_of(
        "li t0, 4096
         lw t1, 0(t0)
         nop
         add t2, t1, t1
         ebreak",
    );
    let hazard = cycles_of(
        "li t0, 4096
         lw t1, 0(t0)
         add t2, t1, t1
         nop
         ebreak",
    );
    assert_eq!(hazard, base + 1, "moving the use adjacent to the load adds 1 stall");
}

#[test]
fn load_with_gap_forwards_from_wb() {
    // One instruction between load and use: MEM/WB forwarding, no stall.
    let near = cycles_of(
        "li t0, 4096
         lw t1, 0(t0)
         nop
         add t2, t1, t1
         ebreak",
    );
    let far = cycles_of(
        "li t0, 4096
         lw t1, 0(t0)
         nop
         nop
         add t2, t1, t1
         ebreak",
    );
    assert_eq!(far, near + 1, "only the extra nop costs a cycle");
}

#[test]
fn taken_branch_flushes_two_cycles() {
    let not_taken = cycles_of(
        "addi t0, zero, 1
         beq t0, zero, skip
         nop
   skip: ebreak",
    );
    // Taken branch with the same instruction count on the fall-through path.
    let taken = cycles_of(
        "addi t0, zero, 1
         bne t0, zero, skip
         nop
   skip: ebreak",
    );
    // Taken: skips the nop (1 fewer instruction) but pays a 2-cycle flush.
    assert_eq!(taken, not_taken - 1 + 2);
}

#[test]
fn jal_pays_redirect_penalty() {
    let c = cycles_of(
        "j next
   next: ebreak",
    );
    // 2 instructions + 4 fill + 2 flush = 8.
    assert_eq!(c, 8);
}

#[test]
fn mul_takes_configured_extra_cycles() {
    let cfg_fast = PipelineConfig { mul_extra_cycles: 0, ..Default::default() };
    let cfg_slow = PipelineConfig { mul_extra_cycles: 4, ..Default::default() };
    let program = assemble(
        "li t0, 7
         li t1, 6
         mul t2, t0, t1
         ebreak",
    )
    .unwrap();
    let mut fast = Pipeline::with_config(program.clone(), FlatMem::new(1024), cfg_fast);
    let mut slow = Pipeline::with_config(program, FlatMem::new(1024), cfg_slow);
    let cf = fast.run(1000).unwrap();
    let cs = slow.run(1000).unwrap();
    assert_eq!(cs, cf + 4);
    assert_eq!(slow.reg(ncpu_isa::Reg::T2), 42);
    assert_eq!(slow.stats().ex_stall_cycles, 4);
}

#[test]
fn l2_access_stalls_mem_stage() {
    let cfg = PipelineConfig { l2_extra_cycles: 8, ..Default::default() };
    let program = assemble(
        "li t0, 128
         sw_l2 t0, 0(t0)
         lw_l2 t1, 0(t0)
         ebreak",
    )
    .unwrap();
    let mut cpu = Pipeline::with_config(program, FlatMem::new(1024), cfg);
    let c = cpu.run(1000).unwrap();
    assert_eq!(cpu.reg(ncpu_isa::Reg::T1), 128, "write-through then read back");
    // 4 instructions + 4 fill + 2×8 L2 stalls = 24 cycles.
    assert_eq!(c, 24);
    assert_eq!(cpu.stats().mem_stall_cycles, 16);
}

#[test]
fn stats_account_every_cycle() {
    let program = assemble(
        "      li t0, 10
               li t1, 0
        loop:  add t1, t1, t0
               addi t0, t0, -1
               bnez t0, loop
               ebreak",
    )
    .unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(1024));
    cpu.run(10_000).unwrap();
    let s = cpu.stats();
    assert_eq!(cpu.reg(ncpu_isa::Reg::T1), 55);
    assert_eq!(s.retired, 2 + 10 * 3 + 1);
    // 9 taken branches flush 2 cycles each.
    assert_eq!(s.flush_cycles, 18);
    assert_eq!(s.cycles, s.retired + 4 + s.flush_cycles);
    assert!(s.ipc() < 1.0);
    assert_eq!(s.count("add"), 10);
    assert_eq!(s.count("bne"), 10);
}

#[test]
fn serializing_trans_bnn_parks_fetch() {
    let program = assemble(
        "li a0, 5
         trans_bnn
         addi a0, a0, 1
         ebreak",
    )
    .unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(1024));
    let ev = cpu.run_until_event(1000).unwrap();
    assert_eq!(ev, ncpu_isa::interp::Event::TransBnn);
    assert!(cpu.is_fetch_halted());
    assert_eq!(cpu.reg(ncpu_isa::Reg::A0), 5, "younger instruction was squashed");
    assert_eq!(cpu.pc(), 8, "resume point is after trans_bnn");
    // Resume: the addi and ebreak now execute.
    cpu.resume();
    cpu.run(1000).unwrap();
    assert_eq!(cpu.reg(ncpu_isa::Reg::A0), 6);
    assert!(cpu.is_halted());
}

#[test]
fn restart_preserves_architectural_state() {
    let program = assemble("li a0, 1\nebreak\nli a1, 2\nebreak").unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(1024));
    cpu.run(100).unwrap();
    assert_eq!(cpu.reg(ncpu_isa::Reg::A0), 1);
    cpu.restart_at(8);
    assert!(!cpu.is_halted());
    cpu.run(100).unwrap();
    assert_eq!(cpu.reg(ncpu_isa::Reg::A0), 1, "registers preserved across restart");
    assert_eq!(cpu.reg(ncpu_isa::Reg::A1), 2);
}

#[test]
fn pc_out_of_range_is_reported() {
    let program = assemble("nop").unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(64));
    let err = cpu.run(100).unwrap_err();
    assert!(matches!(err, ncpu_pipeline::PipeError::PcOutOfRange { pc: 4 }));
}

#[test]
fn retirement_trace_records_program_order() {
    let program = assemble("li a0, 1\naddi a0, a0, 2\nebreak").unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(64));
    cpu.set_trace_capacity(8);
    cpu.run(100).unwrap();
    let entries: Vec<_> = cpu.trace().entries().collect();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[0].pc, 0);
    assert_eq!(entries[1].pc, 4);
    assert_eq!(entries[1].wrote, Some((ncpu_isa::Reg::A0, 3)));
    assert!(entries[0].cycle < entries[1].cycle);
    assert!(cpu.trace().render().contains("ebreak"));
}

#[test]
fn trace_disabled_by_default() {
    let program = assemble("nop\nebreak").unwrap();
    let mut cpu = Pipeline::new(program, FlatMem::new(64));
    cpu.run(100).unwrap();
    assert!(cpu.trace().is_empty());
}
