//! Cycle-accurate 5-stage in-order RV32I pipeline.
//!
//! This is the standalone-CPU baseline of the NCPU paper: an in-house
//! 5-stage (IF/ID/EX/MEM/WB) in-order pipeline "similar to the RISC-V
//! Rocket core". The model is latch-level — each [`step`](Pipeline::step)
//! advances one clock cycle, moving instructions between stage latches —
//! with:
//!
//! * full operand forwarding (EX/MEM → EX and MEM/WB → EX),
//! * a one-cycle load-use interlock,
//! * branches and jumps resolved in EX with a two-cycle flush,
//! * a multi-cycle multiplier (the paper builds MUL from neuron adders),
//! * stalling `lw_l2`/`sw_l2` accesses to the shared L2,
//! * per-mnemonic retire counters feeding the Fig. 11(b) power breakdown.
//!
//! Architectural results are differential-tested against the functional
//! golden model in [`ncpu_isa::interp`].
//!
//! # Examples
//!
//! ```
//! use ncpu_isa::asm;
//! use ncpu_pipeline::{FlatMem, Pipeline};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble("li a0, 21\nadd a0, a0, a0\nebreak")?;
//! let mut cpu = Pipeline::new(program, FlatMem::new(4096));
//! cpu.run(1_000)?;
//! assert_eq!(cpu.reg(ncpu_isa::Reg::A0), 42);
//! assert!(cpu.stats().cycles >= cpu.stats().retired);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod memport;
mod stats;
mod trace;

pub use crate::core::{Pipeline, PipelineConfig, PipeError};
pub use memport::{FlatMem, MemFault, MemPort};
pub use stats::PipeStats;
pub use trace::{RetireTrace, TraceEntry};
