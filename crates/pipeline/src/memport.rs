//! Memory interface of the pipeline's MEM stage.

use std::error::Error;
use std::fmt;

/// A data-memory access fault (out of range / unmapped address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u32,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data memory fault at {:#x}", self.addr)
    }
}

impl Error for MemFault {}

/// The MEM-stage port: local data memory plus the write-through L2 window
/// used by the custom `sw_l2`/`lw_l2` instructions.
///
/// Implementations decide what "local" means — a flat array for the
/// standalone CPU ([`FlatMem`]), or the reconfigured weight/image SRAM
/// banks behind an address arbiter for the NCPU core.
pub trait MemPort {
    /// Reads `width` bytes (1, 2 or 4) little-endian at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn read_local(&mut self, addr: u32, width: u32) -> Result<u32, MemFault>;

    /// Writes the low `width` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn write_local(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MemFault>;

    /// Reads a word from the global L2 space.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn read_l2(&mut self, addr: u32) -> Result<u32, MemFault>;

    /// Writes a word to the global L2 space (write-through semantics).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn write_l2(&mut self, addr: u32, value: u32) -> Result<(), MemFault>;
}

/// Flat local memory plus flat L2 — the standalone CPU's view.
///
/// # Examples
///
/// ```
/// use ncpu_pipeline::{FlatMem, MemPort};
///
/// let mut m = FlatMem::new(64);
/// m.write_local(0, 4, 0xaabbccdd).unwrap();
/// assert_eq!(m.read_local(2, 2).unwrap(), 0xaabb);
/// ```
#[derive(Debug, Clone)]
pub struct FlatMem {
    local: Vec<u8>,
    l2: Vec<u8>,
    accesses: u64,
    l2_accesses: u64,
}

impl FlatMem {
    /// Default L2 capacity in bytes (matches the 64-KiB shared L2 of the
    /// two-core SoC).
    pub const DEFAULT_L2_BYTES: usize = 64 * 1024;

    /// Creates a flat memory with `local_bytes` of data memory.
    pub fn new(local_bytes: usize) -> FlatMem {
        FlatMem::with_l2(local_bytes, Self::DEFAULT_L2_BYTES)
    }

    /// Creates a flat memory with explicit local and L2 sizes.
    pub fn with_l2(local_bytes: usize, l2_bytes: usize) -> FlatMem {
        FlatMem { local: vec![0; local_bytes], l2: vec![0; l2_bytes], accesses: 0, l2_accesses: 0 }
    }

    /// Local memory contents.
    pub fn local(&self) -> &[u8] {
        &self.local
    }

    /// Mutable local memory (for preloading workload data).
    pub fn local_mut(&mut self) -> &mut [u8] {
        &mut self.local
    }

    /// L2 contents.
    pub fn l2(&self) -> &[u8] {
        &self.l2
    }

    /// Mutable L2 (for staging DMA data).
    pub fn l2_mut(&mut self) -> &mut [u8] {
        &mut self.l2
    }

    /// Number of local accesses performed through the port.
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of L2 accesses performed through the port.
    pub const fn l2_accesses(&self) -> u64 {
        self.l2_accesses
    }
}

impl MemPort for FlatMem {
    fn read_local(&mut self, addr: u32, width: u32) -> Result<u32, MemFault> {
        let end = addr as usize + width as usize;
        if end > self.local.len() {
            return Err(MemFault { addr });
        }
        self.accesses += 1;
        let mut raw = 0u32;
        for i in 0..width as usize {
            raw |= (self.local[addr as usize + i] as u32) << (8 * i);
        }
        Ok(raw)
    }

    fn write_local(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MemFault> {
        let end = addr as usize + width as usize;
        if end > self.local.len() {
            return Err(MemFault { addr });
        }
        self.accesses += 1;
        for i in 0..width as usize {
            self.local[addr as usize + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn read_l2(&mut self, addr: u32) -> Result<u32, MemFault> {
        let end = addr as usize + 4;
        if end > self.l2.len() {
            return Err(MemFault { addr });
        }
        self.l2_accesses += 1;
        Ok(u32::from_le_bytes(self.l2[addr as usize..end].try_into().expect("4 bytes")))
    }

    fn write_l2(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        let end = addr as usize + 4;
        if end > self.l2.len() {
            return Err(MemFault { addr });
        }
        self.l2_accesses += 1;
        self.l2[addr as usize..end].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_mem_bounds() {
        let mut m = FlatMem::with_l2(8, 8);
        assert!(m.read_local(5, 4).is_err());
        assert!(m.read_l2(5).is_err());
        assert!(m.write_local(4, 4, 0).is_ok());
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn l2_word_round_trip() {
        let mut m = FlatMem::with_l2(4, 16);
        m.write_l2(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_l2(8).unwrap(), 0x1234_5678);
        assert_eq!(m.l2_accesses(), 2);
    }
}
