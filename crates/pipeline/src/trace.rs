//! Retirement trace: a bounded ring buffer of the last N retired
//! instructions, for debugging generated programs.

use std::collections::VecDeque;
use std::fmt;

use ncpu_isa::{Instruction, Reg};

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle the instruction left the WB stage.
    pub cycle: u64,
    /// Its program counter.
    pub pc: u32,
    /// The instruction.
    pub instr: Instruction,
    /// Register writeback, if any.
    pub wrote: Option<(Reg, u32)>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:#06x}: {}", self.cycle, self.pc, self.instr)?;
        if let Some((reg, value)) = self.wrote {
            write!(f, "  ; {reg} = {value:#x}")?;
        }
        Ok(())
    }
}

/// Bounded retirement history (disabled at capacity 0 — the default — so
/// tracing costs nothing unless requested).
#[derive(Debug, Clone, Default)]
pub struct RetireTrace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl RetireTrace {
    /// Hard upper bound on the retained history. `new` clamps to this, so
    /// a caller passing `usize::MAX` gets a 4096-entry ring rather than an
    /// unbounded buffer that would swallow a long run's memory.
    pub const MAX_CAPACITY: usize = 4096;

    /// Creates a trace keeping the last `capacity` retirements, clamped
    /// to [`MAX_CAPACITY`](Self::MAX_CAPACITY).
    pub fn new(capacity: usize) -> RetireTrace {
        let capacity = capacity.min(Self::MAX_CAPACITY);
        RetireTrace { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Whether tracing is enabled.
    pub const fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one retirement (oldest entry evicted at capacity).
    pub fn push(&mut self, entry: TraceEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the retained trace, one line per retirement.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_isa::AluOp;

    fn entry(cycle: u64) -> TraceEntry {
        TraceEntry {
            cycle,
            pc: (cycle * 4) as u32,
            instr: Instruction::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 },
            wrote: Some((Reg::A0, cycle as u32)),
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut t = RetireTrace::new(3);
        for c in 0..10 {
            t.push(entry(c));
        }
        assert_eq!(t.len(), 3);
        let cycles: Vec<u64> = t.entries().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut t = RetireTrace::default();
        assert!(!t.is_enabled());
        t.push(entry(1));
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_is_hard_capped() {
        let mut t = RetireTrace::new(usize::MAX);
        for c in 0..(RetireTrace::MAX_CAPACITY as u64 + 100) {
            t.push(entry(c));
        }
        assert_eq!(t.len(), RetireTrace::MAX_CAPACITY);
        // Oldest entries were evicted, newest retained.
        assert_eq!(t.entries().last().map(|e| e.cycle), Some(RetireTrace::MAX_CAPACITY as u64 + 99));
    }

    #[test]
    fn render_is_readable() {
        let mut t = RetireTrace::new(2);
        t.push(entry(5));
        let s = t.render();
        assert!(s.contains("addi a0, a0, 1"), "{s}");
        assert!(s.contains("a0 = 0x5"), "{s}");
    }
}
