//! Pipeline performance counters.

use std::collections::HashMap;

/// Performance counters accumulated by the pipeline.
///
/// `per_instr` keys are the stable mnemonics from
/// [`Instruction::mnemonic`](ncpu_isa::Instruction::mnemonic); the Fig. 11(b)
/// per-instruction power breakdown is computed from these retire counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Elapsed clock cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Cycles lost to load-use interlocks.
    pub load_use_stalls: u64,
    /// Cycles lost to control-flow flushes (2 per taken redirect).
    pub flush_cycles: u64,
    /// Extra cycles spent waiting on multi-cycle EX operations (`mul`).
    pub ex_stall_cycles: u64,
    /// Extra cycles spent waiting on L2 accesses (`lw_l2`/`sw_l2`).
    pub mem_stall_cycles: u64,
    /// Retire count per mnemonic.
    pub per_instr: HashMap<&'static str, u64>,
}

impl PipeStats {
    /// Instructions per cycle (0 when no cycles have elapsed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Retire count for one mnemonic.
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.per_instr.get(mnemonic).copied().unwrap_or(0)
    }

    /// Adds another stats block (used when a core alternates modes).
    pub fn merge(&mut self, other: &PipeStats) {
        self.cycles += other.cycles;
        self.retired += other.retired;
        self.load_use_stalls += other.load_use_stalls;
        self.flush_cycles += other.flush_cycles;
        self.ex_stall_cycles += other.ex_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        for (k, v) in &other.per_instr {
            *self.per_instr.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(PipeStats::default().ipc(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PipeStats { cycles: 10, retired: 8, ..Default::default() };
        a.per_instr.insert("add", 3);
        let mut b = PipeStats { cycles: 5, retired: 5, ..Default::default() };
        b.per_instr.insert("add", 2);
        b.per_instr.insert("lw", 1);
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.count("add"), 5);
        assert_eq!(a.count("lw"), 1);
        assert_eq!(a.count("sw"), 0);
    }
}
