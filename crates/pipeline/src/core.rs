//! The latch-level 5-stage pipeline model.

use std::error::Error;
use std::fmt;

use ncpu_isa::interp::Event;
use ncpu_isa::{decode, DecodeError, Instruction, Reg};
use ncpu_obs::{EventKind as ObsEvent, Recorder, StallCause, TraceLevel};

use crate::memport::{MemFault, MemPort};
use crate::stats::PipeStats;
use crate::trace::{RetireTrace, TraceEntry};

/// Timing parameters of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Extra EX-stage cycles for `mul` (the paper realizes the multiplier
    /// from neuron adders, so it is multi-cycle).
    pub mul_extra_cycles: u64,
    /// Extra MEM-stage cycles for `lw_l2`/`sw_l2` (bus + shared-L2 access).
    pub l2_extra_cycles: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig { mul_extra_cycles: 2, l2_extra_cycles: 8 }
    }
}

/// Error raised by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeError {
    /// The fetched word failed to decode.
    Decode {
        /// Faulting program counter.
        pc: u32,
        /// Underlying decode failure.
        source: DecodeError,
    },
    /// The program counter left the instruction memory.
    PcOutOfRange {
        /// Faulting program counter.
        pc: u32,
    },
    /// A data access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// Underlying fault.
        source: MemFault,
    },
    /// [`Pipeline::run`] exhausted its cycle budget without halting.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for PipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeError::Decode { pc, source } => write!(f, "at pc={pc:#x}: {source}"),
            PipeError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside instruction memory"),
            PipeError::Mem { pc, source } => write!(f, "at pc={pc:#x}: {source}"),
            PipeError::CycleLimit { limit } => write!(f, "no halt within {limit} cycles"),
        }
    }
}

impl Error for PipeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipeError::Decode { source, .. } => Some(source),
            PipeError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    word: u32,
}

#[derive(Debug, Clone, Copy)]
struct Decoded {
    pc: u32,
    instr: Instruction,
}

/// Result of the EX stage, parked in the EX/MEM latch.
#[derive(Debug, Clone, Copy)]
struct Executed {
    pc: u32,
    instr: Instruction,
    dest: Option<Reg>,
    /// ALU result / link address / value to forward (not loads).
    value: u32,
    /// Effective address for memory operations.
    addr: u32,
    /// Store data (after forwarding).
    store_val: u32,
    /// Captured `rs1` for `mv_neu`.
    mv_value: u32,
    /// Remaining extra MEM cycles (L2 accesses).
    mem_remaining: u64,
}

#[derive(Debug, Clone, Copy)]
struct WbEntry {
    pc: u32,
    instr: Instruction,
    dest: Option<Reg>,
    value: u32,
    addr: u32,
    mv_value: u32,
}

/// Cycle-accurate 5-stage in-order RV32I pipeline over a [`MemPort`].
///
/// See the [crate documentation](crate) for the microarchitecture and an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct Pipeline<M> {
    imem: Vec<u32>,
    mem: M,
    regs: [u32; 32],
    pc: u32,
    if_id: Option<Fetched>,
    id_ex: Option<Decoded>,
    ex_mem: Option<Executed>,
    mem_wb: Option<WbEntry>,
    /// Cycles already spent stalling the current multi-cycle EX op.
    ex_busy: u64,
    fetch_halted: bool,
    halted: bool,
    stats: PipeStats,
    config: PipelineConfig,
    trace: RetireTrace,
    obs: Recorder,
    /// When set, the cycle of every actual L2 data access (the MEM-stage
    /// read/write, not the later WB retirement) is appended to
    /// `l2_touches`. Off by default — the log exists for engines that
    /// resolve shared-L2 port arbitration after the fact instead of
    /// observing access-counter deltas every cycle.
    l2_touch_log: bool,
    l2_touches: Vec<u64>,
}

impl<M: MemPort> Pipeline<M> {
    /// Creates a pipeline with `program` loaded at PC 0.
    pub fn new(program: Vec<u32>, mem: M) -> Pipeline<M> {
        Pipeline::with_config(program, mem, PipelineConfig::default())
    }

    /// Creates a pipeline with explicit timing parameters.
    pub fn with_config(program: Vec<u32>, mem: M, config: PipelineConfig) -> Pipeline<M> {
        Pipeline {
            imem: program,
            mem,
            regs: [0; 32],
            pc: 0,
            if_id: None,
            id_ex: None,
            ex_mem: None,
            mem_wb: None,
            ex_busy: 0,
            fetch_halted: false,
            halted: false,
            stats: PipeStats::default(),
            config,
            trace: RetireTrace::default(),
            obs: Recorder::disabled(),
            l2_touch_log: false,
            l2_touches: Vec::new(),
        }
    }

    /// Enables (or disables) the L2 touch log: while on, every MEM-stage
    /// L2 data access appends its pipeline cycle to an internal list,
    /// drained by [`Pipeline::take_l2_touches`]. The log observes the
    /// cycle the shared port is actually occupied — the WB-stage
    /// [`ncpu_obs::EventKind::L2Access`] instant retires one cycle later.
    pub fn set_l2_touch_log(&mut self, on: bool) {
        self.l2_touch_log = on;
        if !on {
            self.l2_touches.clear();
        }
    }

    /// Drains the cycles logged since the last call (empty unless
    /// [`Pipeline::set_l2_touch_log`] is on).
    pub fn take_l2_touches(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.l2_touches)
    }

    /// Folds an externally simulated execution's statistics into this
    /// pipeline's counters (including the per-mnemonic retire counts).
    /// Used by replaying engines that skip re-simulating an item whose
    /// outcome is already known: the architectural state is restored
    /// separately, and the monotonic counters advance by `delta` so the
    /// final stat snapshots match a full simulation byte for byte.
    pub fn apply_replay_stats(&mut self, delta: &PipeStats) {
        self.stats.cycles += delta.cycles;
        self.stats.retired += delta.retired;
        self.stats.load_use_stalls += delta.load_use_stalls;
        self.stats.flush_cycles += delta.flush_cycles;
        self.stats.ex_stall_cycles += delta.ex_stall_cycles;
        self.stats.mem_stall_cycles += delta.mem_stall_cycles;
        for (mnemonic, count) in &delta.per_instr {
            *self.stats.per_instr.entry(mnemonic).or_insert(0) += count;
        }
    }

    /// The architectural register file (x0–x31), for state fingerprints.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// Mutable register file, for replaying engines restoring a captured
    /// architectural state. Writes to x0 are the caller's bug — the
    /// pipeline itself never reads a restored nonzero x0 because every
    /// captured state was produced by execution, which keeps x0 zero.
    pub fn regs_mut(&mut self) -> &mut [u32; 32] {
        &mut self.regs
    }

    /// Enables event recording at `level`. Events are stamped with the
    /// pipeline-internal cycle count and core id 0; an embedding core
    /// re-bases them when it absorbs this shard.
    pub fn set_obs_level(&mut self, level: TraceLevel) {
        self.obs.set_level(level);
    }

    /// The pipeline's recorder shard.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable recorder shard, for an embedding core to absorb.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Enables retirement tracing, keeping the last `capacity` retired
    /// instructions (0 disables; disabled by default).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = RetireTrace::new(capacity);
    }

    /// The retirement trace (empty unless enabled).
    pub fn trace(&self) -> &RetireTrace {
        &self.trace
    }

    /// Reads register `reg` (always 0 for `x0`).
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes register `reg` (ignored for `x0`).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg != Reg::ZERO {
            self.regs[reg.index()] = value;
        }
    }

    /// Next fetch address.
    pub const fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether `ebreak` has retired.
    pub const fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether fetch is parked after a serializing instruction
    /// (`ebreak`, `trans_bnn`, `trans_cpu`).
    pub const fn is_fetch_halted(&self) -> bool {
        self.fetch_halted
    }

    /// Performance counters.
    pub fn stats(&self) -> &PipeStats {
        &self.stats
    }

    /// The data-memory port.
    pub fn mem(&self) -> &M {
        &self.mem
    }

    /// Mutable access to the data-memory port (preload workload data).
    pub fn mem_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Instruction memory contents.
    pub fn imem(&self) -> &[u32] {
        &self.imem
    }

    /// Replaces the instruction memory (new task on the same core).
    pub fn load_program(&mut self, program: Vec<u32>) {
        self.imem = program;
    }

    /// Restarts control flow at `pc`, clearing all stage latches and the
    /// halt flags. Architectural registers and memory are preserved.
    pub fn restart_at(&mut self, pc: u32) {
        self.pc = pc;
        self.if_id = None;
        self.id_ex = None;
        self.ex_mem = None;
        self.mem_wb = None;
        self.ex_busy = 0;
        self.fetch_halted = false;
        self.halted = false;
    }

    /// Resumes fetching after a serializing instruction parked the core
    /// (used by the NCPU core on a BNN→CPU mode switch).
    pub fn resume(&mut self) {
        self.fetch_halted = false;
        self.halted = false;
    }

    /// Whether all stage latches are empty (the pipeline has drained).
    pub fn is_drained(&self) -> bool {
        self.if_id.is_none() && self.id_ex.is_none() && self.ex_mem.is_none()
            && self.mem_wb.is_none()
    }

    fn resolve(&self, reg: Reg) -> u32 {
        if reg == Reg::ZERO {
            return 0;
        }
        // Forward from the instruction that just finished MEM this cycle
        // (EX/MEM result of the previous cycle), then from the retiring
        // instruction's value, then the register file.
        if let Some(wb) = &self.mem_wb {
            if wb.dest == Some(reg) {
                return wb.value;
            }
        }
        self.regs[reg.index()]
    }

    /// Advances one clock cycle.
    ///
    /// Returns the retirement event of the instruction (if any) that left
    /// the WB stage this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PipeError`] for decode failures, fetch out of range, or
    /// data-memory faults.
    pub fn step(&mut self) -> Result<Option<Event>, PipeError> {
        self.stats.cycles += 1;
        let mut squash_fetch = false;

        // Load-use hazard source: a load completing MEM *this* cycle.
        let loaduse_dest = match &self.ex_mem {
            Some(ex)
                if ex.mem_remaining == 0
                    && matches!(
                        ex.instr,
                        Instruction::Load { .. } | Instruction::LwL2 { .. }
                    ) =>
            {
                ex.dest
            }
            _ => None,
        };

        // ---- WB ----
        let mut event = None;
        if let Some(wb) = self.mem_wb.take() {
            if let Some(rd) = wb.dest {
                self.regs[rd.index()] = wb.value;
            }
            self.stats.retired += 1;
            *self.stats.per_instr.entry(wb.instr.mnemonic()).or_insert(0) += 1;
            if self.trace.is_enabled() {
                self.trace.push(TraceEntry {
                    cycle: self.stats.cycles,
                    pc: wb.pc,
                    instr: wb.instr,
                    wrote: wb.dest.map(|rd| (rd, wb.value)),
                });
            }
            if self.obs.wants_events() {
                self.obs.emit(0, self.stats.cycles, ObsEvent::Retire { pc: wb.pc });
                match wb.instr {
                    Instruction::SwL2 { .. } => self.obs.emit(
                        0,
                        self.stats.cycles,
                        ObsEvent::L2Access { addr: wb.addr, is_store: true },
                    ),
                    Instruction::LwL2 { .. } => self.obs.emit(
                        0,
                        self.stats.cycles,
                        ObsEvent::L2Access { addr: wb.addr, is_store: false },
                    ),
                    _ => {}
                }
            }
            let ev = match wb.instr {
                Instruction::Ebreak => {
                    self.halted = true;
                    Event::Halted
                }
                Instruction::Ecall => Event::EnvCall,
                Instruction::MvNeu { neuron, .. } => {
                    Event::MvNeu { value: wb.mv_value, neuron }
                }
                Instruction::TransBnn => Event::TransBnn,
                Instruction::TransCpu => Event::TransCpu,
                Instruction::TriggerBnn => Event::TriggerBnn,
                Instruction::SwL2 { .. } => Event::L2Access { addr: wb.addr, is_store: true },
                Instruction::LwL2 { .. } => Event::L2Access { addr: wb.addr, is_store: false },
                _ => Event::Retired,
            };
            event = Some(ev);
        }

        // ---- MEM ----
        if let Some(ex) = &mut self.ex_mem {
            if ex.mem_remaining > 0 {
                ex.mem_remaining -= 1;
                self.stats.mem_stall_cycles += 1;
                if self.obs.wants_events() {
                    self.obs.emit(
                        0,
                        self.stats.cycles,
                        ObsEvent::Stall { cause: StallCause::Mem },
                    );
                }
            } else {
                let ex = self.ex_mem.take().expect("checked above");
                let mut value = ex.value;
                match ex.instr {
                    Instruction::Load { op, .. } => {
                        let raw = self
                            .mem
                            .read_local(ex.addr, op.width())
                            .map_err(|source| PipeError::Mem { pc: ex.pc, source })?;
                        value = op.extend(raw);
                    }
                    Instruction::Store { op, .. } => {
                        self.mem
                            .write_local(ex.addr, op.width(), ex.store_val)
                            .map_err(|source| PipeError::Mem { pc: ex.pc, source })?;
                    }
                    Instruction::LwL2 { .. } => {
                        value = self
                            .mem
                            .read_l2(ex.addr)
                            .map_err(|source| PipeError::Mem { pc: ex.pc, source })?;
                        if self.l2_touch_log {
                            self.l2_touches.push(self.stats.cycles);
                        }
                    }
                    Instruction::SwL2 { .. } => {
                        self.mem
                            .write_l2(ex.addr, ex.store_val)
                            .map_err(|source| PipeError::Mem { pc: ex.pc, source })?;
                        if self.l2_touch_log {
                            self.l2_touches.push(self.stats.cycles);
                        }
                    }
                    _ => {}
                }
                self.mem_wb = Some(WbEntry {
                    pc: ex.pc,
                    instr: ex.instr,
                    dest: ex.dest,
                    value,
                    addr: ex.addr,
                    mv_value: ex.mv_value,
                });
            }
        }

        // ---- EX ----
        if self.ex_mem.is_none() {
            if let Some(id) = self.id_ex {
                let (s1, s2) = id.instr.sources();
                let load_use = loaduse_dest
                    .is_some_and(|d| s1 == Some(d) || s2 == Some(d));
                let mul_wait = matches!(id.instr, Instruction::Op { op: ncpu_isa::AluOp::Mul, .. })
                    && self.ex_busy < self.config.mul_extra_cycles;
                if load_use {
                    self.stats.load_use_stalls += 1;
                    if self.obs.wants_events() {
                        self.obs.emit(
                            0,
                            self.stats.cycles,
                            ObsEvent::Stall { cause: StallCause::LoadUse },
                        );
                    }
                } else if mul_wait {
                    self.ex_busy += 1;
                    self.stats.ex_stall_cycles += 1;
                    if self.obs.wants_events() {
                        self.obs.emit(
                            0,
                            self.stats.cycles,
                            ObsEvent::Stall { cause: StallCause::Ex },
                        );
                    }
                } else {
                    self.ex_busy = 0;
                    self.id_ex = None;
                    self.execute(id, &mut squash_fetch)?;
                }
            }
        }

        // ---- ID ----
        if self.id_ex.is_none() {
            if let Some(f) = self.if_id.take() {
                let instr = decode(f.word)
                    .map_err(|source| PipeError::Decode { pc: f.pc, source })?;
                self.id_ex = Some(Decoded { pc: f.pc, instr });
            }
        }

        // ---- IF ----
        if self.if_id.is_none() && !self.fetch_halted && !squash_fetch {
            let index = (self.pc / 4) as usize;
            if self.pc.is_multiple_of(4) && index < self.imem.len() {
                self.if_id = Some(Fetched { pc: self.pc, word: self.imem[index] });
                self.pc = self.pc.wrapping_add(4);
            } else if self.is_drained() && !self.halted {
                // Speculative over-fetch past the program end is squashed by
                // an in-flight `ebreak` or redirect; only a *drained*
                // pipeline with nowhere to fetch from has truly run off the
                // end of instruction memory.
                return Err(PipeError::PcOutOfRange { pc: self.pc });
            }
        }

        Ok(event)
    }

    /// Executes `id` in the EX stage, writing the EX/MEM latch and handling
    /// control flow.
    fn execute(&mut self, id: Decoded, squash_fetch: &mut bool) -> Result<(), PipeError> {
        let pc = id.pc;
        let mut dest = id.instr.dest();
        let mut value = 0u32;
        let mut addr = 0u32;
        let mut store_val = 0u32;
        let mut mv_value = 0u32;
        let mut mem_remaining = 0u64;

        let redirect = |this: &mut Self, target: u32, squash: &mut bool| {
            this.pc = target;
            this.if_id = None;
            this.stats.flush_cycles += 2;
            if this.obs.wants_events() {
                this.obs.emit(0, this.stats.cycles, ObsEvent::Stall { cause: StallCause::Flush });
            }
            *squash = true;
        };

        match id.instr {
            Instruction::Lui { imm, .. } => value = imm as u32,
            Instruction::Auipc { imm, .. } => value = pc.wrapping_add(imm as u32),
            Instruction::Jal { offset, .. } => {
                value = pc.wrapping_add(4);
                redirect(self, pc.wrapping_add(offset as u32), squash_fetch);
            }
            Instruction::Jalr { rs1, offset, .. } => {
                let target = self.resolve(rs1).wrapping_add(offset as u32) & !1;
                value = pc.wrapping_add(4);
                redirect(self, target, squash_fetch);
            }
            Instruction::Branch { op, rs1, rs2, offset } => {
                if op.taken(self.resolve(rs1), self.resolve(rs2)) {
                    redirect(self, pc.wrapping_add(offset as u32), squash_fetch);
                }
            }
            Instruction::Load { rs1, offset, .. } => {
                addr = self.resolve(rs1).wrapping_add(offset as u32);
            }
            Instruction::Store { rs1, rs2, offset, .. } => {
                addr = self.resolve(rs1).wrapping_add(offset as u32);
                store_val = self.resolve(rs2);
            }
            Instruction::OpImm { op, rs1, imm, .. } => {
                value = op.eval(self.resolve(rs1), imm as u32);
            }
            Instruction::Op { op, rs1, rs2, .. } => {
                value = op.eval(self.resolve(rs1), self.resolve(rs2));
            }
            Instruction::Ecall => {}
            Instruction::Ebreak | Instruction::TransBnn | Instruction::TransCpu => {
                // Serializing: park fetch; `pc` already points past us if no
                // younger fetch happened, so rewind to the precise resume
                // point.
                self.pc = pc.wrapping_add(4);
                self.if_id = None;
                self.fetch_halted = true;
                *squash_fetch = true;
            }
            Instruction::TriggerBnn => {}
            Instruction::MvNeu { rs1, .. } => {
                mv_value = self.resolve(rs1);
            }
            Instruction::SwL2 { rs1, rs2, offset } => {
                addr = self.resolve(rs1).wrapping_add(offset as u32);
                store_val = self.resolve(rs2);
                mem_remaining = self.config.l2_extra_cycles;
            }
            Instruction::LwL2 { rs1, offset, .. } => {
                addr = self.resolve(rs1).wrapping_add(offset as u32);
                mem_remaining = self.config.l2_extra_cycles;
            }
        }
        if dest == Some(Reg::ZERO) {
            dest = None;
        }
        self.ex_mem = Some(Executed {
            pc,
            instr: id.instr,
            dest,
            value,
            addr,
            store_val,
            mv_value,
            mem_remaining,
        });
        Ok(())
    }

    /// Runs until `ebreak` retires or `max_cycles` elapse; returns the
    /// number of cycles consumed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`PipeError::CycleLimit`] on budget exhaustion, or any error
    /// from [`step`](Self::step).
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, PipeError> {
        let start = self.stats.cycles;
        while !self.halted {
            if self.stats.cycles - start >= max_cycles {
                return Err(PipeError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        Ok(self.stats.cycles - start)
    }

    /// Runs until any of the mode-switch events (`trans_bnn`, `trans_cpu`,
    /// `trigger_bnn`) or `ebreak` retires; returns that event.
    ///
    /// # Errors
    ///
    /// Returns [`PipeError::CycleLimit`] on budget exhaustion, or any error
    /// from [`step`](Self::step).
    pub fn run_until_event(&mut self, max_cycles: u64) -> Result<Event, PipeError> {
        let start = self.stats.cycles;
        loop {
            if self.stats.cycles - start >= max_cycles {
                return Err(PipeError::CycleLimit { limit: max_cycles });
            }
            if let Some(ev) = self.step()? {
                match ev {
                    Event::Halted | Event::TransBnn | Event::TransCpu | Event::TriggerBnn => {
                        return Ok(ev)
                    }
                    _ => {}
                }
            }
        }
    }
}
