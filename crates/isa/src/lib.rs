//! RV32I instruction set plus the NCPU custom extension.
//!
//! This crate is the ISA layer of the NCPU reproduction (MICRO 2020). It
//! provides:
//!
//! * [`Reg`] — architectural register names with ABI aliases,
//! * [`Instruction`] — the 37 RV32I base integer instructions, the `MUL`
//!   instruction the paper recovers in the NeuroEX stage, `ECALL`/`EBREAK`,
//!   and the five customized NCPU instructions of Section V-B
//!   (`Mv_Neu`, `Trans_BNN`/`Trans_CPU`, `Sw_L2`, `Lw_L2`, `Trigger_BNN`),
//! * binary [`encode`](Instruction::encode) / [`decode`] with exact RV32I
//!   bit layouts,
//! * a two-pass [assembler](asm) with labels and common pseudo-instructions,
//!   plus a programmatic [`asm::ProgramBuilder`],
//! * a functional golden-model [interpreter](interp) used for differential
//!   testing of the cycle-accurate pipeline.
//!
//! # Examples
//!
//! ```
//! use ncpu_isa::{asm, decode, Instruction, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let words = asm::assemble(
//!     "loop: addi a0, a0, -1
//!            bnez a0, loop
//!            ebreak",
//! )?;
//! assert_eq!(words.len(), 3);
//! let first = decode(words[0])?;
//! assert_eq!(
//!     first,
//!     Instruction::OpImm { op: ncpu_isa::AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: -1 }
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod decode;
mod disasm;
mod encode;
mod error;
mod instr;
pub mod interp;
mod reg;

pub use decode::decode;
pub use error::{AsmError, DecodeError, EncodeError};
pub use instr::{AluOp, BranchOp, Instruction, LoadOp, StoreOp};
pub use reg::Reg;

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u32 = 4;
