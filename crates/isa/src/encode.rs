//! Instruction → 32-bit word encoding with exact RV32I bit layouts.

use crate::error::EncodeError;
use crate::instr::{AluOp, BranchOp, Instruction, LoadOp, StoreOp};
use crate::reg::Reg;

pub(crate) const OPC_LUI: u32 = 0b0110111;
pub(crate) const OPC_AUIPC: u32 = 0b0010111;
pub(crate) const OPC_JAL: u32 = 0b1101111;
pub(crate) const OPC_JALR: u32 = 0b1100111;
pub(crate) const OPC_BRANCH: u32 = 0b1100011;
pub(crate) const OPC_LOAD: u32 = 0b0000011;
pub(crate) const OPC_STORE: u32 = 0b0100011;
pub(crate) const OPC_OP_IMM: u32 = 0b0010011;
pub(crate) const OPC_OP: u32 = 0b0110011;
/// The paper modifies "the last 7 bits of the instruction field" to mark the
/// customized NCPU instructions, reusing the SYSTEM opcode space.
pub(crate) const OPC_SYSTEM: u32 = 0b1110011;

/// funct3 values in the SYSTEM space for the NCPU extension (see DESIGN.md).
pub(crate) const F3_SYS_BASE: u32 = 0b000;
pub(crate) const F3_MV_NEU: u32 = 0b001;
pub(crate) const F3_SW_L2: u32 = 0b010;
pub(crate) const F3_LW_L2: u32 = 0b011;
pub(crate) const F3_TRANS_BNN: u32 = 0b100;
pub(crate) const F3_TRIGGER_BNN: u32 = 0b101;
pub(crate) const F3_TRANS_CPU: u32 = 0b110;

fn rd_field(reg: Reg) -> u32 {
    (reg.index() as u32) << 7
}

fn rs1_field(reg: Reg) -> u32 {
    (reg.index() as u32) << 15
}

fn rs2_field(reg: Reg) -> u32 {
    (reg.index() as u32) << 20
}

fn funct3(f3: u32) -> u32 {
    f3 << 12
}

fn check_i_imm(mnemonic: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&imm) {
        Ok(((imm as u32) & 0xfff) << 20)
    } else {
        Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: imm as i64,
            min: -2048,
            max: 2047,
        })
    }
}

fn check_s_imm(mnemonic: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&imm) {
        let u = imm as u32;
        Ok((((u >> 5) & 0x7f) << 25) | ((u & 0x1f) << 7))
    } else {
        Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: imm as i64,
            min: -2048,
            max: 2047,
        })
    }
}

fn check_b_imm(mnemonic: &'static str, offset: i32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { mnemonic, offset });
    }
    if !(-4096..=4094).contains(&offset) {
        return Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: offset as i64,
            min: -4096,
            max: 4094,
        });
    }
    let u = offset as u32;
    Ok((((u >> 12) & 1) << 31)
        | (((u >> 5) & 0x3f) << 25)
        | (((u >> 1) & 0xf) << 8)
        | (((u >> 11) & 1) << 7))
}

fn check_j_imm(mnemonic: &'static str, offset: i32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { mnemonic, offset });
    }
    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
        return Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: offset as i64,
            min: -(1 << 20),
            max: (1 << 20) - 2,
        });
    }
    let u = offset as u32;
    Ok((((u >> 20) & 1) << 31)
        | (((u >> 1) & 0x3ff) << 21)
        | (((u >> 11) & 1) << 20)
        | (((u >> 12) & 0xff) << 12))
}

fn check_u_imm(mnemonic: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if imm & 0xfff != 0 {
        return Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: imm as i64,
            min: i32::MIN as i64,
            max: i32::MAX as i64 & !0xfff,
        });
    }
    Ok(imm as u32)
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub | AluOp::Mul => 0b000,
        AluOp::Sll => 0b001,
        AluOp::Slt => 0b010,
        AluOp::Sltu => 0b011,
        AluOp::Xor => 0b100,
        AluOp::Srl | AluOp::Sra => 0b101,
        AluOp::Or => 0b110,
        AluOp::And => 0b111,
    }
}

impl Instruction {
    /// Encodes the instruction into its 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if an immediate or offset does not fit its
    /// field, a control-flow offset is misaligned, or an `OpImm` carries an
    /// operation with no immediate form (`sub`, `mul`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ncpu_isa::{AluOp, Instruction, Reg};
    /// let add = Instruction::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
    /// assert_eq!(add.encode().unwrap(), 0x00c5_8533);
    /// ```
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let m = self.mnemonic();
        Ok(match *self {
            Instruction::Lui { rd, imm } => check_u_imm(m, imm)? | rd_field(rd) | OPC_LUI,
            Instruction::Auipc { rd, imm } => check_u_imm(m, imm)? | rd_field(rd) | OPC_AUIPC,
            Instruction::Jal { rd, offset } => check_j_imm(m, offset)? | rd_field(rd) | OPC_JAL,
            Instruction::Jalr { rd, rs1, offset } => {
                check_i_imm(m, offset)? | rs1_field(rs1) | funct3(0) | rd_field(rd) | OPC_JALR
            }
            Instruction::Branch { op, rs1, rs2, offset } => {
                let f3 = match op {
                    BranchOp::Eq => 0b000,
                    BranchOp::Ne => 0b001,
                    BranchOp::Lt => 0b100,
                    BranchOp::Ge => 0b101,
                    BranchOp::Ltu => 0b110,
                    BranchOp::Geu => 0b111,
                };
                check_b_imm(m, offset)? | rs2_field(rs2) | rs1_field(rs1) | funct3(f3) | OPC_BRANCH
            }
            Instruction::Load { op, rd, rs1, offset } => {
                let f3 = match op {
                    LoadOp::Byte => 0b000,
                    LoadOp::Half => 0b001,
                    LoadOp::Word => 0b010,
                    LoadOp::ByteU => 0b100,
                    LoadOp::HalfU => 0b101,
                };
                check_i_imm(m, offset)? | rs1_field(rs1) | funct3(f3) | rd_field(rd) | OPC_LOAD
            }
            Instruction::Store { op, rs1, rs2, offset } => {
                let f3 = match op {
                    StoreOp::Byte => 0b000,
                    StoreOp::Half => 0b001,
                    StoreOp::Word => 0b010,
                };
                check_s_imm(m, offset)? | rs2_field(rs2) | rs1_field(rs1) | funct3(f3) | OPC_STORE
            }
            Instruction::OpImm { op, rd, rs1, imm } => {
                if !op.has_immediate_form() {
                    return Err(EncodeError::NoImmediateForm { mnemonic: m });
                }
                let base = rs1_field(rs1) | funct3(alu_funct3(op)) | rd_field(rd) | OPC_OP_IMM;
                if op.is_shift() {
                    if !(0..=31).contains(&imm) {
                        return Err(EncodeError::ImmediateOutOfRange {
                            mnemonic: m,
                            value: imm as i64,
                            min: 0,
                            max: 31,
                        });
                    }
                    let funct7 = if op == AluOp::Sra { 0b0100000 << 25 } else { 0 };
                    base | ((imm as u32) << 20) | funct7
                } else {
                    base | check_i_imm(m, imm)?
                }
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                let funct7 = match op {
                    AluOp::Sub | AluOp::Sra => 0b0100000 << 25,
                    AluOp::Mul => 0b0000001 << 25,
                    _ => 0,
                };
                funct7
                    | rs2_field(rs2)
                    | rs1_field(rs1)
                    | funct3(alu_funct3(op))
                    | rd_field(rd)
                    | OPC_OP
            }
            Instruction::Ecall => OPC_SYSTEM,
            Instruction::Ebreak => (1 << 20) | OPC_SYSTEM,
            Instruction::MvNeu { rs1, neuron } => {
                if neuron >= 4096 {
                    return Err(EncodeError::ImmediateOutOfRange {
                        mnemonic: m,
                        value: neuron as i64,
                        min: 0,
                        max: 4095,
                    });
                }
                ((neuron as u32) << 20) | rs1_field(rs1) | funct3(F3_MV_NEU) | OPC_SYSTEM
            }
            Instruction::TransBnn => funct3(F3_TRANS_BNN) | OPC_SYSTEM,
            Instruction::TransCpu => funct3(F3_TRANS_CPU) | OPC_SYSTEM,
            Instruction::TriggerBnn => funct3(F3_TRIGGER_BNN) | OPC_SYSTEM,
            Instruction::SwL2 { rs1, rs2, offset } => {
                check_s_imm(m, offset)? | rs2_field(rs2) | rs1_field(rs1) | funct3(F3_SW_L2)
                    | OPC_SYSTEM
            }
            Instruction::LwL2 { rd, rs1, offset } => {
                check_i_imm(m, offset)? | rs1_field(rs1) | funct3(F3_LW_L2) | rd_field(rd)
                    | OPC_SYSTEM
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_golden_encodings() {
        // Golden words checked against the RISC-V spec examples.
        let cases: &[(Instruction, u32)] = &[
            (Instruction::Lui { rd: Reg::A0, imm: 0x12345 << 12 }, 0x1234_5537),
            (Instruction::Jal { rd: Reg::RA, offset: 8 }, 0x0080_00ef),
            (
                Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
                0x0000_8067, // ret
            ),
            (
                Instruction::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 },
                0x0000_0013, // nop
            ),
            (
                Instruction::Load { op: LoadOp::Word, rd: Reg::A0, rs1: Reg::SP, offset: 4 },
                0x0041_2503,
            ),
            (
                Instruction::Store { op: StoreOp::Word, rs1: Reg::SP, rs2: Reg::A0, offset: 4 },
                0x00a1_2223,
            ),
            (Instruction::Ecall, 0x0000_0073),
            (Instruction::Ebreak, 0x0010_0073),
            (
                Instruction::Op { op: AluOp::Mul, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 },
                0x02c5_8533,
            ),
        ];
        for (instr, want) in cases {
            assert_eq!(instr.encode().unwrap(), *want, "{instr:?}");
        }
    }

    #[test]
    fn negative_branch_offset_encodes() {
        let b = Instruction::Branch { op: BranchOp::Ne, rs1: Reg::A0, rs2: Reg::ZERO, offset: -4 };
        // bne a0, zero, -4 => 0xfe051ee3
        assert_eq!(b.encode().unwrap(), 0xfe05_1ee3);
    }

    #[test]
    fn immediate_range_checks() {
        let too_big = Instruction::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 2048 };
        assert!(matches!(too_big.encode(), Err(EncodeError::ImmediateOutOfRange { .. })));
        let shamt = Instruction::OpImm { op: AluOp::Sll, rd: Reg::A0, rs1: Reg::A0, imm: 32 };
        assert!(shamt.encode().is_err());
        let odd = Instruction::Jal { rd: Reg::ZERO, offset: 3 };
        assert!(matches!(odd.encode(), Err(EncodeError::MisalignedOffset { .. })));
        let lui = Instruction::Lui { rd: Reg::A0, imm: 0x123 };
        assert!(lui.encode().is_err(), "low 12 bits must be zero");
    }

    #[test]
    fn sub_has_no_immediate_form() {
        let i = Instruction::OpImm { op: AluOp::Sub, rd: Reg::A0, rs1: Reg::A0, imm: 1 };
        assert_eq!(i.encode(), Err(EncodeError::NoImmediateForm { mnemonic: "sub" }));
    }

    #[test]
    fn custom_instructions_use_system_opcode() {
        for i in [
            Instruction::TransBnn,
            Instruction::TransCpu,
            Instruction::TriggerBnn,
            Instruction::MvNeu { rs1: Reg::A0, neuron: 3 },
            Instruction::SwL2 { rs1: Reg::A0, rs2: Reg::A1, offset: 0 },
            Instruction::LwL2 { rd: Reg::A0, rs1: Reg::A1, offset: 0 },
        ] {
            assert_eq!(i.encode().unwrap() & 0x7f, OPC_SYSTEM, "{i:?}");
        }
    }

    #[test]
    fn mv_neu_neuron_bounds() {
        assert!(Instruction::MvNeu { rs1: Reg::A0, neuron: 4095 }.encode().is_ok());
        assert!(Instruction::MvNeu { rs1: Reg::A0, neuron: 4096 }.encode().is_err());
    }
}
