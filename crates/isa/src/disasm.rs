//! Textual disassembly via the `Display` impl on [`Instruction`].

use std::fmt;

use crate::instr::Instruction;

impl fmt::Display for Instruction {
    /// Formats the instruction in standard assembler syntax, with
    /// PC-relative offsets shown as `.+N` / `.-N`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Instruction::Lui { rd, imm } | Instruction::Auipc { rd, imm } => {
                write!(f, "{m} {rd}, {:#x}", (imm as u32) >> 12)
            }
            Instruction::Jal { rd, offset } => write!(f, "{m} {rd}, {}", RelOffset(offset)),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "{m} {rd}, {offset}({rs1})"),
            Instruction::Branch { rs1, rs2, offset, .. } => {
                write!(f, "{m} {rs1}, {rs2}, {}", RelOffset(offset))
            }
            Instruction::Load { rd, rs1, offset, .. } => write!(f, "{m} {rd}, {offset}({rs1})"),
            Instruction::Store { rs1, rs2, offset, .. } => write!(f, "{m} {rs2}, {offset}({rs1})"),
            Instruction::OpImm { rd, rs1, imm, .. } => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Instruction::Op { rd, rs1, rs2, .. } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Instruction::Ecall | Instruction::Ebreak => f.write_str(m),
            Instruction::MvNeu { rs1, neuron } => write!(f, "{m} {rs1}, {neuron}"),
            Instruction::TransBnn | Instruction::TransCpu | Instruction::TriggerBnn => {
                f.write_str(m)
            }
            Instruction::SwL2 { rs1, rs2, offset } => write!(f, "{m} {rs2}, {offset}({rs1})"),
            Instruction::LwL2 { rd, rs1, offset } => write!(f, "{m} {rd}, {offset}({rs1})"),
        }
    }
}

struct RelOffset(i32);

impl fmt::Display for RelOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0 {
            write!(f, ".-{}", -(self.0 as i64))
        } else {
            write!(f, ".+{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::instr::{AluOp, BranchOp, Instruction, LoadOp, StoreOp};
    use crate::reg::Reg;

    #[test]
    fn display_formats() {
        let cases: &[(Instruction, &str)] = &[
            (Instruction::Lui { rd: Reg::A0, imm: 0x12345 << 12 }, "lui a0, 0x12345"),
            (Instruction::Jal { rd: Reg::RA, offset: -8 }, "jal ra, .-8"),
            (
                Instruction::Branch {
                    op: BranchOp::Ltu,
                    rs1: Reg::T0,
                    rs2: Reg::T1,
                    offset: 16,
                },
                "bltu t0, t1, .+16",
            ),
            (
                Instruction::Load { op: LoadOp::HalfU, rd: Reg::A0, rs1: Reg::SP, offset: -4 },
                "lhu a0, -4(sp)",
            ),
            (
                Instruction::Store { op: StoreOp::Word, rs1: Reg::SP, rs2: Reg::A0, offset: 8 },
                "sw a0, 8(sp)",
            ),
            (
                Instruction::OpImm { op: AluOp::And, rd: Reg::A0, rs1: Reg::A1, imm: 255 },
                "andi a0, a1, 255",
            ),
            (
                Instruction::Op { op: AluOp::Mul, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 },
                "mul a0, a1, a2",
            ),
            (Instruction::TransBnn, "trans_bnn"),
            (Instruction::MvNeu { rs1: Reg::S2, neuron: 5 }, "mv_neu s2, 5"),
            (
                Instruction::SwL2 { rs1: Reg::A0, rs2: Reg::A1, offset: 64 },
                "sw_l2 a1, 64(a0)",
            ),
        ];
        for (instr, want) in cases {
            assert_eq!(instr.to_string(), *want);
        }
    }
}
