use std::fmt;
use std::str::FromStr;

use crate::error::AsmError;

/// One of the 32 RV32I integer registers.
///
/// The inner index is guaranteed to be in `0..32`. Registers display as
/// their ABI names (`zero`, `ra`, `sp`, …) and parse from either ABI names
/// or the `x0`–`x31` form.
///
/// # Examples
///
/// ```
/// use ncpu_isa::Reg;
///
/// assert_eq!(Reg::A0.to_string(), "a0");
/// assert_eq!("x10".parse::<Reg>().unwrap(), Reg::A0);
/// assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `x8`.
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument / return value `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument / return value `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument `x17`.
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ncpu_isa::Reg;
    /// assert_eq!(Reg::new(10), Some(Reg::A0));
    /// assert_eq!(Reg::new(32), None);
    /// ```
    pub const fn new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register from the low five bits of an encoded field.
    pub(crate) const fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register's architectural index in `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The ABI name of the register (for example `"a0"` for `x10`).
    pub const fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl From<Reg> for u8 {
    fn from(reg: Reg) -> u8 {
        reg.0
    }
}

impl FromStr for Reg {
    type Err = AsmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(idx) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(idx as u8));
        }
        // Accept x0..x31 and the alternate "fp" alias for s0.
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(idx) = num.parse::<u8>() {
                if let Some(reg) = Reg::new(idx) {
                    return Ok(reg);
                }
            }
        }
        Err(AsmError::unknown_register(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Reg::new(31), Some(Reg::T6));
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn abi_names_round_trip_through_parse() {
        for reg in Reg::all() {
            let parsed: Reg = reg.abi_name().parse().unwrap();
            assert_eq!(parsed, reg);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for (idx, reg) in Reg::all().enumerate() {
            let parsed: Reg = format!("x{idx}").parse().unwrap();
            assert_eq!(parsed, reg);
        }
    }

    #[test]
    fn fp_alias_is_s0() {
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
    }

    #[test]
    fn bad_names_error() {
        assert!("x32".parse::<Reg>().is_err());
        assert!("q7".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn display_is_abi_name() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::T6.to_string(), "t6");
    }
}
