use std::error::Error;
use std::fmt;

/// Error produced when an [`Instruction`](crate::Instruction) cannot be
/// encoded into a 32-bit word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit the instruction format.
    ImmediateOutOfRange {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// The immediate value supplied.
        value: i64,
        /// Inclusive lower bound of the representable range.
        min: i64,
        /// Inclusive upper bound of the representable range.
        max: i64,
    },
    /// A branch or jump offset is not 2-byte aligned.
    MisalignedOffset {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// The offset supplied.
        offset: i32,
    },
    /// The operation has no immediate form (`sub`, `mul`).
    NoImmediateForm {
        /// Mnemonic of the register-register form.
        mnemonic: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateOutOfRange { mnemonic, value, min, max } => write!(
                f,
                "immediate {value} out of range [{min}, {max}] for `{mnemonic}`"
            ),
            EncodeError::MisalignedOffset { mnemonic, offset } => {
                write!(f, "offset {offset} for `{mnemonic}` is not 2-byte aligned")
            }
            EncodeError::NoImmediateForm { mnemonic } => {
                write!(f, "`{mnemonic}` has no immediate form")
            }
        }
    }
}

impl Error for EncodeError {}

/// Error produced when a 32-bit word is not a recognized instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The low seven bits select no supported opcode.
    UnknownOpcode {
        /// The full word.
        word: u32,
        /// The opcode field (bits 6:0).
        opcode: u8,
    },
    /// The opcode is known but funct3/funct7 select no supported variant.
    UnknownFunction {
        /// The full word.
        word: u32,
    },
}

impl DecodeError {
    /// The instruction word that failed to decode.
    pub const fn word(self) -> u32 {
        match self {
            DecodeError::UnknownOpcode { word, .. } | DecodeError::UnknownFunction { word } => word,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { word, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::UnknownFunction { word } => {
                write!(f, "unknown function encoding in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Error produced by the [assembler](crate::asm).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    pub(crate) fn unknown_register(name: &str) -> AsmError {
        AsmError::new(0, format!("unknown register `{name}`"))
    }

    pub(crate) fn at_line(mut self, line: usize) -> AsmError {
        if self.line == 0 {
            self.line = line;
        }
        self
    }

    /// 1-based source line the error was detected on (0 if unknown).
    pub const fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error on line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(err: EncodeError) -> AsmError {
        AsmError::new(0, err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EncodeError::ImmediateOutOfRange { mnemonic: "addi", value: 5000, min: -2048, max: 2047 };
        assert!(e.to_string().contains("addi"));
        assert!(e.to_string().contains("5000"));

        let d = DecodeError::UnknownOpcode { word: 0x7f, opcode: 0x7f };
        assert!(d.to_string().contains("0x7f"));
        assert_eq!(d.word(), 0x7f);

        let a = AsmError::new(3, "bad things");
        assert_eq!(a.line(), 3);
        assert!(a.to_string().contains("line 3"));
    }

    #[test]
    fn at_line_only_sets_unknown_lines() {
        let a = AsmError::new(0, "x").at_line(7);
        assert_eq!(a.line(), 7);
        let b = AsmError::new(2, "x").at_line(7);
        assert_eq!(b.line(), 2);
    }
}
