use crate::reg::Reg;

/// Arithmetic/logic operation selector shared by `OP` and `OP-IMM` formats.
///
/// `Sub` and `Mul` are only valid in the register-register [`Instruction::Op`]
/// form; [`Instruction::encode`](crate::Instruction::encode) rejects them in
/// the immediate form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`). Also subtraction when used as `Sub`.
    Add,
    /// Subtraction (`sub`, register form only).
    Sub,
    /// Logical left shift (`sll`/`slli`).
    Sll,
    /// Signed set-less-than (`slt`/`slti`).
    Slt,
    /// Unsigned set-less-than (`sltu`/`sltiu`).
    Sltu,
    /// Bitwise exclusive or (`xor`/`xori`).
    Xor,
    /// Logical right shift (`srl`/`srli`).
    Srl,
    /// Arithmetic right shift (`sra`/`srai`).
    Sra,
    /// Bitwise or (`or`/`ori`).
    Or,
    /// Bitwise and (`and`/`andi`).
    And,
    /// Multiplication low word (`mul`, register form only; the paper recovers
    /// a multiplier in the NeuroEX stage from the neuron adders).
    Mul,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit operands.
    ///
    /// Shift amounts use the low five bits of `b`, as RV32I specifies.
    ///
    /// # Examples
    ///
    /// ```
    /// use ncpu_isa::AluOp;
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xffff_ffff);
    /// ```
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 0x1f),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 0x1f),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }

    /// Whether the operation exists in the immediate (`OP-IMM`) form.
    pub const fn has_immediate_form(self) -> bool {
        !matches!(self, AluOp::Sub | AluOp::Mul)
    }

    /// Whether the operation is a shift (immediate form uses a 5-bit shamt).
    pub const fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }
}

/// Conditional-branch comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal (`beq`).
    Eq,
    /// Branch if not equal (`bne`).
    Ne,
    /// Branch if less than, signed (`blt`).
    Lt,
    /// Branch if greater or equal, signed (`bge`).
    Ge,
    /// Branch if less than, unsigned (`bltu`).
    Ltu,
    /// Branch if greater or equal, unsigned (`bgeu`).
    Geu,
}

impl BranchOp {
    /// Evaluates the branch condition.
    ///
    /// # Examples
    ///
    /// ```
    /// use ncpu_isa::BranchOp;
    /// assert!(BranchOp::Lt.taken(u32::MAX, 0)); // -1 < 0 signed
    /// assert!(!BranchOp::Ltu.taken(u32::MAX, 0));
    /// ```
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i32) < (b as i32),
            BranchOp::Ge => (a as i32) >= (b as i32),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }
}

/// Load width/extension selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign extended (`lb`).
    Byte,
    /// Load halfword, sign extended (`lh`).
    Half,
    /// Load word (`lw`).
    Word,
    /// Load byte, zero extended (`lbu`).
    ByteU,
    /// Load halfword, zero extended (`lhu`).
    HalfU,
}

impl LoadOp {
    /// Number of bytes accessed.
    pub const fn width(self) -> u32 {
        match self {
            LoadOp::Byte | LoadOp::ByteU => 1,
            LoadOp::Half | LoadOp::HalfU => 2,
            LoadOp::Word => 4,
        }
    }

    /// Extends a raw little-endian value of [`width`](Self::width) bytes to 32 bits.
    pub fn extend(self, raw: u32) -> u32 {
        match self {
            LoadOp::Byte => raw as u8 as i8 as i32 as u32,
            LoadOp::Half => raw as u16 as i16 as i32 as u32,
            LoadOp::Word => raw,
            LoadOp::ByteU => raw as u8 as u32,
            LoadOp::HalfU => raw as u16 as u32,
        }
    }
}

/// Store width selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte (`sb`).
    Byte,
    /// Store halfword (`sh`).
    Half,
    /// Store word (`sw`).
    Word,
}

impl StoreOp {
    /// Number of bytes written.
    pub const fn width(self) -> u32 {
        match self {
            StoreOp::Byte => 1,
            StoreOp::Half => 2,
            StoreOp::Word => 4,
        }
    }
}

/// A decoded instruction: RV32I base, `MUL`, and the NCPU custom extension.
///
/// Immediates are stored sign-extended. Branch and jump offsets are relative
/// to the instruction's own address, in bytes (always even; the encoder
/// enforces the ISA's 2-byte alignment and rejects out-of-range values).
///
/// The five customized NCPU instructions (paper Section V-B) are encoded in
/// the `SYSTEM` opcode space (`0b1110011`), distinguished by `funct3`; see
/// `DESIGN.md` for the exact layout this reproduction assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Load upper immediate: `rd = imm` where `imm` has its low 12 bits zero.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Full 32-bit value with low 12 bits zero.
        imm: i32,
    },
    /// Add upper immediate to PC: `rd = pc + imm`.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Full 32-bit value with low 12 bits zero.
        imm: i32,
    },
    /// Jump and link: `rd = pc + 4; pc += offset`.
    Jal {
        /// Link register (often `ra` or `zero`).
        rd: Reg,
        /// Signed byte offset from this instruction (±1 MiB, even).
        offset: i32,
    },
    /// Jump and link register: `rd = pc + 4; pc = (rs1 + offset) & !1`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch: `if cond(rs1, rs2) pc += offset`.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// Left operand register.
        rs1: Reg,
        /// Right operand register.
        rs2: Reg,
        /// Signed byte offset from this instruction (±4 KiB, even).
        offset: i32,
    },
    /// Memory load: `rd = ext(mem[rs1 + offset])`.
    Load {
        /// Width and extension.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Memory store: `mem[rs1 + offset] = rs2`.
    Store {
        /// Width.
        op: StoreOp,
        /// Base address register.
        rs1: Reg,
        /// Source data register.
        rs2: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    OpImm {
        /// Operation (must satisfy [`AluOp::has_immediate_form`]).
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed 12-bit immediate (5-bit shamt for shifts).
        imm: i32,
    },
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left source register.
        rs1: Reg,
        /// Right source register.
        rs2: Reg,
    },
    /// Environment call. The simulators treat it as a host hook.
    Ecall,
    /// Breakpoint. The simulators treat it as "halt".
    Ebreak,
    /// NCPU `Mv_Neu`: move `rs1` into transition neuron `neuron`
    /// (configuration storage read by the next BNN run).
    MvNeu {
        /// Source register holding the configuration value.
        rs1: Reg,
        /// Transition-neuron index (0..4096).
        neuron: u16,
    },
    /// NCPU `Trans_BNN`: reconfigure this core from CPU mode to BNN mode.
    TransBnn,
    /// NCPU `Trans_CPU`: reconfigure this core from BNN mode back to CPU
    /// mode (issued by the sequence controller at end of inference).
    TransCpu,
    /// NCPU `Trigger_BNN`: start a *separate* BNN accelerator core, i.e. the
    /// conventional heterogeneous offload used for the baseline evaluation.
    TriggerBnn,
    /// NCPU `Sw_L2`: write-through word store directly to the global L2.
    SwL2 {
        /// Base address register (L2 address space).
        rs1: Reg,
        /// Source data register.
        rs2: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// NCPU `Lw_L2`: word load directly from the global L2.
    LwL2 {
        /// Destination register.
        rd: Reg,
        /// Base address register (L2 address space).
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
}

impl Instruction {
    /// The register written by this instruction, if any (never `x0`).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instruction::Lui { rd, .. }
            | Instruction::Auipc { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::OpImm { rd, .. }
            | Instruction::Op { rd, .. }
            | Instruction::LwL2 { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// The registers read by this instruction (up to two).
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Instruction::Jalr { rs1, .. }
            | Instruction::Load { rs1, .. }
            | Instruction::OpImm { rs1, .. }
            | Instruction::LwL2 { rs1, .. } => (Some(rs1), None),
            Instruction::MvNeu { rs1, .. } => (Some(rs1), None),
            Instruction::Branch { rs1, rs2, .. }
            | Instruction::Store { rs1, rs2, .. }
            | Instruction::Op { rs1, rs2, .. }
            | Instruction::SwL2 { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            _ => (None, None),
        }
    }

    /// Whether this is one of the five customized NCPU instructions.
    pub const fn is_ncpu_custom(&self) -> bool {
        matches!(
            self,
            Instruction::MvNeu { .. }
                | Instruction::TransBnn
                | Instruction::TransCpu
                | Instruction::TriggerBnn
                | Instruction::SwL2 { .. }
                | Instruction::LwL2 { .. }
        )
    }

    /// Whether the instruction accesses data memory (local or L2).
    pub const fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::SwL2 { .. }
                | Instruction::LwL2 { .. }
        )
    }

    /// Whether the instruction can redirect the program counter.
    pub const fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Jal { .. } | Instruction::Jalr { .. } | Instruction::Branch { .. }
        )
    }

    /// A short stable mnemonic, e.g. `"add"`, `"bltu"`, `"trans_bnn"`.
    ///
    /// Used as the key for per-instruction statistics and the Fig. 11
    /// per-instruction power table.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Lui { .. } => "lui",
            Instruction::Auipc { .. } => "auipc",
            Instruction::Jal { .. } => "jal",
            Instruction::Jalr { .. } => "jalr",
            Instruction::Branch { op, .. } => match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            },
            Instruction::Load { op, .. } => match op {
                LoadOp::Byte => "lb",
                LoadOp::Half => "lh",
                LoadOp::Word => "lw",
                LoadOp::ByteU => "lbu",
                LoadOp::HalfU => "lhu",
            },
            Instruction::Store { op, .. } => match op {
                StoreOp::Byte => "sb",
                StoreOp::Half => "sh",
                StoreOp::Word => "sw",
            },
            Instruction::OpImm { op, .. } => match op {
                AluOp::Add => "addi",
                AluOp::Sll => "slli",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                // No immediate form exists; the encoder rejects these, but
                // `mnemonic` must stay total for error reporting.
                AluOp::Sub => "sub",
                AluOp::Mul => "mul",
            },
            Instruction::Op { op, .. } => match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Sll => "sll",
                AluOp::Slt => "slt",
                AluOp::Sltu => "sltu",
                AluOp::Xor => "xor",
                AluOp::Srl => "srl",
                AluOp::Sra => "sra",
                AluOp::Or => "or",
                AluOp::And => "and",
                AluOp::Mul => "mul",
            },
            Instruction::Ecall => "ecall",
            Instruction::Ebreak => "ebreak",
            Instruction::MvNeu { .. } => "mv_neu",
            Instruction::TransBnn => "trans_bnn",
            Instruction::TransCpu => "trans_cpu",
            Instruction::TriggerBnn => "trigger_bnn",
            Instruction::SwL2 { .. } => "sw_l2",
            Instruction::LwL2 { .. } => "lw_l2",
        }
    }

    /// The 37 RV32I base-instruction mnemonics in the order of paper Fig. 11(b).
    pub const RV32I_BASE_MNEMONICS: [&'static str; 37] = [
        "lui", "auipc", "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu", "lb", "lh",
        "lw", "lbu", "lhu", "sb", "sh", "sw", "addi", "slti", "sltiu", "xori", "ori", "andi",
        "slli", "srli", "srai", "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
        "and",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_matches_reference_semantics() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::Sll.eval(1, 33), 2, "shift amount masked to 5 bits");
        assert_eq!(AluOp::Slt.eval(u32::MAX, 0), 1);
        assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 4), 0x0800_0000);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 4), 0xf800_0000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Mul.eval(0x1_0000, 0x1_0000), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchOp::Eq.taken(7, 7));
        assert!(BranchOp::Ne.taken(7, 8));
        assert!(BranchOp::Ge.taken(0, u32::MAX), "0 >= -1 signed");
        assert!(BranchOp::Geu.taken(u32::MAX, 0));
        assert!(!BranchOp::Geu.taken(0, u32::MAX));
    }

    #[test]
    fn load_extension() {
        assert_eq!(LoadOp::Byte.extend(0x80), 0xffff_ff80);
        assert_eq!(LoadOp::ByteU.extend(0x80), 0x80);
        assert_eq!(LoadOp::Half.extend(0x8000), 0xffff_8000);
        assert_eq!(LoadOp::HalfU.extend(0x8000), 0x8000);
        assert_eq!(LoadOp::Word.extend(0xdead_beef), 0xdead_beef);
    }

    #[test]
    fn dest_never_reports_x0() {
        let i = Instruction::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn base_mnemonic_list_has_37_unique_entries() {
        let mut set = std::collections::HashSet::new();
        for m in Instruction::RV32I_BASE_MNEMONICS {
            assert!(set.insert(m), "duplicate mnemonic {m}");
        }
        assert_eq!(set.len(), 37);
    }

    #[test]
    fn custom_instructions_are_flagged() {
        assert!(Instruction::TransBnn.is_ncpu_custom());
        assert!(!Instruction::Ebreak.is_ncpu_custom());
        assert!(Instruction::SwL2 { rs1: Reg::A0, rs2: Reg::A1, offset: 0 }.is_memory_access());
    }
}
