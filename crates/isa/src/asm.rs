//! Two-pass assembler for RV32I + NCPU extension, and a programmatic
//! [`ProgramBuilder`] for generating code from Rust.
//!
//! # Supported syntax
//!
//! * one instruction per line; `label:` prefixes (several per line allowed);
//! * comments introduced by `#` or `//`;
//! * operands: registers (`a0`/`x10`/`fp`), immediates (decimal, `0x…`,
//!   `0b…`, negative), `offset(base)` memory operands, and label references
//!   or `.+N`/`.-N` PC-relative offsets in branch/jump positions (the
//!   disassembler's output re-assembles);
//! * directives: `.word <imm>`;
//! * pseudo-instructions: `nop`, `mv`, `li`, `not`, `neg`, `seqz`, `snez`,
//!   `j`, `jr`, `jal label` (short for `jal ra, label`), `call`, `ret`,
//!   `beqz`, `bnez`, `blez`, `bgez`, `bltz`, `bgtz`;
//! * NCPU custom instructions: `mv_neu rs1, n`, `trans_bnn`, `trans_cpu`,
//!   `trigger_bnn`, `sw_l2 rs2, off(rs1)`, `lw_l2 rd, off(rs1)`.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let words = ncpu_isa::asm::assemble(
//!     "       li   t0, 10
//!             li   t1, 0
//!      loop:  add  t1, t1, t0
//!             addi t0, t0, -1
//!             bnez t0, loop
//!             ebreak",
//! )?;
//! assert_eq!(words.len(), 6);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::error::AsmError;
use crate::instr::{AluOp, BranchOp, Instruction, LoadOp, StoreOp};
use crate::reg::Reg;

/// One item of a program under construction: either a finished instruction
/// or one whose PC-relative offset awaits label resolution.
#[derive(Debug, Clone)]
enum Item {
    Fixed(Instruction),
    BranchTo { op: BranchOp, rs1: Reg, rs2: Reg, label: String, line: usize },
    JalTo { rd: Reg, label: String, line: usize },
    RawWord(u32),
}

/// Incrementally builds a program, resolving labels at
/// [`finish`](ProgramBuilder::finish) time.
///
/// This is the preferred interface for machine-generated code (the
/// `ncpu-workloads` crate builds its kernels with it); the
/// [`assemble`] text front end parses into the same structure.
///
/// # Examples
///
/// ```
/// use ncpu_isa::asm::ProgramBuilder;
/// use ncpu_isa::{AluOp, BranchOp, Instruction, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = ProgramBuilder::new();
/// p.li(Reg::T0, 5);
/// p.label("loop");
/// p.push(Instruction::OpImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: -1 });
/// p.branch_to(BranchOp::Ne, Reg::T0, Reg::ZERO, "loop");
/// p.push(Instruction::Ebreak);
/// let words = p.finish()?;
/// assert_eq!(words.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl ProgramBuilder {
    /// Creates an empty program.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Number of 32-bit words emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no words have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined; duplicate labels in
    /// generated code are programming errors.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.items.len());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    /// Appends a fully-resolved instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Appends a raw data word (e.g. an inline constant table).
    pub fn word(&mut self, value: u32) -> &mut Self {
        self.items.push(Item::RawWord(value));
        self
    }

    /// Appends a conditional branch to a label.
    pub fn branch_to(
        &mut self,
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.items.push(Item::BranchTo { op, rs1, rs2, label: label.into(), line: 0 });
        self
    }

    /// Appends an unconditional jump (`jal rd, label`).
    pub fn jal_to(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::JalTo { rd, label: label.into(), line: 0 });
        self
    }

    /// Appends `j label` (jump without linking).
    pub fn jump_to(&mut self, label: impl Into<String>) -> &mut Self {
        self.jal_to(Reg::ZERO, label)
    }

    /// Loads a 32-bit constant, emitting one or two instructions.
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        for instr in expand_li(rd, value) {
            self.push(instr);
        }
        self
    }

    /// Shorthand for a register-register ALU op.
    pub fn op(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instruction::Op { op, rd, rs1, rs2 })
    }

    /// Shorthand for a register-immediate ALU op.
    pub fn op_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Instruction::OpImm { op, rd, rs1, imm })
    }

    /// Shorthand for `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i32) -> &mut Self {
        self.push(Instruction::Load { op: LoadOp::Word, rd, rs1, offset })
    }

    /// Shorthand for `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs1: Reg, rs2: Reg, offset: i32) -> &mut Self {
        self.push(Instruction::Store { op: StoreOp::Word, rs1, rs2, offset })
    }

    /// Resolves labels and encodes every instruction.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined labels or encoding failures
    /// (e.g. a branch target beyond ±4 KiB).
    pub fn finish(&self) -> Result<Vec<u32>, AsmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let word = match item {
                Item::Fixed(instr) => {
                    instr.encode().map_err(|e| AsmError::from(e).at_line(0))?
                }
                Item::RawWord(w) => *w,
                Item::BranchTo { op, rs1, rs2, label, line } => {
                    let offset = self.offset_to(label, idx, *line)?;
                    Instruction::Branch { op: *op, rs1: *rs1, rs2: *rs2, offset }
                        .encode()
                        .map_err(|e| AsmError::from(e).at_line(*line))?
                }
                Item::JalTo { rd, label, line } => {
                    let offset = self.offset_to(label, idx, *line)?;
                    Instruction::Jal { rd: *rd, offset }
                        .encode()
                        .map_err(|e| AsmError::from(e).at_line(*line))?
                }
            };
            words.push(word);
        }
        Ok(words)
    }

    fn offset_to(&self, label: &str, from: usize, line: usize) -> Result<i32, AsmError> {
        let target = self
            .labels
            .get(label)
            .ok_or_else(|| AsmError::new(line, format!("undefined label `{label}`")))?;
        Ok(((*target as i64 - from as i64) * 4) as i32)
    }
}

/// Expands `li rd, value` into one or two real instructions.
fn expand_li(rd: Reg, value: i32) -> Vec<Instruction> {
    if (-2048..=2047).contains(&value) {
        vec![Instruction::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: value }]
    } else {
        // Round so the sign-extended low part reconstructs `value`.
        let upper = (value.wrapping_add(0x800)) & !0xfff;
        let lower = value.wrapping_sub(upper);
        let mut v = vec![Instruction::Lui { rd, imm: upper }];
        if lower != 0 {
            v.push(Instruction::OpImm { op: AluOp::Add, rd, rs1: rd, imm: lower });
        }
        v
    }
}

/// Assembles source text into instruction words (program origin 0).
///
/// See the [module documentation](self) for the accepted syntax.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending 1-based line number for syntax
/// errors, unknown mnemonics/registers, undefined labels, and out-of-range
/// immediates.
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    parse(src)?.finish()
}

/// Assembles source text and returns the builder, allowing callers to
/// inspect label positions before encoding.
pub fn parse(src: &str) -> Result<ProgramBuilder, AsmError> {
    let mut b = ProgramBuilder::new();
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = raw;
        if let Some(pos) = line.find('#') {
            line = &line[..pos];
        }
        if let Some(pos) = line.find("//") {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Consume leading `label:` definitions.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty() || !is_ident(head) {
                break;
            }
            if b.labels.contains_key(head) {
                return Err(AsmError::new(lineno, format!("label `{head}` defined twice")));
            }
            b.labels.insert(head.to_string(), b.items.len());
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        parse_statement(&mut b, rest, lineno)?;
    }
    Ok(b)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_statement(b: &mut ProgramBuilder, stmt: &str, line: usize) -> Result<(), AsmError> {
    let (mnemonic, rest) = match stmt.find(char::is_whitespace) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => (stmt, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let err = |msg: &str| Err(AsmError::new(line, format!("{msg} in `{stmt}`")));

    let reg = |s: &str| -> Result<Reg, AsmError> {
        s.parse::<Reg>().map_err(|e| e.at_line(line))
    };
    let imm = |s: &str| -> Result<i32, AsmError> { parse_imm(s, line) };
    // `offset(base)` memory operand.
    let mem = |s: &str| -> Result<(i32, Reg), AsmError> {
        let open = s
            .find('(')
            .ok_or_else(|| AsmError::new(line, format!("expected `offset(reg)`, got `{s}`")))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| AsmError::new(line, format!("missing `)` in `{s}`")))?;
        let off_str = s[..open].trim();
        let offset = if off_str.is_empty() { 0 } else { parse_imm(off_str, line)? };
        Ok((offset, reg(s[open + 1..close].trim())?))
    };
    // Branch/jump target: a label, or a `.+N` / `.-N` PC-relative offset
    // (the disassembler's output format), making disassembly re-assemblable.
    enum Target {
        Label(String),
        Offset(i32),
    }
    let target = |s: &str| -> Result<Target, AsmError> {
        if let Some(rest) = s.strip_prefix('.') {
            let value = parse_imm(rest.trim_start_matches('+'), line)?;
            Ok(Target::Offset(value))
        } else {
            Ok(Target::Label(s.to_string()))
        }
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                line,
                format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
            ))
        }
    };

    match mnemonic {
        // ---- directives ----
        ".word" => {
            need(1)?;
            b.word(imm(ops[0])? as u32);
        }
        // ---- upper-immediate / jumps ----
        "lui" | "auipc" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let value = imm(ops[1])?;
            // Accept the conventional "upper 20 bits" operand.
            let full = value << 12;
            let instr = if mnemonic == "lui" {
                Instruction::Lui { rd, imm: full }
            } else {
                Instruction::Auipc { rd, imm: full }
            };
            b.push(instr);
        }
        "jal" => match ops.len() {
            1 => match target(ops[0])? {
                Target::Label(l) => {
                    b.jal_to(Reg::RA, l);
                }
                Target::Offset(offset) => {
                    b.push(Instruction::Jal { rd: Reg::RA, offset });
                }
            },
            2 => {
                let rd = reg(ops[0])?;
                match target(ops[1])? {
                    Target::Label(l) => {
                        b.jal_to(rd, l);
                    }
                    Target::Offset(offset) => {
                        b.push(Instruction::Jal { rd, offset });
                    }
                }
            }
            _ => return err("`jal` expects 1 or 2 operands"),
        },
        "jalr" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let (offset, rs1) = mem(ops[1])?;
            b.push(Instruction::Jalr { rd, rs1, offset });
        }
        "j" => {
            need(1)?;
            match target(ops[0])? {
                Target::Label(l) => {
                    b.jump_to(l);
                }
                Target::Offset(offset) => {
                    b.push(Instruction::Jal { rd: Reg::ZERO, offset });
                }
            }
        }
        "jr" => {
            need(1)?;
            b.push(Instruction::Jalr { rd: Reg::ZERO, rs1: reg(ops[0])?, offset: 0 });
        }
        "call" => {
            need(1)?;
            b.jal_to(Reg::RA, ops[0]);
        }
        "ret" => {
            need(0)?;
            b.push(Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
        }
        // ---- branches ----
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            need(3)?;
            let op = branch_op(mnemonic).expect("matched above");
            let (rs1, rs2) = (reg(ops[0])?, reg(ops[1])?);
            match target(ops[2])? {
                Target::Label(l) => {
                    b.branch_to(op, rs1, rs2, l);
                }
                Target::Offset(offset) => {
                    b.push(Instruction::Branch { op, rs1, rs2, offset });
                }
            }
        }
        "beqz" | "bnez" => {
            need(2)?;
            let op = if mnemonic == "beqz" { BranchOp::Eq } else { BranchOp::Ne };
            b.branch_to(op, reg(ops[0])?, Reg::ZERO, ops[1]);
        }
        "blez" => {
            need(2)?;
            b.branch_to(BranchOp::Ge, Reg::ZERO, reg(ops[0])?, ops[1]);
        }
        "bgez" => {
            need(2)?;
            b.branch_to(BranchOp::Ge, reg(ops[0])?, Reg::ZERO, ops[1]);
        }
        "bltz" => {
            need(2)?;
            b.branch_to(BranchOp::Lt, reg(ops[0])?, Reg::ZERO, ops[1]);
        }
        "bgtz" => {
            need(2)?;
            b.branch_to(BranchOp::Lt, Reg::ZERO, reg(ops[0])?, ops[1]);
        }
        // ---- loads/stores ----
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            need(2)?;
            let op = match mnemonic {
                "lb" => LoadOp::Byte,
                "lh" => LoadOp::Half,
                "lw" => LoadOp::Word,
                "lbu" => LoadOp::ByteU,
                _ => LoadOp::HalfU,
            };
            let rd = reg(ops[0])?;
            let (offset, rs1) = mem(ops[1])?;
            b.push(Instruction::Load { op, rd, rs1, offset });
        }
        "sb" | "sh" | "sw" => {
            need(2)?;
            let op = match mnemonic {
                "sb" => StoreOp::Byte,
                "sh" => StoreOp::Half,
                _ => StoreOp::Word,
            };
            let rs2 = reg(ops[0])?;
            let (offset, rs1) = mem(ops[1])?;
            b.push(Instruction::Store { op, rs1, rs2, offset });
        }
        // ---- ALU immediate ----
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            need(3)?;
            let op = match mnemonic {
                "addi" => AluOp::Add,
                "slti" => AluOp::Slt,
                "sltiu" => AluOp::Sltu,
                "xori" => AluOp::Xor,
                "ori" => AluOp::Or,
                "andi" => AluOp::And,
                "slli" => AluOp::Sll,
                "srli" => AluOp::Srl,
                _ => AluOp::Sra,
            };
            b.push(Instruction::OpImm { op, rd: reg(ops[0])?, rs1: reg(ops[1])?, imm: imm(ops[2])? });
        }
        // ---- ALU register ----
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul" => {
            need(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                "and" => AluOp::And,
                _ => AluOp::Mul,
            };
            b.push(Instruction::Op { op, rd: reg(ops[0])?, rs1: reg(ops[1])?, rs2: reg(ops[2])? });
        }
        // ---- pseudo ----
        "nop" => {
            need(0)?;
            b.push(Instruction::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 });
        }
        "mv" => {
            need(2)?;
            b.push(Instruction::OpImm { op: AluOp::Add, rd: reg(ops[0])?, rs1: reg(ops[1])?, imm: 0 });
        }
        "li" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let value = imm(ops[1])?;
            b.li(rd, value);
        }
        "not" => {
            need(2)?;
            b.push(Instruction::OpImm { op: AluOp::Xor, rd: reg(ops[0])?, rs1: reg(ops[1])?, imm: -1 });
        }
        "neg" => {
            need(2)?;
            b.push(Instruction::Op { op: AluOp::Sub, rd: reg(ops[0])?, rs1: Reg::ZERO, rs2: reg(ops[1])? });
        }
        "seqz" => {
            need(2)?;
            b.push(Instruction::OpImm { op: AluOp::Sltu, rd: reg(ops[0])?, rs1: reg(ops[1])?, imm: 1 });
        }
        "snez" => {
            need(2)?;
            b.push(Instruction::Op { op: AluOp::Sltu, rd: reg(ops[0])?, rs1: Reg::ZERO, rs2: reg(ops[1])? });
        }
        // ---- system / NCPU ----
        "ecall" => {
            need(0)?;
            b.push(Instruction::Ecall);
        }
        "ebreak" => {
            need(0)?;
            b.push(Instruction::Ebreak);
        }
        "mv_neu" => {
            need(2)?;
            let rs1 = reg(ops[0])?;
            let n = imm(ops[1])?;
            if !(0..4096).contains(&n) {
                return err("transition-neuron index out of range");
            }
            b.push(Instruction::MvNeu { rs1, neuron: n as u16 });
        }
        "trans_bnn" => {
            need(0)?;
            b.push(Instruction::TransBnn);
        }
        "trans_cpu" => {
            need(0)?;
            b.push(Instruction::TransCpu);
        }
        "trigger_bnn" => {
            need(0)?;
            b.push(Instruction::TriggerBnn);
        }
        "sw_l2" => {
            need(2)?;
            let rs2 = reg(ops[0])?;
            let (offset, rs1) = mem(ops[1])?;
            b.push(Instruction::SwL2 { rs1, rs2, offset });
        }
        "lw_l2" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let (offset, rs1) = mem(ops[1])?;
            b.push(Instruction::LwL2 { rd, rs1, offset });
        }
        _ => return Err(AsmError::new(line, format!("unknown mnemonic `{mnemonic}`"))),
    }
    Ok(())
}

fn branch_op(mnemonic: &str) -> Option<BranchOp> {
    Some(match mnemonic {
        "beq" => BranchOp::Eq,
        "bne" => BranchOp::Ne,
        "blt" => BranchOp::Lt,
        "bge" => BranchOp::Ge,
        "bltu" => BranchOp::Ltu,
        "bgeu" => BranchOp::Geu,
        _ => return None,
    })
}

fn parse_imm(s: &str, line: usize) -> Result<i32, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let parsed: Result<i64, _> = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    };
    let value = parsed
        .map_err(|_| AsmError::new(line, format!("invalid immediate `{s}`")))?;
    let value = if neg { -value } else { value };
    if value < i32::MIN as i64 || value > u32::MAX as i64 {
        return Err(AsmError::new(line, format!("immediate `{s}` out of 32-bit range")));
    }
    Ok(value as u32 as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn round_trip_through_disassembly() {
        let src = "start: addi t0, zero, 100
                   lw a0, 8(sp)
                   sw a0, -4(sp)
                   beq t0, a0, start
                   jal ra, start
                   ebreak";
        let words = assemble(src).unwrap();
        let texts: Vec<String> =
            words.iter().map(|&w| decode(w).unwrap().to_string()).collect();
        assert_eq!(texts[0], "addi t0, zero, 100");
        assert_eq!(texts[3], "beq t0, a0, .-12");
        assert_eq!(texts[5], "ebreak");
    }

    #[test]
    fn li_expands_by_magnitude() {
        assert_eq!(assemble("li a0, 42").unwrap().len(), 1);
        assert_eq!(assemble("li a0, -2048").unwrap().len(), 1);
        assert_eq!(assemble("li a0, 2048").unwrap().len(), 2);
        assert_eq!(assemble("li a0, 0x12345678").unwrap().len(), 2);
        // Exactly 4096: low part is zero, lui alone suffices.
        assert_eq!(assemble("li a0, 4096").unwrap().len(), 1);
    }

    #[test]
    fn li_values_are_exact() {
        use crate::interp::Interp;
        for value in [0i32, 1, -1, 2047, 2048, -2049, 0x7fff_ffff, i32::MIN, 0x1234_5678] {
            let src = format!("li a0, {value}\nebreak");
            let words = assemble(&src).unwrap();
            let mut m = Interp::with_program(&words, 4096);
            m.run(100).unwrap();
            assert_eq!(m.reg(Reg::A0) as i32, value, "li {value}");
        }
    }

    #[test]
    fn labels_forward_and_backward() {
        let src = "  j fwd
           back: ebreak
           fwd:  j back";
        let words = assemble(src).unwrap();
        assert_eq!(decode(words[0]).unwrap(), Instruction::Jal { rd: Reg::ZERO, offset: 8 });
        assert_eq!(decode(words[2]).unwrap(), Instruction::Jal { rd: Reg::ZERO, offset: -4 });
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("x: nop\nx: nop").unwrap_err();
        assert!(err.to_string().contains("defined twice"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("j nowhere").unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("nop\nfrobnicate a0").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let words = assemble("# header\n\n  nop # trailing\n// c++ style\nnop").unwrap();
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn word_directive_emits_raw_data() {
        let words = assemble(".word 0xdeadbeef").unwrap();
        assert_eq!(words, vec![0xdead_beef]);
    }

    #[test]
    fn ncpu_custom_mnemonics_assemble() {
        let words = assemble(
            "mv_neu a0, 3
             trans_bnn
             trans_cpu
             trigger_bnn
             sw_l2 a1, 16(a0)
             lw_l2 a2, 0(a0)",
        )
        .unwrap();
        assert_eq!(decode(words[0]).unwrap(), Instruction::MvNeu { rs1: Reg::A0, neuron: 3 });
        assert_eq!(decode(words[1]).unwrap(), Instruction::TransBnn);
        assert_eq!(
            decode(words[4]).unwrap(),
            Instruction::SwL2 { rs1: Reg::A0, rs2: Reg::A1, offset: 16 }
        );
    }

    #[test]
    fn builder_mirrors_text_assembler() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 10);
        b.label("loop");
        b.op_imm(AluOp::Add, Reg::T0, Reg::T0, -1);
        b.branch_to(BranchOp::Ne, Reg::T0, Reg::ZERO, "loop");
        b.push(Instruction::Ebreak);
        let from_builder = b.finish().unwrap();
        let from_text = assemble(
            "       li t0, 10
             loop:  addi t0, t0, -1
                    bnez t0, loop
                    ebreak",
        )
        .unwrap();
        assert_eq!(from_builder, from_text);
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        let mut src = String::from("start: nop\n");
        for _ in 0..2000 {
            src.push_str("nop\n");
        }
        src.push_str("j start\n");
        assert!(assemble(&src).is_ok(), "jal reaches ±1MiB");
        let mut far = String::from("start: nop\n");
        for _ in 0..2000 {
            far.push_str("nop\n");
        }
        far.push_str("beq zero, zero, start\n");
        assert!(assemble(&far).is_err(), "branch beyond ±4KiB must fail");
    }
}
