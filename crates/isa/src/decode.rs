//! 32-bit word → [`Instruction`] decoding.

use crate::encode::{
    F3_LW_L2, F3_MV_NEU, F3_SW_L2, F3_SYS_BASE, F3_TRANS_BNN, F3_TRANS_CPU, F3_TRIGGER_BNN,
    OPC_AUIPC, OPC_BRANCH, OPC_JAL, OPC_JALR, OPC_LOAD, OPC_LUI, OPC_OP, OPC_OP_IMM, OPC_STORE,
    OPC_SYSTEM,
};
use crate::error::DecodeError;
use crate::instr::{AluOp, BranchOp, Instruction, LoadOp, StoreOp};
use crate::reg::Reg;

fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

fn f3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn f7(word: u32) -> u32 {
    word >> 25
}

fn i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

fn s_imm(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1f) as i32)
}

fn b_imm(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 12, sign-extended
    (sign << 12)
        | ((((word >> 7) & 1) as i32) << 11)
        | ((((word >> 25) & 0x3f) as i32) << 5)
        | ((((word >> 8) & 0xf) as i32) << 1)
}

fn u_imm(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

fn j_imm(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 20, sign-extended
    (sign << 20)
        | ((((word >> 12) & 0xff) as i32) << 12)
        | ((((word >> 20) & 1) as i32) << 11)
        | ((((word >> 21) & 0x3ff) as i32) << 1)
}

/// Decodes a 32-bit word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode or function fields select no
/// supported instruction.
///
/// # Examples
///
/// ```
/// use ncpu_isa::{decode, AluOp, Instruction, Reg};
/// // nop == addi zero, zero, 0
/// assert_eq!(
///     decode(0x0000_0013).unwrap(),
///     Instruction::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }
/// );
/// ```
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let opcode = word & 0x7f;
    let unknown_fn = Err(DecodeError::UnknownFunction { word });
    match opcode {
        OPC_LUI => Ok(Instruction::Lui { rd: rd(word), imm: u_imm(word) }),
        OPC_AUIPC => Ok(Instruction::Auipc { rd: rd(word), imm: u_imm(word) }),
        OPC_JAL => Ok(Instruction::Jal { rd: rd(word), offset: j_imm(word) }),
        OPC_JALR => {
            if f3(word) != 0 {
                return unknown_fn;
            }
            Ok(Instruction::Jalr { rd: rd(word), rs1: rs1(word), offset: i_imm(word) })
        }
        OPC_BRANCH => {
            let op = match f3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return unknown_fn,
            };
            Ok(Instruction::Branch { op, rs1: rs1(word), rs2: rs2(word), offset: b_imm(word) })
        }
        OPC_LOAD => {
            let op = match f3(word) {
                0b000 => LoadOp::Byte,
                0b001 => LoadOp::Half,
                0b010 => LoadOp::Word,
                0b100 => LoadOp::ByteU,
                0b101 => LoadOp::HalfU,
                _ => return unknown_fn,
            };
            Ok(Instruction::Load { op, rd: rd(word), rs1: rs1(word), offset: i_imm(word) })
        }
        OPC_STORE => {
            let op = match f3(word) {
                0b000 => StoreOp::Byte,
                0b001 => StoreOp::Half,
                0b010 => StoreOp::Word,
                _ => return unknown_fn,
            };
            Ok(Instruction::Store { op, rs1: rs1(word), rs2: rs2(word), offset: s_imm(word) })
        }
        OPC_OP_IMM => {
            let (op, imm) = match f3(word) {
                0b000 => (AluOp::Add, i_imm(word)),
                0b001 => {
                    if f7(word) != 0 {
                        return unknown_fn;
                    }
                    (AluOp::Sll, ((word >> 20) & 0x1f) as i32)
                }
                0b010 => (AluOp::Slt, i_imm(word)),
                0b011 => (AluOp::Sltu, i_imm(word)),
                0b100 => (AluOp::Xor, i_imm(word)),
                0b101 => match f7(word) {
                    0b0000000 => (AluOp::Srl, ((word >> 20) & 0x1f) as i32),
                    0b0100000 => (AluOp::Sra, ((word >> 20) & 0x1f) as i32),
                    _ => return unknown_fn,
                },
                0b110 => (AluOp::Or, i_imm(word)),
                0b111 => (AluOp::And, i_imm(word)),
                _ => unreachable!(),
            };
            Ok(Instruction::OpImm { op, rd: rd(word), rs1: rs1(word), imm })
        }
        OPC_OP => {
            let op = match (f7(word), f3(word)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                _ => return unknown_fn,
            };
            Ok(Instruction::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
        }
        OPC_SYSTEM => match f3(word) {
            F3_SYS_BASE => match word >> 20 {
                0 => Ok(Instruction::Ecall),
                1 => Ok(Instruction::Ebreak),
                _ => unknown_fn,
            },
            F3_MV_NEU => {
                Ok(Instruction::MvNeu { rs1: rs1(word), neuron: (word >> 20) as u16 })
            }
            F3_SW_L2 => {
                Ok(Instruction::SwL2 { rs1: rs1(word), rs2: rs2(word), offset: s_imm(word) })
            }
            F3_LW_L2 => Ok(Instruction::LwL2 { rd: rd(word), rs1: rs1(word), offset: i_imm(word) }),
            F3_TRANS_BNN => Ok(Instruction::TransBnn),
            F3_TRIGGER_BNN => Ok(Instruction::TriggerBnn),
            F3_TRANS_CPU => Ok(Instruction::TransCpu),
            _ => unknown_fn,
        },
        _ => Err(DecodeError::UnknownOpcode { word, opcode: opcode as u8 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(0xffff_ffff), Err(DecodeError::UnknownOpcode { .. })));
        assert!(matches!(decode(0x0000_0000), Err(DecodeError::UnknownOpcode { .. })));
        // Valid LOAD opcode, invalid funct3 (0b011 = ld, RV64 only).
        let bad_load = 0x0000_3003;
        assert!(matches!(decode(bad_load), Err(DecodeError::UnknownFunction { .. })));
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1
        let i = decode(0xfff5_0513).unwrap();
        assert_eq!(i, Instruction::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: -1 });
        // jal zero, -16
        let j = Instruction::Jal { rd: Reg::ZERO, offset: -16 }.encode().unwrap();
        assert_eq!(decode(j).unwrap(), Instruction::Jal { rd: Reg::ZERO, offset: -16 });
    }

    #[test]
    fn system_space_round_trips() {
        for i in [
            Instruction::Ecall,
            Instruction::Ebreak,
            Instruction::TransBnn,
            Instruction::TransCpu,
            Instruction::TriggerBnn,
            Instruction::MvNeu { rs1: Reg::T0, neuron: 123 },
            Instruction::SwL2 { rs1: Reg::A0, rs2: Reg::A1, offset: -32 },
            Instruction::LwL2 { rd: Reg::A2, rs1: Reg::A3, offset: 2047 },
        ] {
            assert_eq!(decode(i.encode().unwrap()).unwrap(), i);
        }
    }

    #[test]
    fn store_negative_offset_round_trips() {
        let s = Instruction::Store { op: StoreOp::Byte, rs1: Reg::SP, rs2: Reg::T1, offset: -1 };
        assert_eq!(decode(s.encode().unwrap()).unwrap(), s);
    }
}
