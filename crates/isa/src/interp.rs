//! Functional golden-model interpreter for RV32I + NCPU extension.
//!
//! [`Interp`] executes one instruction per [`step`](Interp::step) with no
//! timing model. The cycle-accurate pipeline in `ncpu-pipeline` is
//! differential-tested against it: both must produce identical
//! architectural state for identical programs.
//!
//! NCPU custom instructions have no architectural effect here beyond their
//! register writes; they are surfaced to the host as [`Event`]s so that
//! higher layers (the NCPU core model) can attach semantics.

use std::error::Error;
use std::fmt;

use crate::decode;
use crate::error::DecodeError;
use crate::instr::Instruction;
use crate::reg::Reg;

/// What a [`step`](Interp::step) produced, beyond ordinary state updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An ordinary instruction retired.
    Retired,
    /// `ebreak` retired — the program is done.
    Halted,
    /// `ecall` retired (the reproduction gives it no semantics).
    EnvCall,
    /// `mv_neu rs1, n` retired; carries the value and target neuron.
    MvNeu {
        /// Value moved from the register file.
        value: u32,
        /// Destination transition-neuron index.
        neuron: u16,
    },
    /// `trans_bnn` retired — the core asks to enter BNN mode.
    TransBnn,
    /// `trans_cpu` retired — the core asks to re-enter CPU mode.
    TransCpu,
    /// `trigger_bnn` retired — heterogeneous-baseline accelerator start.
    TriggerBnn,
    /// `sw_l2`/`lw_l2` retired; carries the L2 address accessed.
    L2Access {
        /// Byte address within the global L2 space.
        addr: u32,
        /// `true` for `sw_l2`.
        is_store: bool,
    },
}

/// Error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The word at `pc` failed to decode.
    Decode {
        /// Faulting program counter.
        pc: u32,
        /// Underlying decode failure.
        source: DecodeError,
    },
    /// A data access fell outside memory.
    MemOutOfBounds {
        /// Faulting program counter.
        pc: u32,
        /// Faulting byte address.
        addr: u32,
    },
    /// `pc` fell outside the loaded program.
    PcOutOfBounds {
        /// Faulting program counter.
        pc: u32,
    },
    /// [`Interp::run`] exceeded its step budget without halting.
    StepLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Decode { pc, source } => write!(f, "at pc={pc:#x}: {source}"),
            ExecError::MemOutOfBounds { pc, addr } => {
                write!(f, "at pc={pc:#x}: memory access out of bounds at {addr:#x}")
            }
            ExecError::PcOutOfBounds { pc } => write!(f, "pc {pc:#x} outside program"),
            ExecError::StepLimit { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Functional RV32I interpreter over a flat byte memory.
///
/// Instruction and data share one address space (the interpreter is a
/// golden model, not a microarchitecture). `x0` is architecturally zero.
///
/// # Examples
///
/// ```
/// use ncpu_isa::{asm, interp::Interp, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = asm::assemble("li a0, 21\nadd a0, a0, a0\nebreak")?;
/// let mut m = Interp::with_program(&program, 4096);
/// m.run(1000)?;
/// assert_eq!(m.reg(Reg::A0), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interp {
    regs: [u32; 32],
    pc: u32,
    mem: Vec<u8>,
    retired: u64,
    halted: bool,
    /// Global L2 backing store for `sw_l2`/`lw_l2` (64-KiB default).
    l2: Vec<u8>,
}

impl Interp {
    /// Creates an interpreter with `mem_bytes` of zeroed memory.
    pub fn new(mem_bytes: usize) -> Interp {
        Interp {
            regs: [0; 32],
            pc: 0,
            mem: vec![0; mem_bytes],
            retired: 0,
            halted: false,
            l2: vec![0; 64 * 1024],
        }
    }

    /// Creates an interpreter, loads `program` at address 0, and ensures at
    /// least `mem_bytes` of memory.
    pub fn with_program(program: &[u32], mem_bytes: usize) -> Interp {
        let needed = program.len() * 4;
        let mut m = Interp::new(needed.max(mem_bytes));
        m.load_program(0, program);
        m
    }

    /// Copies `program` words into memory at `base` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit in memory.
    pub fn load_program(&mut self, base: u32, program: &[u32]) {
        for (i, word) in program.iter().enumerate() {
            let addr = base as usize + i * 4;
            self.mem[addr..addr + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    /// Reads register `reg` (always 0 for `x0`).
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes register `reg` (writes to `x0` are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg != Reg::ZERO {
            self.regs[reg.index()] = value;
        }
    }

    /// Current program counter.
    pub const fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Number of retired instructions.
    pub const fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether `ebreak` has retired.
    pub const fn is_halted(&self) -> bool {
        self.halted
    }

    /// Data memory as a byte slice.
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// Mutable access to data memory (for preloading inputs).
    pub fn mem_mut(&mut self) -> &mut [u8] {
        &mut self.mem
    }

    /// Global L2 backing store used by `sw_l2`/`lw_l2`.
    pub fn l2(&self) -> &[u8] {
        &self.l2
    }

    /// Mutable access to the L2 backing store.
    pub fn l2_mut(&mut self) -> &mut Vec<u8> {
        &mut self.l2
    }

    /// Reads a little-endian word from data memory (helper for tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds memory.
    pub fn read_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4 bytes"))
    }

    /// Writes a little-endian word to data memory (helper for tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds memory.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        let a = addr as usize;
        self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    fn load(&self, pc: u32, addr: u32, width: u32) -> Result<u32, ExecError> {
        let end = addr as usize + width as usize;
        if end > self.mem.len() {
            return Err(ExecError::MemOutOfBounds { pc, addr });
        }
        let mut raw = 0u32;
        for i in 0..width as usize {
            raw |= (self.mem[addr as usize + i] as u32) << (8 * i);
        }
        Ok(raw)
    }

    fn store(&mut self, pc: u32, addr: u32, width: u32, value: u32) -> Result<(), ExecError> {
        let end = addr as usize + width as usize;
        if end > self.mem.len() {
            return Err(ExecError::MemOutOfBounds { pc, addr });
        }
        for i in 0..width as usize {
            self.mem[addr as usize + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on decode failures and out-of-bounds accesses.
    pub fn step(&mut self) -> Result<Event, ExecError> {
        let pc = self.pc;
        if pc as usize + 4 > self.mem.len() {
            return Err(ExecError::PcOutOfBounds { pc });
        }
        let word = self.read_word(pc);
        let instr = decode(word).map_err(|source| ExecError::Decode { pc, source })?;
        let mut next_pc = pc.wrapping_add(4);
        let mut event = Event::Retired;
        match instr {
            Instruction::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Instruction::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Instruction::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instruction::Branch { op, rs1, rs2, offset } => {
                if op.taken(self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instruction::Load { op, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let raw = self.load(pc, addr, op.width())?;
                self.set_reg(rd, op.extend(raw));
            }
            Instruction::Store { op, rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.store(pc, addr, op.width(), self.reg(rs2))?;
            }
            Instruction::OpImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as u32));
            }
            Instruction::Op { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
            }
            Instruction::Ecall => event = Event::EnvCall,
            Instruction::Ebreak => {
                self.halted = true;
                event = Event::Halted;
            }
            Instruction::MvNeu { rs1, neuron } => {
                event = Event::MvNeu { value: self.reg(rs1), neuron };
            }
            Instruction::TransBnn => event = Event::TransBnn,
            Instruction::TransCpu => event = Event::TransCpu,
            Instruction::TriggerBnn => event = Event::TriggerBnn,
            Instruction::SwL2 { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let end = addr as usize + 4;
                if end > self.l2.len() {
                    return Err(ExecError::MemOutOfBounds { pc, addr });
                }
                let v = self.reg(rs2);
                self.l2[addr as usize..end].copy_from_slice(&v.to_le_bytes());
                event = Event::L2Access { addr, is_store: true };
            }
            Instruction::LwL2 { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let end = addr as usize + 4;
                if end > self.l2.len() {
                    return Err(ExecError::MemOutOfBounds { pc, addr });
                }
                let v = u32::from_le_bytes(self.l2[addr as usize..end].try_into().expect("4"));
                self.set_reg(rd, v);
                event = Event::L2Access { addr, is_store: false };
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(event)
    }

    /// Runs until `ebreak` or until `max_steps` instructions retire.
    ///
    /// Returns the number of retired instructions in this call.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the budget is exhausted, or any
    /// error from [`step`](Interp::step).
    pub fn run(&mut self, max_steps: u64) -> Result<u64, ExecError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_steps {
                return Err(ExecError::StepLimit { limit: max_steps });
            }
            self.step()?;
        }
        Ok(self.retired - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Interp {
        let words = assemble(src).unwrap();
        let mut m = Interp::with_program(&words, 65536);
        m.run(1_000_000).unwrap();
        m
    }

    #[test]
    fn arithmetic_loop_sums() {
        let m = run("      li t0, 100
                           li t1, 0
                    loop:  add t1, t1, t0
                           addi t0, t0, -1
                           bnez t0, loop
                           ebreak");
        assert_eq!(m.reg(Reg::T1), 5050);
    }

    #[test]
    fn memory_round_trip_all_widths() {
        let m = run("li t0, 1024
                     li t1, -2
                     sw t1, 0(t0)
                     lb a0, 0(t0)
                     lbu a1, 0(t0)
                     lh a2, 0(t0)
                     lhu a3, 0(t0)
                     lw a4, 0(t0)
                     sb t1, 8(t0)
                     lw a5, 8(t0)
                     ebreak");
        assert_eq!(m.reg(Reg::A0), -2i32 as u32);
        assert_eq!(m.reg(Reg::A1), 0xfe);
        assert_eq!(m.reg(Reg::A2), -2i32 as u32);
        assert_eq!(m.reg(Reg::A3), 0xfffe);
        assert_eq!(m.reg(Reg::A4), -2i32 as u32);
        assert_eq!(m.reg(Reg::A5), 0xfe);
    }

    #[test]
    fn jalr_call_and_return() {
        let m = run("    li sp, 4096
                         jal ra, func
                         li a1, 7
                         ebreak
                   func: li a0, 99
                         ret");
        assert_eq!(m.reg(Reg::A0), 99);
        assert_eq!(m.reg(Reg::A1), 7, "execution resumed after the call");
    }

    #[test]
    fn x0_stays_zero() {
        let m = run("li t0, 5\nadd zero, t0, t0\nebreak");
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn auipc_is_pc_relative() {
        let m = run("nop\nauipc a0, 1\nebreak");
        assert_eq!(m.reg(Reg::A0), 4 + 0x1000);
    }

    #[test]
    fn l2_instructions_move_data() {
        let words = assemble(
            "li t0, 128
             li t1, 0xabcd
             sw_l2 t1, 0(t0)
             lw_l2 a0, 0(t0)
             ebreak",
        )
        .unwrap();
        let mut m = Interp::with_program(&words, 4096);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::A0), 0xabcd);
        assert_eq!(&m.l2()[128..132], &0xabcdu32.to_le_bytes());
    }

    #[test]
    fn custom_instructions_surface_events() {
        let words = assemble("li a0, 42\nmv_neu a0, 7\ntrans_bnn\nebreak").unwrap();
        let mut m = Interp::with_program(&words, 4096);
        m.step().unwrap();
        assert_eq!(m.step().unwrap(), Event::MvNeu { value: 42, neuron: 7 });
        assert_eq!(m.step().unwrap(), Event::TransBnn);
        assert_eq!(m.step().unwrap(), Event::Halted);
        assert!(m.is_halted());
    }

    #[test]
    fn step_limit_reported() {
        let words = assemble("loop: j loop").unwrap();
        let mut m = Interp::with_program(&words, 256);
        assert_eq!(m.run(10), Err(ExecError::StepLimit { limit: 10 }));
    }

    #[test]
    fn out_of_bounds_access_reported() {
        let words = assemble("li t0, 0x7fffffff\nlw a0, 0(t0)\nebreak").unwrap();
        let mut m = Interp::with_program(&words, 256);
        assert!(matches!(m.run(10), Err(ExecError::MemOutOfBounds { .. })));
    }

    #[test]
    fn decode_error_carries_pc() {
        let mut m = Interp::with_program(&[0xffff_ffff], 256);
        match m.step() {
            Err(ExecError::Decode { pc, .. }) => assert_eq!(pc, 0),
            other => panic!("expected decode error, got {other:?}"),
        }
    }
}
