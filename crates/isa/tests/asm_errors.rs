//! Assembler error-path coverage: every malformed input is rejected with a
//! line-accurate, human-readable message.

use ncpu_isa::asm::assemble;

fn err_of(src: &str) -> ncpu_isa::AsmError {
    assemble(src).expect_err("must be rejected")
}

#[test]
fn wrong_operand_counts() {
    for (src, needle) in [
        ("add a0, a1", "expects 3"),
        ("add a0, a1, a2, a3", "expects 3"),
        ("nop a0", "expects 0"),
        ("lw a0", "expects 2"),
        ("mv_neu a0", "expects 2"),
        ("trans_bnn a0", "expects 0"),
    ] {
        let e = err_of(src);
        assert!(e.to_string().contains(needle), "`{src}` -> {e}");
    }
}

#[test]
fn malformed_memory_operands() {
    assert!(err_of("lw a0, 4[sp]").to_string().contains("offset(reg)"));
    assert!(err_of("lw a0, 4(sp").to_string().contains(")"));
    assert!(err_of("sw a0, (q9)").to_string().contains("unknown register"));
}

#[test]
fn bad_immediates() {
    assert!(err_of("addi a0, a0, banana").to_string().contains("invalid immediate"));
    assert!(err_of("addi a0, a0, 0xZZ").to_string().contains("invalid immediate"));
    assert!(err_of("li a0, 99999999999").to_string().contains("32-bit range"));
    assert!(err_of("addi a0, a0, 4096").to_string().contains("out of range"));
    assert!(err_of("slli a0, a0, 32").to_string().contains("out of range"));
    assert!(err_of("mv_neu a0, 5000").to_string().contains("out of range"));
}

#[test]
fn line_numbers_point_at_the_problem() {
    let e = err_of("nop\nnop\nbogus x1\nnop");
    assert_eq!(e.line(), 3);
    let e = err_of("nop\nj nowhere");
    assert!(e.to_string().contains("nowhere"));
}

#[test]
fn relative_offsets_validate() {
    // Misaligned relative branch offset.
    let e = err_of("beq a0, a1, .+3");
    assert!(e.to_string().contains("aligned"), "{e}");
    // Out-of-range relative branch.
    let e = err_of("beq a0, a1, .+8192");
    assert!(e.to_string().contains("out of range"), "{e}");
    // Valid ones assemble.
    assert!(assemble("beq a0, a1, .+8\nnop\nnop").is_ok());
    assert!(assemble("j .-0").is_ok());
}

#[test]
fn labels_validate() {
    assert!(err_of("dup: nop\ndup: nop").to_string().contains("defined twice"));
    assert!(err_of("bnez a0, missing").to_string().contains("undefined label"));
    // A label is not an instruction by itself — empty lines after are fine.
    assert!(assemble("only_label:\nnop").is_ok());
}

#[test]
fn branch_reach_checked_after_label_resolution() {
    let mut src = String::from("start: nop\n");
    for _ in 0..1100 {
        src.push_str("nop\n");
    }
    src.push_str("beq zero, zero, start\n");
    let e = assemble(&src).expect_err("±4 KiB branch reach");
    assert!(e.to_string().contains("out of range"), "{e}");
}
