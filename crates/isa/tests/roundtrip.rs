//! Property tests: encode/decode round-trips over the whole instruction space.

use ncpu_isa::{decode, AluOp, BranchOp, Instruction, LoadOp, Reg, StoreOp};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("index < 32"))
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
    ]
}

fn any_imm_op() -> impl Strategy<Value = AluOp> {
    any_alu_op().prop_filter("immediate form", |op| op.has_immediate_form())
}

fn any_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn any_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Byte),
        Just(LoadOp::Half),
        Just(LoadOp::Word),
        Just(LoadOp::ByteU),
        Just(LoadOp::HalfU),
    ]
}

fn any_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Byte), Just(StoreOp::Half), Just(StoreOp::Word)]
}

/// Any encodable instruction (all fields within their valid ranges).
fn any_instruction() -> impl Strategy<Value = Instruction> {
    let u20 = (-(1i32 << 19)..(1 << 19)).prop_map(|v| v << 12);
    let i12 = -2048i32..=2047;
    prop_oneof![
        (any_reg(), u20.clone()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (any_reg(), u20).prop_map(|(rd, imm)| Instruction::Auipc { rd, imm }),
        (any_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|v| v * 2))
            .prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
        (any_reg(), any_reg(), i12.clone())
            .prop_map(|(rd, rs1, offset)| Instruction::Jalr { rd, rs1, offset }),
        (any_branch_op(), any_reg(), any_reg(), (-2048i32..=2047).prop_map(|v| v * 2))
            .prop_map(|(op, rs1, rs2, offset)| Instruction::Branch { op, rs1, rs2, offset }),
        (any_load_op(), any_reg(), any_reg(), i12.clone())
            .prop_map(|(op, rd, rs1, offset)| Instruction::Load { op, rd, rs1, offset }),
        (any_store_op(), any_reg(), any_reg(), i12.clone())
            .prop_map(|(op, rs1, rs2, offset)| Instruction::Store { op, rs1, rs2, offset }),
        (any_imm_op(), any_reg(), any_reg(), i12.clone()).prop_map(|(op, rd, rs1, imm)| {
            let imm = if op.is_shift() { imm & 0x1f } else { imm };
            Instruction::OpImm { op, rd, rs1, imm }
        }),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Op { op, rd, rs1, rs2 }),
        Just(Instruction::Ecall),
        Just(Instruction::Ebreak),
        (any_reg(), 0u16..4096).prop_map(|(rs1, neuron)| Instruction::MvNeu { rs1, neuron }),
        Just(Instruction::TransBnn),
        Just(Instruction::TransCpu),
        Just(Instruction::TriggerBnn),
        (any_reg(), any_reg(), i12.clone())
            .prop_map(|(rs1, rs2, offset)| Instruction::SwL2 { rs1, rs2, offset }),
        (any_reg(), any_reg(), i12)
            .prop_map(|(rd, rs1, offset)| Instruction::LwL2 { rd, rs1, offset }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every valid instruction.
    #[test]
    fn instruction_round_trip(instr in any_instruction()) {
        let word = instr.encode().expect("strategy only yields encodable instructions");
        prop_assert_eq!(decode(word).expect("own encoding decodes"), instr);
    }

    /// Any word that decodes re-encodes to a word that decodes identically
    /// (encoding is canonical with respect to decoding).
    #[test]
    fn word_decode_is_stable(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let reenc = instr.encode().expect("decoded instructions are encodable");
            prop_assert_eq!(decode(reenc).expect("canonical word decodes"), instr);
        }
    }

    /// Disassembly never panics and is non-empty for any decodable word.
    #[test]
    fn disasm_total(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            prop_assert!(!instr.to_string().is_empty());
        }
    }

    /// dest()/sources() agree with the encoding fields.
    #[test]
    fn dest_and_sources_are_consistent(instr in any_instruction()) {
        if let Some(rd) = instr.dest() {
            prop_assert!(rd != Reg::ZERO);
        }
        let (s1, s2) = instr.sources();
        if s2.is_some() {
            prop_assert!(s1.is_some(), "rs2 implies rs1");
        }
    }
}

proptest! {
    /// Disassembly is valid assembler input: for every decodable word,
    /// `assemble(display(instr))` reproduces the instruction.
    #[test]
    fn disassembly_reassembles(instr in any_instruction()) {
        let text = instr.to_string();
        let words = ncpu_isa::asm::assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        prop_assert_eq!(words.len(), 1, "one instruction per line: `{}`", text);
        prop_assert_eq!(decode(words[0]).expect("assembled word decodes"), instr);
    }
}
