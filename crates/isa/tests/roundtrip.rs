//! Property tests: encode/decode round-trips over the whole instruction space.

use ncpu_isa::{decode, AluOp, BranchOp, Instruction, LoadOp, Reg, StoreOp};
use ncpu_testkit::prop::{NoShrink, Prop};
use ncpu_testkit::rng::Rng;
use ncpu_testkit::{prop_assert, prop_assert_eq};

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0u8..32)).expect("index < 32")
}

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
];

const BRANCH_OPS: [BranchOp; 6] =
    [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Ge, BranchOp::Ltu, BranchOp::Geu];

const LOAD_OPS: [LoadOp; 5] =
    [LoadOp::Byte, LoadOp::Half, LoadOp::Word, LoadOp::ByteU, LoadOp::HalfU];

const STORE_OPS: [StoreOp; 3] = [StoreOp::Byte, StoreOp::Half, StoreOp::Word];

fn any_alu_op(rng: &mut Rng) -> AluOp {
    ALU_OPS[rng.gen_range(0..ALU_OPS.len())]
}

fn any_imm_op(rng: &mut Rng) -> AluOp {
    loop {
        let op = any_alu_op(rng);
        if op.has_immediate_form() {
            return op;
        }
    }
}

fn i12(rng: &mut Rng) -> i32 {
    rng.gen_range(-2048i32..=2047)
}

/// Any encodable instruction (all fields within their valid ranges).
fn any_instruction(rng: &mut Rng) -> Instruction {
    let u20 = |rng: &mut Rng| rng.gen_range(-(1i32 << 19)..(1 << 19)) << 12;
    match rng.gen_range(0u32..17) {
        0 => Instruction::Lui { rd: any_reg(rng), imm: u20(rng) },
        1 => Instruction::Auipc { rd: any_reg(rng), imm: u20(rng) },
        2 => Instruction::Jal {
            rd: any_reg(rng),
            offset: rng.gen_range(-(1i32 << 19)..(1 << 19)) * 2,
        },
        3 => Instruction::Jalr { rd: any_reg(rng), rs1: any_reg(rng), offset: i12(rng) },
        4 => Instruction::Branch {
            op: BRANCH_OPS[rng.gen_range(0..BRANCH_OPS.len())],
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: rng.gen_range(-2048i32..=2047) * 2,
        },
        5 => Instruction::Load {
            op: LOAD_OPS[rng.gen_range(0..LOAD_OPS.len())],
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        6 => Instruction::Store {
            op: STORE_OPS[rng.gen_range(0..STORE_OPS.len())],
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: i12(rng),
        },
        7 => {
            let op = any_imm_op(rng);
            let imm = i12(rng);
            let imm = if op.is_shift() { imm & 0x1f } else { imm };
            Instruction::OpImm { op, rd: any_reg(rng), rs1: any_reg(rng), imm }
        }
        8 => Instruction::Op {
            op: any_alu_op(rng),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Instruction::Ecall,
        10 => Instruction::Ebreak,
        11 => Instruction::MvNeu { rs1: any_reg(rng), neuron: rng.gen_range(0u16..4096) },
        12 => Instruction::TransBnn,
        13 => Instruction::TransCpu,
        14 => Instruction::TriggerBnn,
        15 => Instruction::SwL2 { rs1: any_reg(rng), rs2: any_reg(rng), offset: i12(rng) },
        _ => Instruction::LwL2 { rd: any_reg(rng), rs1: any_reg(rng), offset: i12(rng) },
    }
}

/// decode(encode(i)) == i for every valid instruction.
#[test]
fn instruction_round_trip() {
    Prop::new("isa::instruction_round_trip").run(
        |rng| NoShrink(any_instruction(rng)),
        |NoShrink(instr)| {
            let word = instr.encode().expect("generator only yields encodable instructions");
            prop_assert_eq!(decode(word).expect("own encoding decodes"), *instr);
            Ok(())
        },
    );
}

/// Any word that decodes re-encodes to a word that decodes identically
/// (encoding is canonical with respect to decoding).
#[test]
fn word_decode_is_stable() {
    Prop::new("isa::word_decode_is_stable").run(
        |rng| rng.gen::<u32>(),
        |&word| {
            if let Ok(instr) = decode(word) {
                let reenc = instr.encode().expect("decoded instructions are encodable");
                prop_assert_eq!(decode(reenc).expect("canonical word decodes"), instr);
            }
            Ok(())
        },
    );
}

/// Disassembly never panics and is non-empty for any decodable word.
#[test]
fn disasm_total() {
    Prop::new("isa::disasm_total").run(
        |rng| rng.gen::<u32>(),
        |&word| {
            if let Ok(instr) = decode(word) {
                prop_assert!(!instr.to_string().is_empty());
            }
            Ok(())
        },
    );
}

/// dest()/sources() agree with the encoding fields.
#[test]
fn dest_and_sources_are_consistent() {
    Prop::new("isa::dest_and_sources_are_consistent").run(
        |rng| NoShrink(any_instruction(rng)),
        |NoShrink(instr)| {
            if let Some(rd) = instr.dest() {
                prop_assert!(rd != Reg::ZERO);
            }
            let (s1, s2) = instr.sources();
            if s2.is_some() {
                prop_assert!(s1.is_some(), "rs2 implies rs1");
            }
            Ok(())
        },
    );
}

/// Disassembly is valid assembler input: for every decodable word,
/// `assemble(display(instr))` reproduces the instruction.
#[test]
fn disassembly_reassembles() {
    Prop::new("isa::disassembly_reassembles").run(
        |rng| NoShrink(any_instruction(rng)),
        |NoShrink(instr)| {
            let text = instr.to_string();
            let words = ncpu_isa::asm::assemble(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
            prop_assert_eq!(words.len(), 1, "one instruction per line: `{}`", text);
            prop_assert_eq!(decode(words[0]).expect("assembled word decodes"), *instr);
            Ok(())
        },
    );
}
