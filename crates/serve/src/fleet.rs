//! The worker fleet: builds scenarios, routes them to engines, executes
//! de-duplicated batches in parallel, and fills the result cache.
//!
//! Batch execution is deterministic end to end:
//!
//! 1. every request in the batch is materialized (scenario construction
//!    is memoized so identical specs never retrain a model);
//! 2. cache hits are cloned into a batch-local answer map up front, and
//!    unique misses are collected in first-appearance order and run via
//!    `ncpu_par`'s order-preserving `par_map_indexed`, so the worker
//!    count changes wall-clock time but never results;
//! 3. results are inserted into the cache *and* the answer map, then
//!    every request is answered from the answer map — the first
//!    appearance of a key counts as the miss, duplicates (within the
//!    batch or across batches) are hits serving the exact cached bytes.
//!    Answering from the batch-local map means the batch's own inserts
//!    can evict whatever LRU pressure demands (a batch with more unique
//!    misses than the whole cache is legal) without ever evicting an
//!    answer this batch still owes.
//!
//! Engine routing implements the service policy: steady-state
//! (parametric) workloads go to the event-driven engine, everything
//! else on an NCPU system walks lockstep, heterogeneous systems use the
//! analytic scheduler. A client may pin `lockstep`/`event` explicitly —
//! the lockstep/event pair is byte-identical by construction so either
//! answer is cacheable under the same key — but `analytic` on an NCPU
//! system is rejected: its reports are not in that equivalence class
//! and would poison the engine-invariant cache.

use ncpu_obs::Counters;
use ncpu_par::Pool;
use ncpu_soc::{
    Engine, EventDriven, Lockstep, Scenario, SystemConfig,
};

use crate::cache::{CacheEntry, Lru, ResultCache};
use crate::spec::{EnginePref, ScenarioSpec, WorkloadSpec};

/// Bound on the scenario-construction memo. Only trained (image/motion)
/// builds are memoized — parametric construction is cheap — and each
/// entry holds a full trained model, so the cap keeps a long-running
/// service's memory flat no matter how many distinct specs it sees.
const BUILD_MEMO_CAP: usize = 64;

/// Pinned counter names the fleet always publishes (zeroed at startup
/// so `stats` output is shape-stable before the first request).
pub const COUNTER_NAMES: [&str; 6] = [
    "serve.requests",
    "serve.batches",
    "serve.errors",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.cache.evictions",
];

/// The answer to one successful `run` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Deterministic request id (`r` + zero-padded sequence number).
    pub id: String,
    /// Canonical scenario hash, the cache key.
    pub key: u64,
    /// `"hit"` or `"miss"`.
    pub cache: &'static str,
    /// Engine that computed the report (for a hit: whichever engine
    /// computed the cached entry).
    pub engine: &'static str,
    /// Compact single-line report JSON — byte-identical for every
    /// request that shares a key, cached or fresh.
    pub report_json: String,
    /// Multi-line `RUN_*.json` artifact form (for the artifact sink).
    pub artifact_json: String,
}

/// The stateful service core shared by stdin and TCP front ends.
pub struct Fleet {
    pool: Pool,
    cache: ResultCache,
    builds: Lru<String, Scenario>,
    counters: Counters,
    next_id: u64,
}

fn routed_engine(spec: &ScenarioSpec) -> Result<&'static str, String> {
    match (spec.system, spec.engine) {
        (SystemConfig::Heterogeneous, EnginePref::Auto | EnginePref::Analytic) => Ok("analytic"),
        (SystemConfig::Heterogeneous, _) => {
            Err("engine: only \"analytic\" (or \"auto\") can run a heterogeneous system".to_string())
        }
        (SystemConfig::Ncpu { .. }, EnginePref::Analytic) => Err(
            "engine: \"analytic\" on an ncpu system is outside the byte-identical \
             lockstep/event equivalence class and cannot share the result cache"
                .to_string(),
        ),
        (SystemConfig::Ncpu { .. }, EnginePref::Lockstep) => Ok("lockstep"),
        (SystemConfig::Ncpu { .. }, EnginePref::Event) => Ok("event"),
        (SystemConfig::Ncpu { .. }, EnginePref::Auto) => {
            // Steady-state parametric items are memoizable and play to
            // the event queue's strengths; trained image/motion batches
            // walk lockstep (see `tests/event_floor.rs` for the honest
            // overhead bound that motivates this split).
            match spec.workload {
                WorkloadSpec::Parametric { .. } => Ok("event"),
                _ => Ok("lockstep"),
            }
        }
    }
}

/// Runs `scenario` on the routed engine and normalizes the artifact:
/// the ` (lockstep)` / ` (event)` config suffix is the single byte
/// difference between the twin engines, so stripping it makes cached
/// entries engine-invariant.
fn execute(engine: &'static str, key: u64, scenario: &Scenario) -> CacheEntry {
    let (mut report, rec) = match engine {
        "lockstep" => Lockstep.run(scenario),
        "event" => EventDriven.run(scenario),
        "analytic" => ncpu_soc::Analytic.run(scenario),
        other => unreachable!("unrouted engine {other}"),
    };
    report.config = report.config.replace(" (lockstep)", "").replace(" (event)", "");
    let artifact = report.artifact(&format!("serve_{key:016x}"), &rec);
    let artifact_json = artifact.to_json();
    let doc = ncpu_obs::json::parse(&artifact_json)
        .expect("artifact exporter emits well-formed JSON");
    CacheEntry {
        engine,
        compact_json: ncpu_obs::json::render_compact(&doc),
        artifact_json,
    }
}

impl Fleet {
    /// A fleet with `workers` simulation workers and a result cache of
    /// `cache_capacity` entries.
    pub fn new(workers: usize, cache_capacity: usize) -> Fleet {
        let mut counters = Counters::new();
        for name in COUNTER_NAMES {
            counters.set(name, 0);
        }
        Fleet {
            pool: Pool::with_workers(workers),
            cache: ResultCache::new(cache_capacity),
            builds: Lru::new(BUILD_MEMO_CAP),
            counters,
            next_id: 0,
        }
    }

    /// A fleet sized from `NCPU_THREADS` / host parallelism.
    pub fn from_env(cache_capacity: usize) -> Fleet {
        Fleet::new(ncpu_par::thread_count(), cache_capacity)
    }

    /// Simulation workers in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// A snapshot of the counter registry with the cache's eviction
    /// count folded in (hits/misses are counted per served request, so
    /// the planner's internal probes never skew them).
    pub fn counters(&self) -> Counters {
        let mut snapshot = self.counters.clone();
        let (_, _, evictions) = self.cache.stats();
        snapshot.set("serve.cache.evictions", evictions);
        snapshot
    }

    /// Next deterministic request id.
    pub fn assign_id(&mut self) -> String {
        self.next_id += 1;
        format!("r{:06}", self.next_id)
    }

    /// Builds a scenario from `spec`, memoizing the expensive trained
    /// (image/motion) builds in the bounded LRU so identical specs
    /// never retrain. Parametric construction is cheap enough to repeat.
    fn build_memoized(&mut self, spec: &ScenarioSpec) -> Scenario {
        if matches!(spec.workload, WorkloadSpec::Parametric { .. }) {
            return spec.build();
        }
        let memo = spec.memo_key();
        if let Some(scenario) = self.builds.get(&memo) {
            return scenario.clone();
        }
        let scenario = spec.build();
        self.builds.insert(memo, scenario.clone());
        scenario
    }

    /// Executes one batch of parsed requests (`Err` entries are parse
    /// failures that still occupy their slot so responses stay in
    /// request order). Returns one outcome per request, in order.
    pub fn run_batch(
        &mut self,
        requests: Vec<(String, Result<ScenarioSpec, String>)>,
    ) -> Vec<Result<RunOutcome, (String, String)>> {
        if requests.is_empty() {
            return Vec::new();
        }
        self.counters.add("serve.batches", 1);
        self.counters.add("serve.requests", requests.len() as u64);

        // Materialize every valid request: scenario (memoized build),
        // key, routed engine.
        type Prepared = Result<(String, u64, &'static str, Scenario), (String, String)>;
        let mut prepared: Vec<Prepared> = Vec::with_capacity(requests.len());
        for (id, parsed) in requests {
            match parsed {
                Err(e) => prepared.push(Err((id, e))),
                Ok(spec) => match routed_engine(&spec) {
                    Err(e) => prepared.push(Err((id, e))),
                    Ok(engine) => {
                        let scenario = self.build_memoized(&spec);
                        prepared.push(Ok((id, scenario.cache_key(), engine, scenario)));
                    }
                },
            }
        }

        // Plan the batch: clone hit entries into the batch-local answer
        // map *before* any insert, and collect unique misses in
        // first-appearance order. Requests are answered from `answers`,
        // never from post-insert cache residency — a batch with more
        // unique misses than the cache holds (or whose misses evict an
        // LRU-old key this batch also hits) must still answer every
        // request.
        let mut answers: std::collections::BTreeMap<u64, CacheEntry> =
            std::collections::BTreeMap::new();
        let mut jobs: Vec<(u64, &'static str, Scenario)> = Vec::new();
        let mut planned: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for item in prepared.iter().flatten() {
            let (_, key, engine, scenario) = item;
            if answers.contains_key(key) || planned.contains(key) {
                continue;
            }
            match self.cache.get(key) {
                Some(entry) => {
                    answers.insert(*key, entry.clone());
                }
                None => {
                    planned.insert(*key);
                    jobs.push((*key, engine, scenario.clone()));
                }
            }
        }

        // The parallel section: order-preserving fan-out over the fleet.
        let results = self.pool.par_map_indexed(jobs, |_i, (key, engine, scenario)| {
            (key, execute(engine, key, &scenario))
        });
        for (key, entry) in results {
            self.cache.insert(key, entry.clone());
            answers.insert(key, entry);
        }

        // Answer every request from the batch-local map, first
        // appearance of a planned key = miss.
        let mut seen_miss: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        prepared
            .into_iter()
            .map(|item| match item {
                Err((id, e)) => {
                    self.counters.add("serve.errors", 1);
                    Err((id, e))
                }
                Ok((id, key, _, _)) => {
                    let verdict = if planned.contains(&key) && seen_miss.insert(key) {
                        "miss"
                    } else {
                        "hit"
                    };
                    self.counters.add(
                        if verdict == "miss" { "serve.cache.misses" } else { "serve.cache.hits" },
                        1,
                    );
                    let entry = answers
                        .get(&key)
                        .expect("every batch key was pre-fetched or executed")
                        .clone();
                    Ok(RunOutcome {
                        id,
                        key,
                        cache: verdict,
                        engine: entry.engine,
                        report_json: entry.compact_json,
                        artifact_json: entry.artifact_json,
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_obs::json::parse;

    fn spec(text: &str) -> Result<ScenarioSpec, String> {
        ScenarioSpec::parse(&parse(text).expect("test JSON parses"))
    }

    fn batch(fleet: &mut Fleet, texts: &[&str]) -> Vec<Result<RunOutcome, (String, String)>> {
        let requests = texts
            .iter()
            .map(|t| (fleet.assign_id(), spec(t)))
            .collect();
        fleet.run_batch(requests)
    }

    #[test]
    fn duplicates_hit_and_serve_identical_bytes() {
        let mut fleet = Fleet::new(2, 64);
        let out = batch(
            &mut fleet,
            &[
                r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#,
                r#"{"cpu_fraction":0.25,"batch":2,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#,
            ],
        );
        let a = out[0].as_ref().unwrap();
        let b = out[1].as_ref().unwrap();
        let dup = out[2].as_ref().unwrap();
        assert_eq!((a.cache, b.cache, dup.cache), ("miss", "miss", "hit"));
        assert_eq!(a.key, dup.key);
        assert_ne!(a.key, b.key);
        assert_eq!(a.report_json, dup.report_json, "cache hit must be byte-identical");
        assert_eq!(a.id, "r000001");
        assert_eq!(dup.id, "r000003");
        let c = fleet.counters();
        assert_eq!(c.get("serve.cache.misses"), 2);
        assert_eq!(c.get("serve.cache.hits"), 1);
        assert_eq!(c.get("serve.requests"), 3);
    }

    #[test]
    fn cached_and_fresh_reports_are_byte_identical_across_batches() {
        let mut fleet = Fleet::new(1, 64);
        let text = r#"{"workload":"image","batch":4,"train_per_class":2,"epochs":1}"#;
        let cold = batch(&mut fleet, &[text]);
        let warm = batch(&mut fleet, &[text]);
        let cold = cold[0].as_ref().unwrap();
        let warm = warm[0].as_ref().unwrap();
        assert_eq!(cold.cache, "miss");
        assert_eq!(warm.cache, "hit");
        assert_eq!(cold.report_json, warm.report_json);
        assert_eq!(cold.artifact_json, warm.artifact_json);
    }

    #[test]
    fn lockstep_and_event_share_one_cache_entry() {
        let mut fleet = Fleet::new(2, 64);
        let out = batch(
            &mut fleet,
            &[
                r#"{"cpu_fraction":0.5,"batch":2,"cores":2,"engine":"lockstep"}"#,
                r#"{"cpu_fraction":0.5,"batch":2,"cores":2,"engine":"event"}"#,
            ],
        );
        let lock = out[0].as_ref().unwrap();
        let event = out[1].as_ref().unwrap();
        assert_eq!(lock.key, event.key, "engine choice must not fragment the cache");
        assert_eq!(lock.cache, "miss");
        assert_eq!(event.cache, "hit");
        assert_eq!(lock.report_json, event.report_json);
        assert!(
            !lock.report_json.contains("(lockstep)") && !lock.report_json.contains("(event)"),
            "the engine tag must be normalized out of served reports"
        );
    }

    #[test]
    fn mixed_role_fleets_serve_through_both_twin_engines() {
        // A heterogeneous 3-core fleet (two reconfigurable, one BNN
        // fixed-function, work-stealing): both twin engines accept it
        // and share one cache entry, like any homogeneous spec.
        let mut fleet = Fleet::new(2, 64);
        let topo = r#""topology":{"cores":[{},{"operating_point":0.7},{"role":"bnn"}],
                       "scheduler":"work_stealing"}"#;
        let out = batch(
            &mut fleet,
            &[
                &format!(r#"{{"cpu_fraction":0.5,"batch":4,{topo},"engine":"lockstep"}}"#),
                &format!(r#"{{"cpu_fraction":0.5,"batch":4,{topo},"engine":"event"}}"#),
                r#"{"cpu_fraction":0.5,"batch":4,"cores":3}"#,
            ],
        );
        let lock = out[0].as_ref().unwrap();
        let event = out[1].as_ref().unwrap();
        let plain = out[2].as_ref().unwrap();
        assert_eq!(lock.key, event.key, "engine choice must not fragment the cache");
        assert_eq!((lock.cache, event.cache), ("miss", "hit"));
        assert_eq!(lock.report_json, event.report_json);
        assert_ne!(lock.key, plain.key, "the topology is semantic");
        assert!(lock.report_json.contains("bnn2"), "fixed-function role in the report");
    }

    #[test]
    fn routing_policy_matches_the_documented_rules() {
        let auto_par = spec(r#"{"workload":"parametric"}"#).unwrap();
        let auto_img = spec(r#"{"workload":"image"}"#).unwrap();
        let hetero = spec(r#"{"system":"hetero"}"#).unwrap();
        assert_eq!(routed_engine(&auto_par).unwrap(), "event");
        assert_eq!(routed_engine(&auto_img).unwrap(), "lockstep");
        assert_eq!(routed_engine(&hetero).unwrap(), "analytic");
        let bad = spec(r#"{"engine":"analytic"}"#).unwrap();
        assert!(routed_engine(&bad).is_err(), "analytic on ncpu poisons the cache");
        let bad = spec(r#"{"system":"hetero","engine":"event"}"#).unwrap();
        assert!(routed_engine(&bad).is_err());
    }

    #[test]
    fn parse_errors_keep_their_slot_and_count() {
        let mut fleet = Fleet::new(1, 64);
        let out = batch(
            &mut fleet,
            &[
                r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#,
                r#"{"cpu_fraction":7}"#,
                r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#,
            ],
        );
        assert!(out[0].is_ok() && out[2].is_ok());
        let (id, msg) = out[1].as_ref().unwrap_err();
        assert_eq!(id, "r000002");
        assert!(msg.contains("cpu_fraction"));
        assert_eq!(fleet.counters().get("serve.errors"), 1);
    }

    #[test]
    fn batch_with_more_unique_misses_than_cache_capacity_serves_everyone() {
        // Capacity 2, five unique misses plus a duplicate in one batch:
        // the insert wave evicts three of its own results, but every
        // request is still answered from the batch-local map.
        let mut fleet = Fleet::new(2, 2);
        let out = batch(
            &mut fleet,
            &[
                r#"{"cpu_fraction":0.5,"batch":1,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":3,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":4,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":5,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":1,"cores":1}"#,
            ],
        );
        assert!(out.iter().all(Result::is_ok), "oversized batch must not drop requests");
        assert_eq!(out[5].as_ref().unwrap().cache, "hit");
        assert_eq!(
            out[0].as_ref().unwrap().report_json,
            out[5].as_ref().unwrap().report_json
        );
        let c = fleet.counters();
        assert_eq!(c.get("serve.cache.misses"), 5);
        assert_eq!(c.get("serve.cache.hits"), 1);
        assert_eq!(c.get("serve.cache.evictions"), 3);
    }

    #[test]
    fn hit_survives_being_evicted_by_the_same_batchs_misses() {
        // Fill a capacity-2 cache, then send one batch that hits an old
        // key and misses two new ones — the misses evict both resident
        // entries, but the hit was cloned before the insert wave.
        let mut fleet = Fleet::new(1, 2);
        let old = r#"{"cpu_fraction":0.5,"batch":1,"cores":1}"#;
        let cold = batch(&mut fleet, &[old, r#"{"cpu_fraction":0.5,"batch":2,"cores":1}"#]);
        let warm = batch(
            &mut fleet,
            &[
                old,
                r#"{"cpu_fraction":0.5,"batch":3,"cores":1}"#,
                r#"{"cpu_fraction":0.5,"batch":4,"cores":1}"#,
            ],
        );
        let hit = warm[0].as_ref().unwrap();
        assert_eq!(hit.cache, "hit");
        assert_eq!(hit.report_json, cold[0].as_ref().unwrap().report_json);
        assert!(warm[1].is_ok() && warm[2].is_ok());
    }

    #[test]
    fn eviction_counter_reaches_the_registry() {
        let mut fleet = Fleet::new(1, 2);
        batch(&mut fleet, &[r#"{"cpu_fraction":0.3,"batch":1,"cores":1}"#]);
        batch(&mut fleet, &[r#"{"cpu_fraction":0.4,"batch":1,"cores":1}"#]);
        batch(&mut fleet, &[r#"{"cpu_fraction":0.6,"batch":1,"cores":1}"#]);
        assert_eq!(fleet.counters().get("serve.cache.evictions"), 1);
    }
}
