//! The content-addressed result cache.
//!
//! Keys are [`ncpu_soc::Scenario::cache_key`] values — 64-bit FNV-1a
//! over the canonical scenario encoding — so two requests share an
//! entry **iff** every engine in the equivalence class would produce
//! byte-identical reports for them. Values are the finished, normalized
//! report artifacts (engine tag stripped), so a hit is a pure string
//! copy: no simulation, no re-rendering, no chance of divergence.
//!
//! Eviction is least-recently-used over a deterministic logical clock
//! (one tick per get/insert), so the eviction sequence is a pure
//! function of the request sequence — the same transcript always
//! produces the same hit/miss/eviction counters, regardless of wall
//! clock or worker count.
//!
//! The LRU itself is generic ([`Lru`]): the fleet reuses it to bound
//! the scenario-construction memo, so *every* long-lived map in the
//! service shares one eviction discipline.

use std::collections::BTreeMap;

/// A finished run, ready to serve.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Name of the engine that computed the entry.
    pub engine: &'static str,
    /// The normalized `RunArtifact` JSON (multi-line, `ncpu-run-v2`).
    pub artifact_json: String,
    /// The same artifact rendered compact, for single-line responses.
    pub compact_json: String,
}

/// The result cache: a bounded [`Lru`] keyed by canonical scenario hash.
pub type ResultCache = Lru<u64, CacheEntry>;

/// Deterministic bounded LRU over a logical clock.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, (u64, V)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Ord + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            capacity: capacity.max(1),
            tick: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts a miss
    /// on `None`.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((last_used, _)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(&self.entries[key].1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts `entry`, evicting the least-recently-used entry first if
    /// the cache is full. Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: K, entry: V) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache has an oldest entry");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
        self.entries.insert(key, (self.tick, entry));
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            engine: "event",
            artifact_json: format!("{{\n  \"name\": \"{tag}\"\n}}"),
            compact_json: format!("{{\"name\":\"{tag}\"}}"),
        }
    }

    #[test]
    fn hit_returns_the_exact_bytes_inserted() {
        let mut cache = ResultCache::new(4);
        cache.insert(7, entry("a"));
        assert_eq!(cache.get(&7).unwrap().compact_json, "{\"name\":\"a\"}");
        assert!(cache.get(&8).is_none());
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_eviction_is_deterministic_and_counted() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, entry("a"));
        cache.insert(2, entry("b"));
        assert!(cache.get(&1).is_some()); // refresh 1; now 2 is oldest
        cache.insert(3, entry("c"));
        assert!(cache.contains(&1) && cache.contains(&3) && !cache.contains(&2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 0, 1));
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, entry("a"));
        cache.insert(2, entry("b"));
        cache.insert(1, entry("a2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 0, 0));
        assert_eq!(cache.get(&1).unwrap().compact_json, "{\"name\":\"a2\"}");
    }
}
