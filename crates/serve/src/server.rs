//! The protocol front end: line-delimited JSON over stdin or TCP.
//!
//! One request per line, one response per line, responses in strict
//! request order. Request objects:
//!
//! * `{"op":"run", ...scenario fields...}` — or any object without an
//!   `"op"` key, which is treated as a run request. Enqueued into the
//!   current batch.
//! * `{"op":"flush"}` — execute the pending batch now and emit its
//!   responses.
//! * `{"op":"stats"}` — flush, then emit the counter registry.
//! * `{"op":"shutdown"}` — flush, emit a final summary line, stop.
//!
//! Batches also flush when they reach `batch_max` or on end of input.
//! Unparseable lines occupy their response slot as error lines, so a
//! client can always match response *N* to request *N*.
//!
//! Responses:
//!
//! ```text
//! {"id":"r000001","key":"00a1…","cache":"miss","engine":"event","report":{…}}
//! {"id":"r000002","error":"cpu_fraction: expected a number in (0, 1)"}
//! {"op":"stats","counters":{…}}
//! {"op":"shutdown","requests":2}
//! ```

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use ncpu_obs::export::json_string;
use ncpu_obs::json;
use ncpu_obs::Counters;

use crate::fleet::{Fleet, RunOutcome};
use crate::spec::ScenarioSpec;

/// Front-end configuration (the fleet itself is passed separately so
/// one fleet can outlive many connections).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Requests buffered before a forced flush.
    pub batch_max: usize,
    /// If set, every cache miss writes its `RUN_serve_<key>.json`
    /// artifact here (the trace_check-able sink).
    pub artifacts_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { batch_max: 32, artifacts_dir: None }
    }
}

fn write_artifact(dir: &std::path::Path, key: u64, artifact_json: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("RUN_serve_{key:016x}.json")), artifact_json)
}

/// How a front end reaches the fleet: exclusively (the stdin loop owns
/// it outright) or shared behind a mutex (one thread per TCP
/// connection). The lock is scoped to each call, so connections only
/// serialize on id assignment and batch execution — parsing and socket
/// I/O overlap freely, and one stalled client never blocks another's
/// accept. Counter updates happen entirely inside `run_batch` under the
/// lock, which is what keeps the registry's arithmetic exact no matter
/// how connections interleave.
pub trait FleetAccess {
    /// Next deterministic request id (see [`Fleet::assign_id`]).
    fn assign_id(&mut self) -> String;
    /// Executes one batch, one outcome per request in request order
    /// (see [`Fleet::run_batch`]).
    fn run_batch(
        &mut self,
        requests: Vec<(String, Result<ScenarioSpec, String>)>,
    ) -> Vec<Result<RunOutcome, (String, String)>>;
    /// Counter snapshot (see [`Fleet::counters`]).
    fn counters(&mut self) -> Counters;
}

impl FleetAccess for &mut Fleet {
    fn assign_id(&mut self) -> String {
        Fleet::assign_id(self)
    }
    fn run_batch(
        &mut self,
        requests: Vec<(String, Result<ScenarioSpec, String>)>,
    ) -> Vec<Result<RunOutcome, (String, String)>> {
        Fleet::run_batch(self, requests)
    }
    fn counters(&mut self) -> Counters {
        Fleet::counters(self)
    }
}

impl FleetAccess for &Mutex<&mut Fleet> {
    fn assign_id(&mut self) -> String {
        self.lock().expect("fleet lock poisoned").assign_id()
    }
    fn run_batch(
        &mut self,
        requests: Vec<(String, Result<ScenarioSpec, String>)>,
    ) -> Vec<Result<RunOutcome, (String, String)>> {
        self.lock().expect("fleet lock poisoned").run_batch(requests)
    }
    fn counters(&mut self) -> Counters {
        self.lock().expect("fleet lock poisoned").counters()
    }
}

fn flush_batch<F: FleetAccess, W: Write>(
    fleet: &mut F,
    pending: &mut Vec<(String, Result<ScenarioSpec, String>)>,
    out: &mut W,
    cfg: &ServeConfig,
) -> std::io::Result<()> {
    for outcome in fleet.run_batch(std::mem::take(pending)) {
        match outcome {
            Ok(run) => {
                if let Some(dir) = &cfg.artifacts_dir {
                    if run.cache == "miss" {
                        write_artifact(dir, run.key, &run.artifact_json)?;
                    }
                }
                writeln!(
                    out,
                    "{{\"id\":{},\"key\":\"{:016x}\",\"cache\":\"{}\",\"engine\":\"{}\",\"report\":{}}}",
                    json_string(&run.id),
                    run.key,
                    run.cache,
                    run.engine,
                    run.report_json
                )?;
            }
            Err((id, msg)) => {
                writeln!(out, "{{\"id\":{},\"error\":{}}}", json_string(&id), json_string(&msg))?;
            }
        }
    }
    out.flush()
}

/// Runs the full request/response loop over any line source and sink.
/// Returns the number of requests served. Exits on end of input or a
/// `shutdown` op (the latter also emits a summary line).
pub fn serve_lines<F: FleetAccess, R: BufRead, W: Write>(
    mut fleet: F,
    input: R,
    mut out: W,
    cfg: &ServeConfig,
) -> std::io::Result<u64> {
    let mut pending: Vec<(String, Result<ScenarioSpec, String>)> = Vec::new();
    let mut served: u64 = 0;
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let doc = match json::parse(trimmed) {
            Ok(doc) => doc,
            Err(e) => {
                served += 1;
                pending.push((fleet.assign_id(), Err(format!("bad JSON: {e}"))));
                if pending.len() >= cfg.batch_max.max(1) {
                    flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
                }
                continue;
            }
        };
        match doc.get("op").and_then(json::Json::as_str) {
            None | Some("run") => {
                served += 1;
                pending.push((fleet.assign_id(), ScenarioSpec::parse(&doc)));
                if pending.len() >= cfg.batch_max.max(1) {
                    flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
                }
            }
            Some("flush") => flush_batch(&mut fleet, &mut pending, &mut out, cfg)?,
            Some("stats") => {
                flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
                writeln!(out, "{{\"op\":\"stats\",\"counters\":{}}}", fleet.counters().to_json())?;
                out.flush()?;
            }
            Some("shutdown") => {
                flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
                writeln!(out, "{{\"op\":\"shutdown\",\"requests\":{served}}}")?;
                out.flush()?;
                return Ok(served);
            }
            Some(other) => {
                served += 1;
                pending.push((fleet.assign_id(), Err(format!("unknown op {other:?}"))));
                if pending.len() >= cfg.batch_max.max(1) {
                    flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
                }
            }
        }
    }
    flush_batch(&mut fleet, &mut pending, &mut out, cfg)?;
    Ok(served)
}

/// Serves connections from `listener` concurrently, sharing one fleet
/// (and therefore one result cache and counter registry) across all of
/// them. Each accepted connection runs on its own scoped thread, so a
/// client that connects and stalls never blocks service to anyone else;
/// within a connection, responses still come back in strict request
/// order (each connection's loop is sequential). `max_conns` bounds the
/// accept loop for tests; `None` accepts forever. A connection sending
/// `{"op":"shutdown"}` ends that connection only.
///
/// Per-connection I/O errors (a client resetting mid-line, sending
/// non-UTF-8 bytes, or a failed socket clone) are logged on the
/// connection's thread and the loop keeps accepting — one misbehaving
/// client must never take the long-running service down for everyone
/// else. Accept-level errors are likewise transient (`ECONNABORTED`
/// and friends) and are logged without counting toward `max_conns`.
pub fn serve_tcp(
    listener: std::net::TcpListener,
    fleet: &mut Fleet,
    cfg: &ServeConfig,
    max_conns: Option<usize>,
) -> std::io::Result<u64> {
    let shared = Mutex::new(fleet);
    let served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut conns = 0usize;
        for stream in listener.incoming() {
            match stream {
                Ok(stream) => {
                    conns += 1;
                    let (shared, served) = (&shared, &served);
                    scope.spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string());
                        let outcome = match stream.try_clone() {
                            Ok(clone) => {
                                serve_lines(shared, std::io::BufReader::new(clone), stream, cfg)
                            }
                            Err(e) => Err(e),
                        };
                        match outcome {
                            Ok(n) => {
                                served.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("ncpu serve: connection {peer} failed: {e}; continuing");
                            }
                        }
                    });
                }
                Err(e) => eprintln!("ncpu serve: accept failed: {e}; continuing"),
            }
            if max_conns.is_some_and(|max| conns >= max) {
                break;
            }
        }
    });
    Ok(served.load(std::sync::atomic::Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transcript(fleet: &mut Fleet, input: &str) -> String {
        let mut out = Vec::new();
        serve_lines(fleet, input.as_bytes(), &mut out, &ServeConfig::default())
            .expect("in-memory serve cannot fail");
        String::from_utf8(out).expect("responses are UTF-8")
    }

    #[test]
    fn responses_come_back_in_request_order_with_errors_in_place() {
        let mut fleet = Fleet::new(2, 64);
        let out = transcript(
            &mut fleet,
            "{\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n\
             this is not json\n\
             {\"op\":\"warp\"}\n\
             {\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n\
             {\"op\":\"shutdown\"}\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("{\"id\":\"r000001\"") && lines[0].contains("\"cache\":\"miss\""));
        assert!(lines[1].starts_with("{\"id\":\"r000002\"") && lines[1].contains("bad JSON"));
        assert!(lines[2].starts_with("{\"id\":\"r000003\"") && lines[2].contains("unknown op"));
        assert!(lines[3].starts_with("{\"id\":\"r000004\"") && lines[3].contains("\"cache\":\"hit\""));
        assert_eq!(lines[4], "{\"op\":\"shutdown\",\"requests\":4}");
        // Every response line is itself valid JSON.
        for line in &lines {
            json::parse(line).expect("response lines are well-formed JSON");
        }
    }

    #[test]
    fn duplicate_reports_are_byte_identical_in_the_transcript() {
        let mut fleet = Fleet::new(2, 64);
        let req = "{\"cpu_fraction\":0.25,\"batch\":2,\"cores\":2}\n";
        let out = transcript(&mut fleet, &format!("{req}{req}{req}{req}"));
        let reports: Vec<&str> = out
            .lines()
            .map(|l| l.split_once("\"report\":").expect("run response has a report").1)
            .collect();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| *r == reports[0]), "dup reports must match byte-for-byte");
        assert_eq!(fleet.counters().get("serve.cache.hits"), 3);
        assert_eq!(fleet.counters().get("serve.cache.misses"), 1);
    }

    #[test]
    fn stats_lines_carry_the_pinned_counters() {
        let mut fleet = Fleet::new(1, 64);
        let out = transcript(&mut fleet, "{\"op\":\"stats\"}\n");
        for name in crate::fleet::COUNTER_NAMES {
            assert!(out.contains(name), "stats must pin {name}: {out}");
        }
    }

    #[test]
    fn artifacts_land_on_disk_and_validate() {
        let dir = std::env::temp_dir().join(format!("ncpu_serve_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig { batch_max: 32, artifacts_dir: Some(dir.clone()) };
        let mut fleet = Fleet::new(1, 64);
        let mut out = Vec::new();
        serve_lines(
            &mut fleet,
            "{\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n".as_bytes(),
            &mut out,
            &cfg,
        )
        .expect("serve");
        let mut artifacts: Vec<_> = std::fs::read_dir(&dir)
            .expect("artifact dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        artifacts.sort();
        assert_eq!(artifacts.len(), 1);
        let doc = json::parse(&std::fs::read_to_string(&artifacts[0]).expect("read artifact"))
            .expect("artifact parses");
        json::validate_run_artifact(&doc).expect("artifact validates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_misbehaving_connection_does_not_kill_the_service() {
        let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping TCP test: loopback bind not permitted");
            return;
        };
        let addr = listener.local_addr().expect("bound listener has an address");
        let client = std::thread::spawn(move || {
            // Connection 1: invalid UTF-8 mid-stream makes `lines()`
            // error out inside serve_lines for this connection.
            let mut bad = std::net::TcpStream::connect(addr).expect("connect bad");
            bad.write_all(b"\xff\xfe garbage bytes \xff\n").expect("send garbage");
            drop(bad);
            // Connection 2: a well-formed client must still be served.
            let mut good = std::net::TcpStream::connect(addr).expect("connect good");
            good.write_all(b"{\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n{\"op\":\"shutdown\"}\n")
                .expect("send");
            let mut text = String::new();
            std::io::Read::read_to_string(&mut good, &mut text).expect("recv");
            text
        });
        let mut fleet = Fleet::new(1, 64);
        serve_tcp(listener, &mut fleet, &ServeConfig::default(), Some(2)).expect("serve survives");
        let reply = client.join().expect("client thread");
        assert!(reply.contains("\"cache\":\"miss\""), "second connection must be served: {reply}");
        assert!(reply.contains("\"op\":\"shutdown\""));
    }

    #[test]
    fn a_stalled_connection_does_not_block_later_ones() {
        let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping TCP test: loopback bind not permitted");
            return;
        };
        let addr = listener.local_addr().expect("bound listener has an address");
        let client = std::thread::spawn(move || {
            // Connection 1 connects first, sends nothing, and stays
            // open. Under the old sequential accept loop this parked
            // the whole service; with one scoped thread per connection
            // the second client is served while the first idles.
            let stall = std::net::TcpStream::connect(addr).expect("connect stalled");
            let mut live = std::net::TcpStream::connect(addr).expect("connect live");
            live.write_all(
                b"{\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n\
                  {\"cpu_fraction\":0.5,\"batch\":3,\"cores\":1}\n\
                  {\"op\":\"shutdown\"}\n",
            )
            .expect("send");
            let mut text = String::new();
            std::io::Read::read_to_string(&mut live, &mut text).expect("recv");
            // Only once the live connection is fully answered does the
            // stalled one hang up, letting serve_tcp drain.
            drop(stall);
            text
        });
        let mut fleet = Fleet::new(1, 64);
        let served =
            serve_tcp(listener, &mut fleet, &ServeConfig::default(), Some(2)).expect("serve");
        let reply = client.join().expect("client thread");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines.len(), 3, "two answers plus the shutdown summary: {reply}");
        // In-order within the connection: ids are assigned as this
        // connection's lines are read, so they ascend down the reply.
        assert!(lines[0].contains("\"id\":\"r000001\"") && lines[0].contains("\"cache\":\"miss\""));
        assert!(lines[1].contains("\"id\":\"r000002\"") && lines[1].contains("\"cache\":\"miss\""));
        assert_eq!(lines[2], "{\"op\":\"shutdown\",\"requests\":2}");
        assert_eq!(served, 2);
        assert_eq!(fleet.counters().get("serve.requests"), 2);
        assert_eq!(fleet.counters().get("serve.cache.misses"), 2);
    }

    #[test]
    fn tcp_round_trip_shares_the_cache_across_connections() {
        let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping TCP test: loopback bind not permitted");
            return;
        };
        let addr = listener.local_addr().expect("bound listener has an address");
        let client = std::thread::spawn(move || {
            let mut replies = Vec::new();
            for _ in 0..2 {
                let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                stream
                    .write_all(b"{\"cpu_fraction\":0.5,\"batch\":2,\"cores\":1}\n{\"op\":\"shutdown\"}\n")
                    .expect("send");
                let mut text = String::new();
                std::io::Read::read_to_string(&mut stream, &mut text).expect("recv");
                replies.push(text);
            }
            replies
        });
        let mut fleet = Fleet::new(1, 64);
        serve_tcp(listener, &mut fleet, &ServeConfig::default(), Some(2)).expect("serve");
        let replies = client.join().expect("client thread");
        assert!(replies[0].contains("\"cache\":\"miss\""));
        assert!(replies[1].contains("\"cache\":\"hit\""), "cache must persist across connections");
        let report = |t: &str| t.split_once("\"report\":").map(|(_, r)| r.to_string());
        assert_eq!(report(&replies[0]), report(&replies[1]));
    }
}
