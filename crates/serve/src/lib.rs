//! `ncpu-serve` — the scenario fleet service.
//!
//! A long-running front end over the simulation stack: clients submit
//! [`Scenario`](ncpu_soc::Scenario) specs as line-delimited JSON (over
//! stdin or TCP), the service batches them across an `ncpu-par` worker
//! fleet, and streams back finished `RunReport` artifacts — one
//! response line per request line, in request order.
//!
//! The headline mechanism is the **content-addressed result cache**:
//! every request is canonicalized by `ncpu-soc`'s
//! [`cache_key`](ncpu_soc::cache_key) (stable field order, normalized
//! operating point, engine-invariant fields excluded), so semantically
//! identical requests — regardless of field order, spelling of
//! defaults, or requested engine within the byte-identical
//! lockstep/event pair — share one entry and duplicate requests are
//! answered with the exact cached bytes. Hits, misses, and evictions
//! are pinned counters in the `ncpu-obs` registry, observable live via
//! the `stats` op.
//!
//! Module map:
//!
//! * [`spec`] — the JSON request surface and its hardened parser
//!   (fault knobs share `ncpu-fault`'s `NCPU_FAULT_*` code path);
//! * [`cache`] — deterministic bounded LRU keyed by canonical hash;
//! * [`fleet`] — batch planner, engine router (steady-state →
//!   event-driven, trained workloads → lockstep, heterogeneous →
//!   analytic), and the order-preserving parallel executor;
//! * [`server`] — the line protocol and the stdin/TCP front ends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod server;
pub mod spec;

pub use cache::{CacheEntry, ResultCache};
pub use fleet::{Fleet, RunOutcome, COUNTER_NAMES};
pub use server::{serve_lines, serve_tcp, FleetAccess, ServeConfig};
pub use spec::{EnginePref, ScenarioSpec, WorkloadSpec};
