//! Request specs: the JSON surface of the fleet service.
//!
//! A [`ScenarioSpec`] is the declarative form of an [`ncpu_soc::Scenario`]
//! plus one serve-only knob (the engine preference). Parsing is strict
//! about types and ranges but generous about omissions: every field has
//! the same default the library constructors use, so `{}` is a valid
//! request (the default parametric workload on the 2-core NCPU).
//!
//! The fault-plan fields reuse the hardened `NCPU_FAULT_*` parser from
//! `ncpu-fault` (itself built on `ncpu_obs::numparse`), so the service
//! and the environment reject exactly the same garbage with the same
//! diagnostics.

use ncpu_fault::FaultPlan;
use ncpu_obs::json::Json;
use ncpu_obs::numparse::{num_as_u32, num_as_u64, num_as_usize};
use ncpu_soc::topology::{CoreRole, CoreSpec, SchedulerKind, Topology};
use ncpu_soc::{pseudo_model, Scenario, SocConfig, SystemConfig, UseCase};

/// Which engine the client wants; `Auto` lets the router pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePref {
    /// Route by workload shape (the default).
    Auto,
    /// Force the cycle-walking lockstep engine.
    Lockstep,
    /// Force the event-queue engine.
    Event,
    /// Force the analytic scheduler (heterogeneous systems only).
    Analytic,
}

/// The workload half of a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Steady-state synthetic workload over the canonical pseudo-model.
    Parametric {
        /// Fraction of each item spent in CPU mode, `0 < f < 1`.
        cpu_fraction: f64,
        /// Items in the batch.
        batch: usize,
        /// Pseudo-model input width in bits.
        model_input: usize,
    },
    /// The paper's image-recognition use case (trains a real model).
    Image {
        /// Items in the batch.
        batch: usize,
        /// Training examples per class.
        train_per_class: usize,
        /// Training epochs.
        epochs: usize,
    },
    /// The paper's motion-sensor use case (trains a real model).
    Motion {
        /// Items in the batch.
        batch: usize,
        /// Training examples per class.
        train_per_class: usize,
        /// Training epochs.
        epochs: usize,
    },
}

/// One parsed, validated request — everything needed to build a
/// [`Scenario`] and route it to an engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// What to run.
    pub workload: WorkloadSpec,
    /// `Ncpu { cores }` or `Heterogeneous`.
    pub system: SystemConfig,
    /// Fabric parameters.
    pub soc: SocConfig,
    /// DVFS operating point, volts; `None` means nominal.
    pub operating_point: Option<f64>,
    /// Fault-injection plan.
    pub fault: FaultPlan,
    /// Explicit fabric topology; `None` is the homogeneous default.
    pub topology: Option<Topology>,
    /// Engine preference.
    pub engine: EnginePref,
}

impl Default for ScenarioSpec {
    fn default() -> ScenarioSpec {
        ScenarioSpec {
            workload: WorkloadSpec::Parametric { cpu_fraction: 0.5, batch: 8, model_input: 64 },
            system: SystemConfig::Ncpu { cores: 2 },
            soc: SocConfig::default(),
            operating_point: None,
            fault: FaultPlan::none(),
            topology: None,
            engine: EnginePref::Auto,
        }
    }
}

/// Parses a `"topology"` block:
///
/// ```json
/// {"cores": [{"role": "reconfigurable", "operating_point": 0.7, "bank": 0},
///            {"role": "bnn"}],
///  "banks": [196608, 65536],
///  "scheduler": "work_stealing"}
/// ```
///
/// Every field defaults like the library: omitted `role` is
/// reconfigurable, omitted `operating_point` inherits the scenario
/// point, omitted `bank` is 0, omitted `banks` is one full-width bank,
/// omitted `scheduler` is static. Structural validation is
/// [`Topology::from_specs`]'s; on top of it, the serve workloads are
/// all item batches, so a fleet with no reconfigurable core is rejected
/// here instead of panicking inside a worker.
fn parse_topology(t: &Json) -> Result<Topology, String> {
    let Json::Obj(fields) = t else {
        return Err("topology: expected an object".to_string());
    };
    for (key, _) in fields {
        if !["cores", "banks", "scheduler"].contains(&key.as_str()) {
            return Err(format!("topology: unknown field {key:?}"));
        }
    }
    let Some(Json::Arr(core_specs)) = t.get("cores") else {
        return Err("topology: expected a \"cores\" array of core specs".to_string());
    };
    let mut specs = Vec::with_capacity(core_specs.len());
    for (c, spec) in core_specs.iter().enumerate() {
        let Json::Obj(spec_fields) = spec else {
            return Err(format!("topology: core {c}: expected an object"));
        };
        for (key, _) in spec_fields {
            if !["role", "operating_point", "bank"].contains(&key.as_str()) {
                return Err(format!("topology: core {c}: unknown field {key:?}"));
            }
        }
        let role = match spec.get("role").map(|v| v.as_str().unwrap_or("?")) {
            None | Some("reconfigurable") | Some("ncpu") => CoreRole::Reconfigurable,
            Some("cpu") => CoreRole::CpuOnly,
            Some("bnn") => CoreRole::BnnOnly,
            Some(other) => {
                return Err(format!(
                    "topology: core {c}: role: expected \"reconfigurable\", \"cpu\", or \
                     \"bnn\", got {other:?}"
                ))
            }
        };
        let operating_point = match spec.get("operating_point") {
            None => None,
            Some(v) => Some(v.as_num().ok_or_else(|| {
                format!("topology: core {c}: operating_point: expected volts")
            })?),
        };
        let bank = want_usize(spec, "bank", 0).map_err(|e| format!("topology: core {c}: {e}"))?;
        specs.push(CoreSpec { role, operating_point, bank });
    }
    let bank_bytes = match t.get("banks") {
        None => vec![ncpu_soc::L2_BYTES],
        Some(Json::Arr(widths)) => widths
            .iter()
            .enumerate()
            .map(|(b, w)| {
                w.as_num()
                    .and_then(num_as_usize)
                    .ok_or_else(|| format!("topology: banks[{b}]: expected a byte width"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("topology: banks: expected an array of byte widths".to_string()),
    };
    let scheduler = match t.get("scheduler").map(|v| v.as_str().unwrap_or("?")) {
        None | Some("static") => SchedulerKind::Static,
        Some("work_stealing") => SchedulerKind::WorkStealing,
        Some(other) => {
            return Err(format!(
                "topology: scheduler: expected \"static\" or \"work_stealing\", got {other:?}"
            ))
        }
    };
    let topo = Topology::from_specs(specs, bank_bytes, scheduler)?;
    if topo.item_cores().is_empty() {
        return Err("topology: the serve workloads need at least one reconfigurable core".into());
    }
    Ok(topo)
}

fn want_usize(obj: &Json, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v.as_num().ok_or_else(|| format!("{key}: expected a number"))?;
            num_as_usize(n).ok_or_else(|| format!("{key}: expected a non-negative integer, got {n}"))
        }
    }
}

fn want_bool(obj: &Json, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key}: expected true or false")),
    }
}

impl ScenarioSpec {
    /// Parses a request object. `doc` may carry the fields directly or
    /// nest them under a `"scenario"` key; unknown fields are rejected
    /// so typos fail loudly instead of silently running the default —
    /// including top-level siblings of a nested `"scenario"` object,
    /// which would otherwise be silently ignored.
    pub fn parse(doc: &Json) -> Result<ScenarioSpec, String> {
        let (obj, allow_op) = match doc.get("scenario") {
            Some(nested) => {
                if let Json::Obj(top) = doc {
                    for (key, _) in top {
                        if key != "op" && key != "scenario" {
                            return Err(format!(
                                "unknown field {key:?} beside \"scenario\" (scenario fields \
                                 belong inside the nested object)"
                            ));
                        }
                    }
                }
                (nested, false)
            }
            None => (doc, true),
        };
        let Json::Obj(fields) = obj else {
            return Err("scenario: expected an object".to_string());
        };
        for (key, _) in fields {
            let known = KNOWN_FIELDS.contains(&key.as_str()) || (allow_op && key == "op");
            if !known {
                return Err(format!("unknown field {key:?}"));
            }
        }

        let workload = match obj.get("workload").map(|v| v.as_str().unwrap_or("?")) {
            None | Some("parametric") => {
                let frac = match obj.get("cpu_fraction") {
                    None => 0.5,
                    Some(v) => v
                        .as_num()
                        .filter(|f| *f > 0.0 && *f < 1.0)
                        .ok_or("cpu_fraction: expected a number in (0, 1)")?,
                };
                WorkloadSpec::Parametric {
                    cpu_fraction: frac,
                    batch: want_usize(obj, "batch", 8)?.max(1),
                    model_input: want_usize(obj, "model_input", 64)?.clamp(8, 4096),
                }
            }
            Some("image") => WorkloadSpec::Image {
                batch: want_usize(obj, "batch", 4)?.max(1),
                train_per_class: want_usize(obj, "train_per_class", 2)?.max(1),
                epochs: want_usize(obj, "epochs", 1)?.max(1),
            },
            Some("motion") => WorkloadSpec::Motion {
                batch: want_usize(obj, "batch", 2)?.max(1),
                train_per_class: want_usize(obj, "train_per_class", 4)?.max(1),
                epochs: want_usize(obj, "epochs", 2)?.max(1),
            },
            Some(other) => {
                return Err(format!(
                    "workload: expected \"parametric\", \"image\", or \"motion\", got {other:?}"
                ))
            }
        };

        let mut system = match obj.get("system").map(|v| v.as_str().unwrap_or("?")) {
            None | Some("ncpu") => {
                SystemConfig::Ncpu { cores: want_usize(obj, "cores", 2)?.clamp(1, 64) }
            }
            Some("hetero") | Some("heterogeneous") => SystemConfig::Heterogeneous,
            Some(other) => {
                return Err(format!("system: expected \"ncpu\" or \"hetero\", got {other:?}"))
            }
        };

        let mut soc = SocConfig::default();
        if let Some(v) = obj.get("dma_bytes_per_cycle") {
            let n = v.as_num().ok_or("dma_bytes_per_cycle: expected a number")?;
            soc.dma_bytes_per_cycle = num_as_u32(n)
                .filter(|b| *b >= 1)
                .ok_or_else(|| format!("dma_bytes_per_cycle: expected a positive integer, got {n}"))?;
        }
        if let Some(v) = obj.get("dma_setup_cycles") {
            let n = v.as_num().ok_or("dma_setup_cycles: expected a number")?;
            soc.dma_setup_cycles = num_as_u64(n)
                .ok_or_else(|| format!("dma_setup_cycles: expected a non-negative integer, got {n}"))?;
        }
        match obj.get("switch_policy").map(|v| v.as_str().unwrap_or("?")) {
            None => {}
            Some("zero") => soc.switch_policy = ncpu_core::SwitchPolicy::ZeroLatency,
            Some("naive") => soc.switch_policy = ncpu_core::SwitchPolicy::Naive,
            Some(other) => {
                return Err(format!("switch_policy: expected \"zero\" or \"naive\", got {other:?}"))
            }
        }
        soc.layer_pipelining = want_bool(obj, "layer_pipelining", soc.layer_pipelining)?;

        let operating_point = match obj.get("operating_point") {
            None => None,
            Some(v) => Some(
                v.as_num()
                    .filter(|f| *f >= 0.3 && *f <= 1.2)
                    .ok_or("operating_point: expected volts in [0.3, 1.2]")?,
            ),
        };

        let topology = match obj.get("topology") {
            None => None,
            Some(t) => {
                let SystemConfig::Ncpu { cores } = system else {
                    return Err("topology: describes NCPU fleets, not the hetero baseline".into());
                };
                let topo = parse_topology(t)?;
                // An explicit "cores" must agree; an omitted one is
                // inferred from the topology's core list.
                if obj.get("cores").is_some() && topo.cores() != cores {
                    return Err(format!(
                        "topology: {} core specs but cores is {cores}",
                        topo.cores()
                    ));
                }
                system = SystemConfig::Ncpu { cores: topo.cores() };
                Some(topo)
            }
        };

        // Fault knobs ride the NCPU_FAULT_* parser: `fault_seed` in a
        // request and `NCPU_FAULT_SEED` in the environment go through
        // the identical hardened code path. JSON numbers get the same
        // checked `num_as_u64` conversion as every other integer field
        // first — a fractional, negative, or past-2^53 value (where the
        // JSON parser's f64 is no longer exact) is rejected here rather
        // than re-rendered through a lossy cast.
        for key in KNOWN_FIELDS.iter().filter(|k| k.starts_with("fault_")) {
            if let Some(Json::Num(n)) = obj.get(key) {
                if num_as_u64(*n).is_none() {
                    return Err(format!("{key}: expected a non-negative integer, got {n}"));
                }
            }
        }
        let (fault, fault_errors) = FaultPlan::from_lookup(|var| {
            let key = var.strip_prefix("NCPU_").expect("fault vars are NCPU_-prefixed").to_lowercase();
            obj.get(&key).map(|v| match v {
                Json::Str(s) => s.clone(),
                Json::Num(n) => match num_as_u64(*n) {
                    Some(v) => v.to_string(),
                    None => format!("{n}"), // unreachable: pre-validated above
                },
                other => format!("{other:?}"),
            })
        });
        if let Some(e) = fault_errors.first() {
            return Err(e.replace("NCPU_", "").to_lowercase());
        }
        // The session-level invariants, surfaced as parse errors instead
        // of panics deep inside a worker thread.
        if fault.core_hang_ppm > 0 && fault.watchdog_cycles == 0 {
            return Err("fault_core_hang_ppm requires fault_watchdog_cycles > 0".to_string());
        }
        if fault.dma_stall_ppm > 0 && fault.dma_stall_cycles == 0 {
            return Err("fault_dma_stall_ppm requires fault_dma_stall_cycles > 0".to_string());
        }

        let engine = match obj.get("engine").map(|v| v.as_str().unwrap_or("?")) {
            None | Some("auto") => EnginePref::Auto,
            Some("lockstep") => EnginePref::Lockstep,
            Some("event") => EnginePref::Event,
            Some("analytic") => EnginePref::Analytic,
            Some(other) => {
                return Err(format!(
                    "engine: expected \"auto\", \"lockstep\", \"event\", or \"analytic\", got {other:?}"
                ))
            }
        };

        Ok(ScenarioSpec { workload, system, soc, operating_point, fault, topology, engine })
    }

    /// Materializes the spec into a runnable [`Scenario`]. This is where
    /// image/motion training happens, so callers memoize by spec (see
    /// `Fleet`). Serve pins `TraceLevel::Counters`: one trace level per
    /// cache domain is what makes cached and fresh reports comparable
    /// byte-for-byte.
    pub fn build(&self) -> Scenario {
        let usecase = match &self.workload {
            WorkloadSpec::Parametric { cpu_fraction, batch, model_input } => {
                UseCase::parametric(*cpu_fraction, *batch, pseudo_model(*model_input, 10, 10))
            }
            WorkloadSpec::Image { batch, train_per_class, epochs } => {
                UseCase::image(*batch, *train_per_class, *epochs)
            }
            WorkloadSpec::Motion { batch, train_per_class, epochs } => {
                UseCase::motion(*batch, *train_per_class, *epochs)
            }
        };
        let mut s = Scenario::new(usecase, self.system)
            .with_soc(self.soc)
            .with_trace(ncpu_obs::TraceLevel::Counters)
            .with_faults(self.fault);
        if let Some(v) = self.operating_point {
            s = s.with_operating_point(v);
        }
        if let Some(t) = &self.topology {
            s = s.with_topology(t.clone());
        }
        s
    }

    /// Deterministic memo key for scenario construction (training is
    /// expensive; identical specs must not retrain). Distinct from the
    /// result-cache key, which hashes the *built* scenario.
    pub fn memo_key(&self) -> String {
        format!("{self:?}")
    }
}

/// Every request field [`ScenarioSpec::parse`] accepts. The ten
/// `fault_*` names are the `NCPU_FAULT_*` variables with the `NCPU_`
/// prefix stripped and lowercased.
pub const KNOWN_FIELDS: [&str; 25] = [
    "topology",
    "workload",
    "cpu_fraction",
    "batch",
    "model_input",
    "train_per_class",
    "epochs",
    "system",
    "cores",
    "dma_bytes_per_cycle",
    "dma_setup_cycles",
    "switch_policy",
    "layer_pipelining",
    "operating_point",
    "engine",
    "fault_seed",
    "fault_sram_flip_ppm",
    "fault_dma_stall_ppm",
    "fault_dma_stall_cycles",
    "fault_dma_truncate_ppm",
    "fault_core_hang_ppm",
    "fault_watchdog_cycles",
    "fault_max_retries",
    "fault_backoff_cycles",
    "fault_quarantine_after",
];

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_obs::json::parse;

    fn spec_of(text: &str) -> Result<ScenarioSpec, String> {
        ScenarioSpec::parse(&parse(text).expect("test JSON parses"))
    }

    #[test]
    fn empty_object_is_the_default_spec() {
        assert_eq!(spec_of("{}").unwrap(), ScenarioSpec::default());
    }

    #[test]
    fn nested_and_flat_forms_agree() {
        let flat = spec_of(r#"{"workload":"parametric","cpu_fraction":0.25,"batch":3}"#).unwrap();
        let nested =
            spec_of(r#"{"scenario":{"workload":"parametric","cpu_fraction":0.25,"batch":3}}"#)
                .unwrap();
        assert_eq!(flat, nested);
    }

    #[test]
    fn unknown_fields_and_bad_values_are_rejected() {
        assert!(spec_of(r#"{"wrokload":"image"}"#).unwrap_err().contains("wrokload"));
        assert!(spec_of(r#"{"cpu_fraction":1.5}"#).unwrap_err().contains("cpu_fraction"));
        assert!(spec_of(r#"{"batch":-2}"#).unwrap_err().contains("batch"));
        assert!(spec_of(r#"{"engine":"warp"}"#).unwrap_err().contains("engine"));
        assert!(spec_of(r#"{"fault_seed":"junk"}"#).unwrap_err().contains("fault_seed"));
        assert!(spec_of(r#"[1,2]"#).is_err());
    }

    #[test]
    fn fault_fields_populate_the_plan() {
        let s = spec_of(r#"{"fault_seed":9,"fault_sram_flip_ppm":50}"#).unwrap();
        assert_eq!(s.fault.seed, 9);
        assert_eq!(s.fault.sram_flip_ppm, 50);
        assert!(s.fault.is_active());
    }

    #[test]
    fn fault_numbers_get_the_same_checked_conversion_as_everything_else() {
        // In (i64::MAX, 1.8e19): the old saturating i64 cast silently
        // mapped this to i64::MAX; it must be rejected instead.
        assert!(spec_of(r#"{"fault_seed":1e19}"#).unwrap_err().contains("fault_seed"));
        // Past 2^53 the JSON f64 is inexact even when it fits u64.
        assert!(spec_of(r#"{"fault_seed":9007199254740994}"#)
            .unwrap_err()
            .contains("fault_seed"));
        assert!(spec_of(r#"{"fault_seed":1.5}"#).unwrap_err().contains("fault_seed"));
        assert!(spec_of(r#"{"fault_seed":-1}"#).unwrap_err().contains("fault_seed"));
        assert!(spec_of(r#"{"fault_backoff_cycles":2.5}"#)
            .unwrap_err()
            .contains("fault_backoff_cycles"));
        // The 2^53 boundary itself is exact and accepted.
        let s = spec_of(r#"{"fault_seed":9007199254740992,"fault_sram_flip_ppm":1}"#).unwrap();
        assert_eq!(s.fault.seed, 1 << 53);
    }

    #[test]
    fn nested_scenario_rejects_stray_top_level_siblings() {
        let err = spec_of(r#"{"scenario":{"batch":3},"engine":"lockstep"}"#).unwrap_err();
        assert!(err.contains("engine"), "sibling keys must fail loudly: {err}");
        // `op` stays legal beside `scenario` (the protocol envelope)…
        assert!(spec_of(r#"{"op":"run","scenario":{"batch":3}}"#).is_ok());
        // …but not inside it.
        assert!(spec_of(r#"{"scenario":{"op":"run","batch":3}}"#).unwrap_err().contains("op"));
    }

    #[test]
    fn topology_block_parses_and_infers_cores() {
        let s = spec_of(
            r#"{"topology":{"cores":[{},{"role":"bnn"},{"operating_point":0.7,"bank":1}],
                "banks":[131072,65536],"scheduler":"work_stealing"}}"#,
        )
        .unwrap();
        assert_eq!(s.system, SystemConfig::Ncpu { cores: 3 });
        let topo = s.topology.as_ref().unwrap();
        assert_eq!(topo.label(), "R+B+R@0.7V");
        assert_eq!(topo.banks(), 2);
        assert_eq!(topo.scheduler(), SchedulerKind::WorkStealing);
        // Matching explicit core count is accepted; a mismatch is not.
        assert!(spec_of(r#"{"cores":2,"topology":{"cores":[{},{}]}}"#).is_ok());
        let err = spec_of(r#"{"cores":4,"topology":{"cores":[{},{}]}}"#).unwrap_err();
        assert!(err.contains("cores"), "{err}");
        // The built scenario carries the topology.
        assert!(s.build().explicit_topology().is_some());
    }

    #[test]
    fn topology_block_rejects_nonsense() {
        let e = spec_of(r#"{"system":"hetero","topology":{"cores":[{}]}}"#).unwrap_err();
        assert!(e.contains("hetero"), "{e}");
        let e = spec_of(r#"{"topology":{"cores":[{"role":"gpu"}]}}"#).unwrap_err();
        assert!(e.contains("role"), "{e}");
        let e = spec_of(r#"{"topology":{"cores":[{"rloe":"bnn"}]}}"#).unwrap_err();
        assert!(e.contains("rloe"), "{e}");
        let e = spec_of(r#"{"topology":{"cores":[{"role":"bnn"}]}}"#).unwrap_err();
        assert!(e.contains("reconfigurable"), "all-fixed fleets cannot serve items: {e}");
        let e = spec_of(r#"{"topology":{"cores":[{"bank":5}]}}"#).unwrap_err();
        assert!(e.contains("bank"), "{e}");
        let e = spec_of(r#"{"topology":{"cores":[{"operating_point":0.1}]}}"#).unwrap_err();
        assert!(e.contains("operating point"), "{e}");
        let e = spec_of(r#"{"topology":{"cores":[{}],"banks":[999999999]}}"#).unwrap_err();
        assert!(e.contains("bank widths"), "{e}");
        assert!(spec_of(r#"{"topology":{"weird":1,"cores":[{}]}}"#).is_err());
        assert!(spec_of(r#"{"topology":[1]}"#).is_err());
    }

    #[test]
    fn homogeneous_topology_block_builds_the_default_cache_key() {
        // An explicit homogeneous topology and a plain cores count land
        // in the same `ncpu-scenario-v2` cache key class.
        let explicit = spec_of(r#"{"topology":{"cores":[{},{}]}}"#).unwrap();
        let plain = spec_of(r#"{"cores":2}"#).unwrap();
        assert_eq!(explicit.build().cache_key(), plain.build().cache_key());
    }

    #[test]
    fn build_is_deterministic_and_respects_trace_pin() {
        let s = spec_of(r#"{"batch":2,"cores":1}"#).unwrap();
        assert_eq!(s.build().cache_key(), s.build().cache_key());
        assert_eq!(s.memo_key(), s.clone().memo_key());
    }
}
