//! The Neural CPU (NCPU): the paper's primary contribution.
//!
//! A single reconfigurable core that runs both as an in-order RV32I CPU
//! and as a 4-layer BNN accelerator, with the accelerator's SRAM banks
//! reused as the CPU's data cache so mode switches move **no data**:
//!
//! * CPU mode executes on the cycle-accurate pipeline from
//!   `ncpu-pipeline`, with data accesses routed through the accelerator's
//!   weight/image/output banks via the address arbiter (paper Fig. 4),
//! * the customized instructions drive reconfiguration: `mv_neu` loads
//!   transition neurons with BNN run configuration, `trans_bnn` switches
//!   to inference on whatever the program left in the image memory, and
//!   results land in the output memory for post-processing after the
//!   automatic switch back,
//! * the zero-latency switch protocol (paper Fig. 5) keeps layer-1
//!   weights resident and hides deeper-layer weight loads behind
//!   inference; the naive alternative (used by the switch-cost ablation)
//!   pays an explicit weight-reload stall.
//!
//! # Examples
//!
//! ```
//! use ncpu_core::{NcpuCore, SwitchPolicy};
//! use ncpu_accel::AccelConfig;
//! use ncpu_bnn::{BnnModel, Topology};
//! use ncpu_isa::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = BnnModel::zeros(&Topology::new(32, vec![8, 8], 4));
//! let mut core = NcpuCore::new(model, AccelConfig::default(), SwitchPolicy::ZeroLatency);
//! // Write a 32-bit image to the image memory, then classify it.
//! let img = core.image_base();
//! let program = asm::assemble(&format!(
//!     "li t0, {img}
//!      li t1, 0x0f0f0f0f
//!      sw t1, 0(t0)
//!      li t2, 1
//!      mv_neu t2, 0      # one image
//!      trans_bnn
//!      li t3, {out}
//!      lw a0, 0(t3)      # classification result
//!      ebreak",
//!     out = core.output_base(),
//! ))?;
//! core.load_program(program);
//! core.run(1_000_000)?;
//! assert!(core.pipeline().reg(ncpu_isa::Reg::A0) < 4);
//! assert_eq!(core.stats().images_inferred, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l2;
mod mem;
mod ncpu;

pub use l2::{BankPorts, SharedL2};
pub use mem::NcpuMem;
pub use ncpu::{
    CoreError, CoreStats, NcpuCore, ReplayDelta, ReplayState, StepOutcome, SwitchDma,
    SwitchPolicy, TRANSITION_NEURONS,
};
