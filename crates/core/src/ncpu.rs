//! The reconfigurable NCPU core: CPU pipeline + BNN accelerator in one.

use std::error::Error;
use std::fmt;

use ncpu_accel::{packed_row_bytes, AccelConfig, Accelerator};
use ncpu_bnn::{BitVec, BnnModel};
use ncpu_isa::interp::Event;
use ncpu_obs::{EventKind as ObsEvent, Mode, Recorder, TraceLevel};
use ncpu_pipeline::{PipeError, PipeStats, Pipeline, PipelineConfig};
use ncpu_sim::stats::Timeline;

use crate::l2::SharedL2;
use crate::mem::NcpuMem;

/// Number of transition-neuron configuration registers (paper Section V-B:
/// "several special transition neuron cells built at each neural layer").
pub const TRANSITION_NEURONS: usize = 16;

/// How mode switches are costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPolicy {
    /// The paper's zero-latency scheme (Fig. 5): layer-1 weights stay
    /// resident, deeper weights stream in behind inference, and the data
    /// cache is preloaded before the switch back — no stall cycles.
    ZeroLatency,
    /// Naive reconfiguration (the ablation baseline): every switch reloads
    /// all packed weights over the DMA and reloads the data cache on the
    /// way back.
    Naive,
}

/// Data-cache working set the naive policy reloads after BNN→CPU.
const NAIVE_DCACHE_PRELOAD_BYTES: u64 = 1024;

/// DMA parameters the [`SwitchPolicy::Naive`] reloads pay, mirroring the
/// SoC fabric's DMA engine (`setup + ceil(bytes / bandwidth)` per
/// transfer) so the switch-cost ablation tracks the configured fabric
/// instead of a hardcoded bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchDma {
    /// Bytes per cycle one reload transfer sustains.
    pub bytes_per_cycle: u32,
    /// Per-transfer setup latency in cycles.
    pub setup_cycles: u64,
}

impl Default for SwitchDma {
    /// The SoC fabric's default DMA operating point (4 B/cy, 16-cycle
    /// setup).
    fn default() -> SwitchDma {
        SwitchDma { bytes_per_cycle: 4, setup_cycles: 16 }
    }
}

impl SwitchDma {
    /// Cycles one reload of `bytes` occupies: setup plus streaming at the
    /// configured bandwidth.
    pub const fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.setup_cycles + bytes.div_ceil(self.bytes_per_cycle as u64)
    }
}

/// Counters of one NCPU core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Completed CPU→BNN→CPU round trips.
    pub switches: u64,
    /// Images classified in BNN mode.
    pub images_inferred: u64,
    /// Cycles spent in BNN mode (inference only).
    pub bnn_cycles: u64,
    /// Cycles lost to mode-switch reconfiguration (zero under
    /// [`SwitchPolicy::ZeroLatency`]).
    pub switch_overhead_cycles: u64,
}

/// Error raised by the NCPU core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The CPU pipeline faulted.
    Pipe(PipeError),
    /// `trans_bnn` was issued with more images configured than the image
    /// memory holds.
    ImageCapacity {
        /// Images requested via the transition neurons.
        images: usize,
        /// Images the image memory can hold.
        capacity: usize,
    },
    /// The cycle budget of [`NcpuCore::run`] was exhausted.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pipe(e) => write!(f, "pipeline: {e}"),
            CoreError::ImageCapacity { images, capacity } => {
                write!(f, "{images} images configured but image memory holds {capacity}")
            }
            CoreError::CycleLimit { limit } => write!(f, "no halt within {limit} cycles"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Pipe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipeError> for CoreError {
    fn from(e: PipeError) -> CoreError {
        CoreError::Pipe(e)
    }
}

/// What one [`NcpuCore::step_one`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One CPU-mode pipeline cycle executed.
    Executing,
    /// The core is in BNN mode; `remaining` busy cycles left.
    BnnBusy {
        /// Cycles until the switch back to CPU mode.
        remaining: u64,
    },
    /// `ebreak` has retired; the core is parked.
    Halted,
}

/// The architectural state one program execution on an [`NcpuCore`]
/// depends on, captured for replay caches: two items whose captured
/// states (and staged inputs) are equal execute identically, because
/// everything else a program can observe — PC, pipeline latches, halt
/// flag — is reset by [`NcpuCore::load_program`] before the item runs.
///
/// Deliberately excluded: monotonic counters (cycle counts, stats,
/// retire traces, SRAM access counters) and the recorder shards — they
/// advance, but never feed back into execution. Shared-L2 *content* is
/// also excluded; a replaying engine must verify the execution performed
/// no L2 reads before treating it as replayable (see
/// [`SharedL2::accesses`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayState {
    regs: [u32; 32],
    transition: [u32; TRANSITION_NEURONS],
    pending_triggers: u64,
    busy_remaining: u64,
    /// Per accelerator bank, in registration order: enable flag and raw
    /// contents (image/weight/output memories double as the CPU-mode data
    /// cache, so programs read and write them).
    banks: Vec<(bool, Vec<u8>)>,
}

/// The monotonic-counter deltas one program execution produced, applied
/// by [`NcpuCore::apply_replay`] when the execution itself is skipped.
#[derive(Debug, Clone)]
pub struct ReplayDelta {
    /// Pipeline counter deltas (cycles, retired, stalls, per-mnemonic).
    pub pipe: PipeStats,
    /// Core counter deltas (switches, inferences, BNN/switch cycles).
    pub core: CoreStats,
    /// Unified-clock cycles spent outside the pipeline (BNN + switches).
    pub extra_cycles: u64,
}

/// One reconfigurable Neural CPU core.
///
/// See the [crate documentation](crate) for the programming model and a
/// complete example.
#[derive(Debug, Clone)]
pub struct NcpuCore {
    pipeline: Pipeline<NcpuMem>,
    policy: SwitchPolicy,
    /// DMA operating point the naive switch policy reloads pay.
    switch_dma: SwitchDma,
    transition: [u32; TRANSITION_NEURONS],
    stats: CoreStats,
    /// Cycles spent outside the pipeline clock (BNN phases + switch costs).
    extra_cycles: u64,
    /// The core's shard of the event bus. Held at `Counters` or above so
    /// mode phases are always recorded — the pre-obs `Timeline` was
    /// unconditional, and run reports are derived from these spans.
    obs: Recorder,
    /// Start of the current CPU-mode span, in unified cycles.
    span_start: u64,
    /// `trigger_bnn` retirements not yet consumed by the SoC layer.
    pending_triggers: u64,
    /// Remaining BNN-mode busy cycles when stepped incrementally.
    busy_remaining: u64,
    /// Shared-L2 touch cycles (unified clock) drained from the pipeline's
    /// touch log; populated only while the log is enabled via
    /// [`NcpuCore::set_l2_touch_log`].
    l2_touches: Vec<u64>,
}

impl NcpuCore {
    /// Creates a core with a private 64-KiB L2.
    pub fn new(model: BnnModel, config: AccelConfig, policy: SwitchPolicy) -> NcpuCore {
        NcpuCore::with_l2(model, config, policy, SharedL2::new(64 * 1024))
    }

    /// Creates a core attached to a shared L2 (two-core SoC configuration).
    pub fn with_l2(
        model: BnnModel,
        config: AccelConfig,
        policy: SwitchPolicy,
        l2: SharedL2,
    ) -> NcpuCore {
        let accel = Accelerator::new(model, config);
        let mem = NcpuMem::new(accel, l2);
        NcpuCore {
            pipeline: Pipeline::with_config(Vec::new(), mem, PipelineConfig::default()),
            policy,
            switch_dma: SwitchDma::default(),
            transition: [0; TRANSITION_NEURONS],
            stats: CoreStats::default(),
            extra_cycles: 0,
            obs: Recorder::new(TraceLevel::Counters),
            span_start: 0,
            pending_triggers: 0,
            busy_remaining: 0,
            l2_touches: Vec::new(),
        }
    }

    /// The CPU pipeline (registers, performance counters).
    pub fn pipeline(&self) -> &Pipeline<NcpuMem> {
        &self.pipeline
    }

    /// Mutable access to the CPU pipeline (preload registers or data).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline<NcpuMem> {
        &mut self.pipeline
    }

    /// The embedded accelerator.
    pub fn accel(&self) -> &Accelerator {
        self.pipeline.mem().accel()
    }

    /// The switch policy in force.
    pub const fn policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// The DMA operating point charged by [`SwitchPolicy::Naive`] reloads.
    pub const fn switch_dma(&self) -> SwitchDma {
        self.switch_dma
    }

    /// Sets the DMA operating point for naive-switch reloads. The SoC
    /// layer calls this with its fabric DMA parameters so the ablation
    /// tracks `SocConfig`; no effect under [`SwitchPolicy::ZeroLatency`].
    pub fn set_switch_dma(&mut self, dma: SwitchDma) {
        self.switch_dma = dma;
    }

    /// Core counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Mode timeline (`"cpu"`/`"bnn"`/`"switch"` spans in unified cycles),
    /// derived from the core's event stream.
    pub fn timeline(&self) -> Timeline {
        Timeline::from_obs_events(self.obs.spans(), 0)
    }

    /// Raises the trace level: the core shard stays at `Counters` or
    /// above (phases are always recorded), the embedded pipeline follows
    /// `level` exactly (its instant events only exist at `Full`).
    pub fn set_obs_level(&mut self, level: TraceLevel) {
        self.obs.set_level(level.at_least_counters());
        self.pipeline.set_obs_level(level);
    }

    /// The core's recorder shard (spans in unified core cycles).
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable recorder shard, for the SoC layer to absorb. Pipeline
    /// events are synced into it at mode switches and at halt.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Drains the pipeline shard into the core shard, re-basing pipeline
    /// cycles onto the unified clock. Correct only when called before
    /// `extra_cycles` moves past the drained events — i.e. at `trans_bnn`
    /// service and at halt.
    fn sync_pipeline_obs(&mut self) {
        let offset = self.extra_cycles as i64;
        let NcpuCore { pipeline, obs, l2_touches, .. } = self;
        // Drain the pipeline's L2 touch log onto the unified clock first:
        // the log is filled at `Counters` too, where the event shard below
        // is empty and the early return fires.
        l2_touches.extend(pipeline.take_l2_touches().into_iter().map(|t| t + offset as u64));
        let shard = pipeline.obs_mut();
        if shard.events().is_empty() && shard.spans().is_empty() {
            return;
        }
        obs.absorb(shard, 0, offset);
    }

    /// Base address of the image memory in the CPU-mode address space.
    pub fn image_base(&self) -> u32 {
        self.accel().image_base()
    }

    /// Base address of the output memory in the CPU-mode address space.
    pub fn output_base(&self) -> u32 {
        self.accel().output_base()
    }

    /// Byte stride between consecutive packed images in the image memory.
    pub fn image_stride(&self) -> usize {
        packed_row_bytes(self.accel().model().topology().input())
    }

    /// Unified cycle count: pipeline cycles plus BNN-mode and switch time.
    pub fn total_cycles(&self) -> u64 {
        self.pipeline.stats().cycles + self.extra_cycles
    }

    /// Loads a program into the instruction cache and restarts at PC 0.
    pub fn load_program(&mut self, program: Vec<u32>) {
        self.pipeline.load_program(program);
        self.pipeline.restart_at(0);
    }

    /// Reads one transition-neuron configuration register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= TRANSITION_NEURONS`.
    pub fn transition_neuron(&self, index: usize) -> u32 {
        self.transition[index]
    }

    /// `trigger_bnn` retirements since the last call (consumed by the
    /// heterogeneous-baseline SoC model).
    pub fn take_pending_triggers(&mut self) -> u64 {
        std::mem::take(&mut self.pending_triggers)
    }

    /// Enables or disables the shared-L2 touch log. While on, every
    /// MEM-stage `lw_l2`/`sw_l2` access records its cycle; the SoC
    /// engines use these to find contended L2 windows without observing
    /// every cycle. Turning the log off clears it.
    pub fn set_l2_touch_log(&mut self, on: bool) {
        self.pipeline.set_l2_touch_log(on);
        if !on {
            self.l2_touches.clear();
        }
    }

    /// Drains the logged L2 touch cycles, stamped on the unified clock.
    /// A touch stamped `u` belongs to the step that advanced the core
    /// from cycle `u - 1` to `u`. Complete only after
    /// [`run`](Self::run) returns or a step reports
    /// [`StepOutcome::Halted`] (the log is synced at mode switches and
    /// at halt).
    pub fn take_l2_touch_cycles(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.l2_touches)
    }

    /// Cycles until this core next does something an SoC scheduler must
    /// observe: `None` once halted (the core will never act again),
    /// the remaining busy-region length in BNN mode (pure countdown —
    /// no memory traffic, no events until it ends), and `1` in CPU mode,
    /// where any cycle may touch shared state. An event-driven scheduler
    /// may therefore sleep this core for exactly the returned number of
    /// cycles without missing an observable action.
    pub fn next_event_in(&self) -> Option<u64> {
        if self.pipeline.is_halted() {
            None
        } else if self.busy_remaining > 0 {
            Some(self.busy_remaining)
        } else {
            Some(1)
        }
    }

    /// Captures the [`ReplayState`] of this core (see its docs for what
    /// is and is not included).
    pub fn replay_state(&self) -> ReplayState {
        ReplayState {
            regs: *self.pipeline.regs(),
            transition: self.transition,
            pending_triggers: self.pending_triggers,
            busy_remaining: self.busy_remaining,
            banks: self
                .pipeline
                .mem()
                .accel()
                .banks()
                .iter()
                .map(|(_, bank)| (bank.is_enabled(), bank.bytes().to_vec()))
                .collect(),
        }
    }

    /// Restores a captured [`ReplayState`]. Bank contents are restored
    /// with uncounted bulk loads so access counters keep their replay
    /// deltas (applied separately via [`apply_replay`](Self::apply_replay)).
    ///
    /// # Panics
    ///
    /// Panics if `state` was captured on a core with a different bank
    /// layout.
    pub fn restore_replay_state(&mut self, state: &ReplayState) {
        *self.pipeline.regs_mut() = state.regs;
        self.transition = state.transition;
        self.pending_triggers = state.pending_triggers;
        self.busy_remaining = state.busy_remaining;
        let banks = self.pipeline.mem_mut().accel_mut().banks_mut();
        assert_eq!(banks.bank_count(), state.banks.len(), "bank layout mismatch");
        for ((_, bank), (enabled, bytes)) in banks.iter_mut().zip(&state.banks) {
            bank.set_enabled(*enabled);
            bank.load(0, bytes);
        }
    }

    /// Advances the monotonic counters and the unified clock as if the
    /// execution that produced `delta` had been simulated again, without
    /// simulating it. The caller restores the architectural end state via
    /// [`restore_replay_state`](Self::restore_replay_state) and replays
    /// the recorded events itself; afterwards the core is byte-identical
    /// (in everything the SoC layer observes) to a core that executed
    /// the item.
    pub fn apply_replay(&mut self, delta: &ReplayDelta) {
        self.pipeline.apply_replay_stats(&delta.pipe);
        self.stats.switches += delta.core.switches;
        self.stats.images_inferred += delta.core.images_inferred;
        self.stats.bnn_cycles += delta.core.bnn_cycles;
        self.stats.switch_overhead_cycles += delta.core.switch_overhead_cycles;
        self.extra_cycles += delta.extra_cycles;
        // A completed execution always ends with `span_start` caught up
        // to the clock (see `run`'s tail).
        self.span_start = self.total_cycles();
    }

    /// Runs until `ebreak` retires, serving every mode switch on the way.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on pipeline faults, invalid BNN configuration,
    /// or cycle-budget exhaustion.
    pub fn run(&mut self, max_cycles: u64) -> Result<(), CoreError> {
        let deadline = self.total_cycles() + max_cycles;
        while !self.pipeline.is_halted() {
            if self.total_cycles() >= deadline {
                return Err(CoreError::CycleLimit { limit: max_cycles });
            }
            if let Some(event) = self.pipeline.step()? {
                match event {
                    Event::MvNeu { value, neuron } if (neuron as usize) < TRANSITION_NEURONS => {
                        self.transition[neuron as usize] = value;
                    }
                    Event::MvNeu { .. } => {}
                    Event::TransBnn => {
                        let stall = self.serve_bnn()?;
                        self.extra_cycles += stall;
                        self.span_start = self.total_cycles();
                        self.pipeline.resume();
                    }
                    Event::TransCpu => {
                        // Already in CPU mode: architecturally a no-op, but
                        // the serializing semantics parked fetch.
                        self.pipeline.resume();
                    }
                    Event::TriggerBnn => self.pending_triggers += 1,
                    Event::Halted => break,
                    _ => {}
                }
            }
        }
        let now = self.total_cycles();
        if now > self.span_start {
            self.obs.phase(0, "cpu", self.span_start, now);
            self.span_start = now;
        }
        self.sync_pipeline_obs();
        Ok(())
    }

    /// Serves one `trans_bnn`: classify the configured number of images
    /// sitting in the image memory, write results to the output memory,
    /// and account the BNN-mode spans. Returns the stall cycles the
    /// reconfiguration + inference occupy; the caller decides whether to
    /// charge them at once ([`run`](Self::run)) or count them down
    /// ([`step_one`](Self::step_one)).
    fn serve_bnn(&mut self) -> Result<u64, CoreError> {
        let images = (self.transition[0].max(1)) as usize;
        let stride = self.image_stride();
        let input_bits = self.accel().model().topology().input();
        let image_bytes = self.accel().config().banks.image;
        let capacity = image_bytes / stride;
        if images > capacity {
            return Err(CoreError::ImageCapacity { images, capacity });
        }

        // Close the CPU span and pull the pipeline's events onto the
        // unified clock while `extra_cycles` still matches their epoch.
        self.sync_pipeline_obs();
        let switch_at = self.total_cycles();
        if switch_at > self.span_start {
            self.obs.phase(0, "cpu", self.span_start, switch_at);
        }

        // Naive policy: reload every packed weight before inference, one
        // DMA transfer at the configured fabric operating point.
        let switch_in = match self.policy {
            SwitchPolicy::ZeroLatency => 0,
            SwitchPolicy::Naive => {
                self.switch_dma.transfer_cycles(self.accel().packed_weight_bytes() as u64)
            }
        };
        if switch_in > 0 {
            self.obs.phase(0, "switch", switch_at, switch_at + switch_in);
        }

        // Read packed images straight out of the image bank — the data the
        // CPU program just wrote, in place.
        let image_base = self.image_base();
        let output_base = self.output_base();
        let mem = self.pipeline.mem_mut();
        let (bank_id, base_off) = mem
            .accel_mut()
            .banks_mut()
            .resolve(image_base)
            .expect("image bank is always mapped");
        let inputs: Vec<BitVec> = {
            let bytes = mem.accel().banks().bank(bank_id).bytes();
            (0..images)
                .map(|i| {
                    let off = base_off as usize + i * stride;
                    BitVec::from_bytes(&bytes[off..off + stride], input_bits)
                })
                .collect()
        };

        let run = mem.accel_mut().run_batch(&inputs);

        // Results land in the output memory for CPU post-processing.
        for (i, &class) in run.outputs.iter().enumerate() {
            mem.accel_mut()
                .banks_mut()
                .write(output_base + 4 * i as u32, 4, class as u32)
                .expect("output bank holds one word per image");
        }

        let bnn_start = switch_at + switch_in;
        let bnn_end = bnn_start + run.total_cycles;
        if self.obs.wants_events() {
            self.obs.emit(0, bnn_start, ObsEvent::ModeSwitch { to: Mode::Bnn });
        }
        self.obs.phase(0, "bnn", bnn_start, bnn_end);
        self.obs.emit(
            0,
            bnn_start,
            ObsEvent::Inference { images: images as u32, end: bnn_end },
        );

        // Switch back: naive policy reloads the data cache.
        let switch_back = match self.policy {
            SwitchPolicy::ZeroLatency => 0,
            SwitchPolicy::Naive => self.switch_dma.transfer_cycles(NAIVE_DCACHE_PRELOAD_BYTES),
        };
        if switch_back > 0 {
            self.obs.phase(0, "switch", bnn_end, bnn_end + switch_back);
        }
        if self.obs.wants_events() {
            self.obs.emit(0, bnn_end + switch_back, ObsEvent::ModeSwitch { to: Mode::Cpu });
        }

        self.stats.switches += 1;
        self.stats.images_inferred += images as u64;
        self.stats.bnn_cycles += run.total_cycles;
        self.stats.switch_overhead_cycles += switch_in + switch_back;
        Ok(switch_in + run.total_cycles + switch_back)
    }

    /// Advances the core by exactly one cycle — the lock-step interface the
    /// co-simulated SoC uses. CPU-mode cycles step the pipeline; BNN-mode
    /// cycles count down the inference the `trans_bnn` started.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on pipeline faults or invalid BNN
    /// configuration.
    pub fn step_one(&mut self) -> Result<StepOutcome, CoreError> {
        if self.pipeline.is_halted() {
            return Ok(StepOutcome::Halted);
        }
        if self.busy_remaining > 0 {
            self.busy_remaining -= 1;
            self.extra_cycles += 1;
            if self.busy_remaining == 0 {
                self.span_start = self.total_cycles();
                self.pipeline.resume();
            }
            return Ok(StepOutcome::BnnBusy { remaining: self.busy_remaining });
        }
        if let Some(event) = self.pipeline.step()? {
            match event {
                Event::MvNeu { value, neuron } if (neuron as usize) < TRANSITION_NEURONS => {
                    self.transition[neuron as usize] = value;
                }
                Event::MvNeu { .. } => {}
                Event::TransBnn => {
                    let stall = self.serve_bnn()?;
                    if stall == 0 {
                        self.span_start = self.total_cycles();
                        self.pipeline.resume();
                    } else {
                        self.busy_remaining = stall;
                    }
                    return Ok(StepOutcome::BnnBusy { remaining: self.busy_remaining });
                }
                Event::TransCpu => self.pipeline.resume(),
                Event::TriggerBnn => self.pending_triggers += 1,
                Event::Halted => {
                    let now = self.total_cycles();
                    if now > self.span_start {
                        self.obs.phase(0, "cpu", self.span_start, now);
                        self.span_start = now;
                    }
                    self.sync_pipeline_obs();
                    return Ok(StepOutcome::Halted);
                }
                _ => {}
            }
        }
        Ok(StepOutcome::Executing)
    }

    /// Busy-region cycles left before the core returns to CPU mode
    /// (nonzero only between a `trans_bnn` served by
    /// [`step_one`](Self::step_one) and the switch back).
    ///
    /// During these cycles the core emits no events and touches no
    /// memory — they are pure countdown, which is what makes the bulk
    /// fast-forward of [`step_n`](Self::step_n) exact.
    pub const fn busy_remaining(&self) -> u64 {
        self.busy_remaining
    }

    /// Advances the core by up to `n` cycles in one call.
    ///
    /// Inside a BNN busy region this consumes `min(budget, remaining)`
    /// cycles with a single bookkeeping update instead of a per-cycle
    /// loop; the resulting state (cycle counts, spans, stats, pipeline)
    /// is byte-identical to calling [`step_one`](Self::step_one) that
    /// many times, because busy cycles decrement a counter and do
    /// nothing else. CPU-mode cycles step one at a time, so the call
    /// crosses region boundaries — CPU stretch into busy region and back
    /// — until the budget is spent or the core halts.
    ///
    /// A busy region that ends exactly on the budget boundary consumes
    /// exactly the budget: the final countdown cycle is not followed by
    /// an extra pipeline step (an earlier revision double-counted here
    /// by unconditionally falling through to `step_one`; the
    /// `budget_boundary_*` regression tests pin the fix).
    ///
    /// Returns the outcome after the advance and the cycles actually
    /// consumed (0 when already halted, `1..=n` otherwise — fewer than
    /// `n` only when the core halts mid-budget).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on pipeline faults or invalid BNN
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn step_n(&mut self, n: u64) -> Result<(StepOutcome, u64), CoreError> {
        assert!(n > 0, "step_n of zero cycles");
        let mut consumed = 0u64;
        let mut outcome = StepOutcome::Halted;
        while consumed < n {
            if self.pipeline.is_halted() {
                return Ok((StepOutcome::Halted, consumed));
            }
            if self.busy_remaining > 0 {
                let k = (n - consumed).min(self.busy_remaining);
                self.busy_remaining -= k;
                self.extra_cycles += k;
                consumed += k;
                if self.busy_remaining == 0 {
                    self.span_start = self.total_cycles();
                    self.pipeline.resume();
                }
                outcome = StepOutcome::BnnBusy { remaining: self.busy_remaining };
            } else {
                outcome = self.step_one()?;
                consumed += 1;
                if matches!(outcome, StepOutcome::Halted) {
                    break;
                }
            }
        }
        Ok((outcome, consumed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::Topology;
    use ncpu_isa::{asm, Reg};

    fn small_model() -> BnnModel {
        // Pseudo-random deterministic weights over a 32-bit input.
        let topo = Topology::new(32, vec![8, 8], 4);
        let mut layers = Vec::new();
        for l in 0..2 {
            let inputs = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..8)
                .map(|j| BitVec::from_bools((0..inputs).map(|i| (i * 3 + j + l) % 4 < 2)))
                .collect();
            layers.push(ncpu_bnn::BnnLayer::new(rows, vec![0; 8]));
        }
        BnnModel::new(topo, layers)
    }

    fn classify_program(core: &NcpuCore, image_word: u32, images: u32) -> Vec<u32> {
        asm::assemble(&format!(
            "li t0, {img}
             li t1, {image_word}
             sw t1, 0(t0)
             li t2, {images}
             mv_neu t2, 0
             trans_bnn
             li t3, {out}
             lw a0, 0(t3)
             ebreak",
            img = core.image_base(),
            out = core.output_base(),
        ))
        .expect("valid program")
    }

    #[test]
    fn end_to_end_classification_matches_reference() {
        let model = small_model();
        let mut core = NcpuCore::new(model.clone(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        let image_word = 0x0f0f_0f0fu32;
        let program = classify_program(&core, image_word, 1);
        core.load_program(program);
        core.run(1_000_000).unwrap();
        let expect = model.classify(&BitVec::from_bytes(&image_word.to_le_bytes(), 32));
        assert_eq!(core.pipeline().reg(Reg::A0), expect as u32);
        assert_eq!(core.stats().switches, 1);
        assert_eq!(core.stats().images_inferred, 1);
    }

    #[test]
    fn zero_latency_switch_has_no_overhead() {
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        let program = classify_program(&core, 0x1234_5678, 1);
        core.load_program(program);
        core.run(1_000_000).unwrap();
        assert_eq!(core.stats().switch_overhead_cycles, 0);
    }

    #[test]
    fn naive_switch_pays_weight_reload() {
        let mk = |policy| {
            let mut core = NcpuCore::new(small_model(), AccelConfig::default(), policy);
            let program = classify_program(&core, 0x1234_5678, 1);
            core.load_program(program);
            core.run(10_000_000).unwrap();
            core
        };
        let zero = mk(SwitchPolicy::ZeroLatency);
        let naive = mk(SwitchPolicy::Naive);
        assert!(naive.stats().switch_overhead_cycles > 0);
        assert_eq!(
            naive.total_cycles() - zero.total_cycles(),
            naive.stats().switch_overhead_cycles,
            "identical except for the reconfiguration stalls"
        );
        assert_eq!(
            zero.pipeline().reg(Reg::A0),
            naive.pipeline().reg(Reg::A0),
            "policy never changes results"
        );
    }

    #[test]
    fn naive_switch_cost_tracks_dma_parameters() {
        let mk = |dma| {
            let mut core =
                NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::Naive);
            core.set_switch_dma(dma);
            let program = classify_program(&core, 0x1234_5678, 1);
            core.load_program(program);
            core.run(10_000_000).unwrap();
            core
        };
        let narrow = mk(SwitchDma { bytes_per_cycle: 4, setup_cycles: 16 });
        let wide = mk(SwitchDma { bytes_per_cycle: 32, setup_cycles: 4 });
        assert!(
            wide.stats().switch_overhead_cycles < narrow.stats().switch_overhead_cycles,
            "a wider, cheaper DMA must shrink the naive reload stall"
        );
        // The charged stall is exactly two transfers at the configured
        // operating point: weights in, data cache back.
        let bytes = narrow.accel().packed_weight_bytes() as u64;
        for core in [&narrow, &wide] {
            let dma = core.switch_dma();
            assert_eq!(
                core.stats().switch_overhead_cycles,
                dma.transfer_cycles(bytes) + dma.transfer_cycles(1024)
            );
        }
    }

    #[test]
    fn timeline_alternates_modes() {
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        let program = classify_program(&core, 7, 1);
        core.load_program(program);
        core.run(1_000_000).unwrap();
        let timeline = core.timeline();
        let labels: Vec<&str> = timeline.spans().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["cpu", "bnn", "cpu"]);
        assert_eq!(timeline.total_cycles(), core.total_cycles());
    }

    #[test]
    fn transition_neurons_configure_batch() {
        let model = small_model();
        let mut core = NcpuCore::new(model.clone(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        // Two images written at stride 4.
        let program = asm::assemble(&format!(
            "li t0, {img}
             li t1, 0x0f0f0f0f
             sw t1, 0(t0)
             li t1, 0xf0f0f0f0
             sw t1, 4(t0)
             li t2, 2
             mv_neu t2, 0
             trans_bnn
             li t3, {out}
             lw a0, 0(t3)
             lw a1, 4(t3)
             ebreak",
            img = core.image_base(),
            out = core.output_base(),
        ))
        .unwrap();
        core.load_program(program);
        core.run(1_000_000).unwrap();
        assert_eq!(core.transition_neuron(0), 2);
        assert_eq!(core.stats().images_inferred, 2);
        let a = model.classify(&BitVec::from_bytes(&0x0f0f_0f0fu32.to_le_bytes(), 32));
        let b = model.classify(&BitVec::from_bytes(&0xf0f0_f0f0u32.to_le_bytes(), 32));
        assert_eq!(core.pipeline().reg(Reg::A0), a as u32);
        assert_eq!(core.pipeline().reg(Reg::A1), b as u32);
    }

    #[test]
    fn full_trace_unifies_pipeline_and_mode_events() {
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::Naive);
        core.set_obs_level(ncpu_obs::TraceLevel::Full);
        let program = classify_program(&core, 7, 1);
        core.load_program(program);
        core.run(10_000_000).unwrap();
        let events = core.obs().events();
        // Mode switches bracket the BNN phase.
        let switches: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                ObsEvent::ModeSwitch { to } => Some((to, e.cycle)),
                _ => None,
            })
            .collect();
        assert_eq!(switches.len(), 2);
        assert_eq!(switches[0].0, Mode::Bnn);
        assert_eq!(switches[1].0, Mode::Cpu);
        assert!(switches[0].1 < switches[1].1);
        // Pipeline retirements were re-based onto the unified clock: every
        // event must land inside the run.
        let retires: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                ObsEvent::Retire { .. } => Some(e.cycle),
                _ => None,
            })
            .collect();
        assert_eq!(retires.len() as u64, core.pipeline().stats().retired);
        assert!(retires.iter().all(|&c| c <= core.total_cycles()));
        // Retirements after the switch carry the BNN offset, so the last
        // one must land after the BNN phase ended.
        let timeline = core.timeline();
        let bnn_end = timeline.spans().iter().find(|s| s.label == "bnn").unwrap().end;
        assert!(*retires.last().unwrap() > bnn_end);
    }

    #[test]
    fn image_capacity_checked() {
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        let program = asm::assemble(
            "li t2, 100000
             mv_neu t2, 0
             trans_bnn
             ebreak",
        )
        .unwrap();
        core.load_program(program);
        let err = core.run(1_000_000).unwrap_err();
        assert!(matches!(err, CoreError::ImageCapacity { .. }));
    }

    #[test]
    fn cycle_budget_enforced() {
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        core.load_program(asm::assemble("loop: j loop").unwrap());
        assert!(matches!(core.run(100), Err(CoreError::CycleLimit { .. })));
    }

    #[test]
    fn data_stays_local_across_modes() {
        // Write a marker into the W2 bank (data cache in CPU mode), switch
        // modes, and confirm it survived — nothing was transferred or
        // clobbered.
        let mut core =
            NcpuCore::new(small_model(), AccelConfig::default(), SwitchPolicy::ZeroLatency);
        let w2_base = AccelConfig::default().banks.w1 as u32;
        let program = asm::assemble(&format!(
            "li t0, {w2}
             li t1, 0xcafe
             sw t1, 256(t0)
             li t2, 1
             mv_neu t2, 0
             trans_bnn
             lw a0, 256(t0)
             ebreak",
            w2 = w2_base,
        ))
        .unwrap();
        core.load_program(program);
        core.run(1_000_000).unwrap();
        assert_eq!(core.pipeline().reg(Reg::A0), 0xcafe);
    }
}

#[cfg(test)]
mod step_tests {
    use super::*;
    use ncpu_bnn::Topology;
    use ncpu_isa::{asm, Reg};

    fn small_model() -> BnnModel {
        let topo = Topology::new(32, vec![8, 8], 4);
        let mut layers = Vec::new();
        for l in 0..2 {
            let inputs = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..8)
                .map(|j| BitVec::from_bools((0..inputs).map(|i| (i * 3 + j + l) % 4 < 2)))
                .collect();
            layers.push(ncpu_bnn::BnnLayer::new(rows, vec![0; 8]));
        }
        BnnModel::new(topo, layers)
    }

    fn program(core: &NcpuCore) -> Vec<u32> {
        asm::assemble(&format!(
            "li t0, {img}
             li t1, 0xa5a5a5a5
             sw t1, 0(t0)
             li t2, 1
             mv_neu t2, 0
             trans_bnn
             li t3, {out}
             lw a0, 0(t3)
             ebreak",
            img = core.image_base(),
            out = core.output_base(),
        ))
        .expect("valid program")
    }

    /// `step_one` must reach exactly the same architectural state and
    /// unified cycle count as `run`.
    #[test]
    fn step_one_is_equivalent_to_run() {
        let mk = || {
            let mut c = NcpuCore::new(
                small_model(),
                ncpu_accel::AccelConfig::default(),
                SwitchPolicy::ZeroLatency,
            );
            let p = program(&c);
            c.load_program(p);
            c
        };
        let mut atomic = mk();
        atomic.run(1_000_000).unwrap();

        let mut stepped = mk();
        let mut saw_busy = false;
        loop {
            match stepped.step_one().unwrap() {
                StepOutcome::Halted => break,
                StepOutcome::BnnBusy { .. } => saw_busy = true,
                StepOutcome::Executing => {}
            }
        }
        assert!(saw_busy, "the mode switch must surface as busy cycles");
        assert_eq!(stepped.total_cycles(), atomic.total_cycles());
        assert_eq!(
            stepped.pipeline().reg(Reg::A0),
            atomic.pipeline().reg(Reg::A0)
        );
        assert_eq!(stepped.stats(), atomic.stats());
        assert_eq!(
            stepped.timeline().spans(),
            atomic.timeline().spans(),
            "mode timelines must agree"
        );
    }

    /// `step_n` is a bulk fast-forward: driving the core with large jumps
    /// must land in exactly the state a cycle-by-cycle `step_one` loop
    /// reaches — same clock, registers, stats, and mode timeline.
    #[test]
    fn step_n_is_equivalent_to_step_one() {
        let mk = || {
            let mut c = NcpuCore::new(
                small_model(),
                ncpu_accel::AccelConfig::default(),
                SwitchPolicy::Naive, // nonzero switch cost ⇒ long busy regions
            );
            let p = program(&c);
            c.load_program(p);
            c
        };
        let mut single = mk();
        loop {
            if matches!(single.step_one().unwrap(), StepOutcome::Halted) {
                break;
            }
        }
        for jump in [2u64, 7, 1_000_000] {
            let mut bulk = mk();
            let mut consumed = 0u64;
            loop {
                let (outcome, k) = bulk.step_n(jump).unwrap();
                consumed += k;
                if matches!(outcome, StepOutcome::Halted) {
                    break;
                }
            }
            assert_eq!(bulk.total_cycles(), single.total_cycles(), "jump={jump}");
            assert_eq!(consumed, bulk.total_cycles(), "every cycle accounted, jump={jump}");
            assert_eq!(bulk.pipeline().reg(Reg::A0), single.pipeline().reg(Reg::A0));
            assert_eq!(bulk.stats(), single.stats());
            assert_eq!(bulk.timeline().spans(), single.timeline().spans());
        }
    }

    /// Regression: a busy region ending exactly on the `step_n` budget
    /// boundary must consume exactly the budget — not fall through to an
    /// extra pipeline step that double-counts the final cycle.
    #[test]
    fn budget_boundary_consumes_exactly_the_region() {
        let mut core = NcpuCore::new(
            small_model(),
            ncpu_accel::AccelConfig::default(),
            SwitchPolicy::Naive, // nonzero switch cost ⇒ long busy region
        );
        let p = program(&core);
        core.load_program(p);
        // Step up to the trans_bnn service.
        let remaining = loop {
            if let StepOutcome::BnnBusy { remaining } = core.step_one().unwrap() {
                break remaining;
            }
        };
        assert!(remaining > 1, "naive switch must cost cycles");
        let before = core.total_cycles();
        let (outcome, consumed) = core.step_n(remaining).unwrap();
        assert_eq!(consumed, remaining, "budget == region length");
        assert_eq!(outcome, StepOutcome::BnnBusy { remaining: 0 });
        assert_eq!(core.total_cycles(), before + remaining, "no double-counted cycle");
        // The pipeline itself did not advance past the region.
        assert!(!core.pipeline().is_halted());
        assert_eq!(core.step_one().unwrap(), StepOutcome::Executing);
    }

    /// `step_n` crosses region boundaries: one big budget drives the
    /// whole program, and the halt stops consumption mid-budget.
    #[test]
    fn budget_boundary_crosses_regions_and_stops_at_halt() {
        let mk = || {
            let mut c = NcpuCore::new(
                small_model(),
                ncpu_accel::AccelConfig::default(),
                SwitchPolicy::Naive,
            );
            let p = program(&c);
            c.load_program(p);
            c
        };
        let mut single = mk();
        while !matches!(single.step_one().unwrap(), StepOutcome::Halted) {}
        let mut bulk = mk();
        let (outcome, consumed) = bulk.step_n(u64::MAX).unwrap();
        assert_eq!(outcome, StepOutcome::Halted);
        assert_eq!(consumed, single.total_cycles(), "halt stops the budget");
        assert_eq!(bulk.total_cycles(), single.total_cycles());
        assert_eq!(bulk.stats(), single.stats());
        assert_eq!(bulk.timeline().spans(), single.timeline().spans());
        // Parked: further budget consumes nothing.
        assert_eq!(bulk.step_n(10).unwrap(), (StepOutcome::Halted, 0));
    }

    /// `next_event_in` reports the exact sleep distance: 1 in CPU mode,
    /// the busy-region remainder in BNN mode, `None` at halt.
    #[test]
    fn next_event_in_tracks_mode() {
        let mut core = NcpuCore::new(
            small_model(),
            ncpu_accel::AccelConfig::default(),
            SwitchPolicy::Naive,
        );
        let p = program(&core);
        core.load_program(p);
        assert_eq!(core.next_event_in(), Some(1), "CPU mode steps every cycle");
        let remaining = loop {
            if let StepOutcome::BnnBusy { remaining } = core.step_one().unwrap() {
                break remaining;
            }
            assert_eq!(core.next_event_in(), Some(1));
        };
        assert_eq!(core.next_event_in(), Some(remaining));
        // Sleeping exactly that long lands on the region end, no further.
        let (_, consumed) = core.step_n(remaining).unwrap();
        assert_eq!(consumed, remaining);
        assert_eq!(core.next_event_in(), Some(1), "back in CPU mode");
        while !matches!(core.step_one().unwrap(), StepOutcome::Halted) {}
        assert_eq!(core.next_event_in(), None, "halted cores never act");
    }

    /// Stepping past halt stays halted without advancing the clock.
    #[test]
    fn step_one_parks_at_halt() {
        let mut core = NcpuCore::new(
            small_model(),
            ncpu_accel::AccelConfig::default(),
            SwitchPolicy::ZeroLatency,
        );
        core.load_program(asm::assemble("ebreak").unwrap());
        while !matches!(core.step_one().unwrap(), StepOutcome::Halted) {}
        let at = core.total_cycles();
        assert_eq!(core.step_one().unwrap(), StepOutcome::Halted);
        assert_eq!(core.total_cycles(), at);
    }
}
