//! The NCPU's CPU-mode memory port: accelerator banks as data cache.

use ncpu_accel::Accelerator;
use ncpu_pipeline::{MemFault, MemPort};

use crate::l2::SharedL2;

/// Routes the pipeline's MEM stage into the accelerator's SRAM banks
/// (the paper's memory-reuse scheme) and the shared L2.
///
/// In CPU mode the weight banks, image memory and output memory together
/// form the data cache, selected one-hot by the address arbiter
/// (Fig. 4(b)). The same bytes are what the accelerator reads in BNN
/// mode, so no data moves on a mode switch.
#[derive(Debug, Clone)]
pub struct NcpuMem {
    accel: Accelerator,
    l2: SharedL2,
}

impl NcpuMem {
    /// Wraps an accelerator's banks and an L2 window.
    pub fn new(accel: Accelerator, l2: SharedL2) -> NcpuMem {
        NcpuMem { accel, l2 }
    }

    /// The embedded accelerator.
    pub fn accel(&self) -> &Accelerator {
        &self.accel
    }

    /// Mutable access to the embedded accelerator.
    pub fn accel_mut(&mut self) -> &mut Accelerator {
        &mut self.accel
    }

    /// The shared L2 handle.
    pub fn l2(&self) -> &SharedL2 {
        &self.l2
    }
}

impl MemPort for NcpuMem {
    fn read_local(&mut self, addr: u32, width: u32) -> Result<u32, MemFault> {
        self.accel.banks_mut().read(addr, width).map_err(|_| MemFault { addr })
    }

    fn write_local(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MemFault> {
        self.accel.banks_mut().write(addr, width, value).map_err(|_| MemFault { addr })
    }

    fn read_l2(&mut self, addr: u32) -> Result<u32, MemFault> {
        self.l2.read_word(addr).map_err(|()| MemFault { addr })
    }

    fn write_l2(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        self.l2.write_word(addr, value).map_err(|()| MemFault { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_accel::AccelConfig;
    use ncpu_bnn::{BnnModel, Topology};

    fn mem() -> NcpuMem {
        let model = BnnModel::zeros(&Topology::new(32, vec![8, 8], 4));
        NcpuMem::new(Accelerator::new(model, AccelConfig::default()), SharedL2::new(1024))
    }

    #[test]
    fn local_accesses_hit_accelerator_banks() {
        let mut m = mem();
        let image_base = m.accel().image_base();
        m.write_local(image_base, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_local(image_base, 4).unwrap(), 0xdead_beef);
        // The same bytes are visible to the accelerator.
        let bank_byte = m.accel_mut().banks_mut().read(image_base, 1).unwrap();
        assert_eq!(bank_byte, 0xef);
    }

    #[test]
    fn weight_banks_serve_as_data_cache() {
        let mut m = mem();
        // Address 0 is inside the W1 bank — writable as data cache.
        m.write_local(0, 4, 7).unwrap();
        assert_eq!(m.read_local(0, 4).unwrap(), 7);
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut m = mem();
        let err = m.read_local(0x00ff_ffff, 4).unwrap_err();
        assert_eq!(err.addr, 0x00ff_ffff);
    }

    #[test]
    fn l2_window_shared() {
        let mut m = mem();
        m.write_l2(64, 99).unwrap();
        assert_eq!(m.l2().read_word(64).unwrap(), 99);
        assert!(m.read_l2(2048).is_err());
    }
}
