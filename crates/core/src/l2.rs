//! The shared global L2 memory.

use std::cell::RefCell;
use std::rc::Rc;

/// Byte-addressable global L2 shared by the SoC's cores and DMA engine.
///
/// Cheap to clone — clones share the same storage (the simulator is
/// single-threaded and deterministic, so interior mutability via
/// `RefCell` is sufficient).
///
/// # Examples
///
/// ```
/// use ncpu_core::SharedL2;
///
/// let l2 = SharedL2::new(1024);
/// let view = l2.clone();
/// l2.write_word(16, 7).unwrap();
/// assert_eq!(view.read_word(16).unwrap(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct SharedL2 {
    inner: Rc<RefCell<L2Inner>>,
}

#[derive(Debug)]
struct L2Inner {
    bytes: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl SharedL2 {
    /// Creates a zeroed L2 of `bytes` bytes.
    pub fn new(bytes: usize) -> SharedL2 {
        SharedL2 { inner: Rc::new(RefCell::new(L2Inner { bytes: vec![0; bytes], reads: 0, writes: 0 })) }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().bytes.len()
    }

    /// Reads a little-endian word; `None` if out of range.
    #[allow(clippy::result_unit_err)]
    pub fn read_word(&self, addr: u32) -> Result<u32, ()> {
        let mut inner = self.inner.borrow_mut();
        let end = addr as usize + 4;
        if end > inner.bytes.len() {
            return Err(());
        }
        inner.reads += 1;
        Ok(u32::from_le_bytes(inner.bytes[addr as usize..end].try_into().expect("4 bytes")))
    }

    /// Writes a little-endian word; `Err` if out of range.
    #[allow(clippy::result_unit_err)]
    pub fn write_word(&self, addr: u32, value: u32) -> Result<(), ()> {
        let mut inner = self.inner.borrow_mut();
        let end = addr as usize + 4;
        if end > inner.bytes.len() {
            return Err(());
        }
        inner.writes += 1;
        inner.bytes[addr as usize..end].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Bulk-stages `data` at `addr` without counting accesses (models
    /// host-side preloading through the FPGA interface, paper Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the data does not fit.
    pub fn stage(&self, addr: u32, data: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        let end = addr as usize + data.len();
        inner.bytes[addr as usize..end].copy_from_slice(data);
    }

    /// Copies `len` bytes starting at `addr` out of the L2.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn snapshot(&self, addr: u32, len: usize) -> Vec<u8> {
        self.inner.borrow().bytes[addr as usize..addr as usize + len].to_vec()
    }

    /// Counted word accesses `(reads, writes)`.
    pub fn accesses(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.reads, inner.writes)
    }
}

/// One cycle's L2 port occupancy at bank granularity.
///
/// The physical L2 is split into banks, each with its own single port;
/// arbitration is per bank, fixed priority (lowest requester first).
/// Both co-simulating engines drive their conflict accounting through
/// this tracker: the first claim on a bank in a cycle wins the port,
/// every later claim on the *same* bank that cycle is a conflict, and
/// claims on different banks never interact. With one bank this is
/// exactly the historical single-ported shared L2.
#[derive(Debug, Clone)]
pub struct BankPorts {
    taken: Vec<bool>,
}

impl BankPorts {
    /// A tracker for `banks` L2 banks (≥ 1), all ports free.
    pub fn new(banks: usize) -> BankPorts {
        assert!(banks >= 1, "an L2 needs at least one bank");
        BankPorts { taken: vec![false; banks] }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.taken.len()
    }

    /// Frees every bank port (call at each new cycle).
    pub fn reset(&mut self) {
        self.taken.iter_mut().for_each(|t| *t = false);
    }

    /// Claims `bank`'s port for this cycle. Returns `true` if the port
    /// was free (the claim wins), `false` if an earlier claimant holds
    /// it (the caller replays the cycle).
    pub fn claim(&mut self, bank: usize) -> bool {
        let free = !self.taken[bank];
        self.taken[bank] = true;
        free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_ports_arbitrate_per_bank() {
        let mut ports = BankPorts::new(2);
        assert_eq!(ports.banks(), 2);
        assert!(ports.claim(0), "first claim wins");
        assert!(!ports.claim(0), "same-bank second claim conflicts");
        assert!(ports.claim(1), "other bank is independent");
        ports.reset();
        assert!(ports.claim(0), "reset frees the ports");
    }

    #[test]
    fn single_bank_matches_the_single_ported_l2() {
        let mut ports = BankPorts::new(1);
        assert!(ports.claim(0));
        assert!(!ports.claim(0));
        assert!(!ports.claim(0));
    }

    #[test]
    fn clones_share_storage_and_counters() {
        let a = SharedL2::new(64);
        let b = a.clone();
        a.write_word(0, 42).unwrap();
        assert_eq!(b.read_word(0).unwrap(), 42);
        assert_eq!(b.accesses(), (1, 1));
    }

    #[test]
    fn bounds_checked() {
        let l2 = SharedL2::new(8);
        assert!(l2.read_word(8).is_err());
        assert!(l2.write_word(6, 0).is_err());
        assert!(l2.write_word(4, 0).is_ok());
    }

    #[test]
    fn staging_does_not_count() {
        let l2 = SharedL2::new(64);
        l2.stage(8, &[1, 2, 3, 4]);
        assert_eq!(l2.accesses(), (0, 0));
        assert_eq!(l2.read_word(8).unwrap(), 0x0403_0201);
        assert_eq!(l2.snapshot(8, 4), vec![1, 2, 3, 4]);
    }
}
