//! Voltage–frequency model fitted to the paper's measured curve.

/// Which physical core (and mode) a frequency query refers to.
///
/// The NCPU's added multiplexers lengthen the critical path slightly:
/// −4.1% fmax in BNN mode and −5.2% in CPU mode versus the standalone
/// cores (paper Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Standalone 5-stage RISC-V core.
    StandaloneCpu,
    /// Standalone BNN accelerator.
    StandaloneBnn,
    /// NCPU operating in CPU mode.
    NcpuCpuMode,
    /// NCPU operating in BNN mode.
    NcpuBnnMode,
}

impl CoreKind {
    /// Critical-path fmax factor relative to the standalone equivalent.
    pub const fn fmax_factor(self) -> f64 {
        match self {
            CoreKind::StandaloneCpu | CoreKind::StandaloneBnn => 1.0,
            CoreKind::NcpuCpuMode => 1.0 - 0.052,
            CoreKind::NcpuBnnMode => 1.0 - 0.041,
        }
    }

    /// Whether this is a reconfigurable NCPU core.
    pub const fn is_ncpu(self) -> bool {
        matches!(self, CoreKind::NcpuCpuMode | CoreKind::NcpuBnnMode)
    }
}

/// Frequency–voltage curve: `f(V) = K · (V − VT)^α / V`.
///
/// The exponent is an *empirical fit to the paper's measured Fig. 9(b)*
/// (960 MHz at 1 V, ≈18 MHz at 0.4 V, ≈2× from 0.4 V to 0.45 V), not a
/// textbook alpha-power value: near-threshold silicon measurements flatten
/// more gently than the analytical α≈1.3–2 law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dvfs {
    /// Fitted threshold voltage in volts.
    pub vt: f64,
    /// Fitted curvature exponent.
    pub alpha: f64,
    /// Scale constant in Hz (calibrated at 1 V).
    pub k_hz: f64,
    /// Minimum SRAM operating voltage; below this the SRAM rail stays at
    /// `sram_vmin` while the logic rail keeps scaling (Section VI-C).
    pub sram_vmin: f64,
}

impl Default for Dvfs {
    fn default() -> Dvfs {
        let vt = 0.20;
        let alpha = 3.6;
        // Calibrate K so the standalone cores reach 960 MHz at 1.0 V.
        let shape_1v = (1.0f64 - vt).powf(alpha) / 1.0;
        Dvfs { vt, alpha, k_hz: 960.0e6 / shape_1v, sram_vmin: 0.55 }
    }
}

impl Dvfs {
    /// Operating frequency at `v` volts for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not within the validated 0.4–1.1 V range.
    pub fn freq_hz(&self, v: f64, kind: CoreKind) -> f64 {
        assert!((0.4..=1.1).contains(&v), "voltage {v} outside validated range");
        self.k_hz * (v - self.vt).powf(self.alpha) / v * kind.fmax_factor()
    }

    /// The voltage the SRAM rail actually sees when the logic rail is `v`.
    pub fn sram_voltage(&self, v: f64) -> f64 {
        v.max(self.sram_vmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors() {
        let d = Dvfs::default();
        let f1 = d.freq_hz(1.0, CoreKind::StandaloneBnn);
        assert!((f1 - 960.0e6).abs() < 1.0, "960 MHz at 1 V by construction");
        let f04 = d.freq_hz(0.4, CoreKind::StandaloneBnn);
        assert!(
            (14.0e6..22.0e6).contains(&f04),
            "≈18 MHz at 0.4 V, got {:.1} MHz",
            f04 / 1e6
        );
    }

    #[test]
    fn near_threshold_slope_matches_measurement() {
        // Fig. 9(b): roughly doubling from 0.4 V to 0.45 V.
        let d = Dvfs::default();
        let r = d.freq_hz(0.45, CoreKind::StandaloneCpu) / d.freq_hz(0.4, CoreKind::StandaloneCpu);
        assert!((1.7..2.4).contains(&r), "slope ratio {r}");
    }

    #[test]
    fn monotone_in_voltage() {
        let d = Dvfs::default();
        let mut prev = 0.0;
        for step in 0..=14 {
            let v = 0.4 + step as f64 * 0.05;
            let f = d.freq_hz(v, CoreKind::NcpuCpuMode);
            assert!(f > prev, "f must rise with voltage");
            prev = f;
        }
    }

    #[test]
    fn ncpu_pays_fmax_penalty() {
        let d = Dvfs::default();
        let base = d.freq_hz(1.0, CoreKind::StandaloneBnn);
        let bnn = d.freq_hz(1.0, CoreKind::NcpuBnnMode);
        let cpu = d.freq_hz(1.0, CoreKind::NcpuCpuMode);
        assert!(((base - bnn) / base - 0.041).abs() < 1e-9);
        assert!(((base - cpu) / base - 0.052).abs() < 1e-9);
    }

    #[test]
    fn sram_rail_floors_at_vmin() {
        let d = Dvfs::default();
        assert_eq!(d.sram_voltage(0.4), 0.55);
        assert_eq!(d.sram_voltage(0.7), 0.7);
    }

    #[test]
    #[should_panic(expected = "outside validated range")]
    fn voltage_range_enforced() {
        Dvfs::default().freq_hz(0.2, CoreKind::StandaloneCpu);
    }
}
