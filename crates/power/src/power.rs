//! Dynamic and leakage power, energy per cycle, and TOPS/W.

use crate::area::SystemAreas;
use crate::dvfs::{CoreKind, Dvfs};

/// The calibrated power model.
///
/// See the [crate documentation](crate) for the calibration anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Frequency model (shared by all cores on the die).
    pub dvfs: Dvfs,
    /// Switched capacitance of CPU-mode execution in nF
    /// (≈110 mW at 1 V, 960 MHz — Table II).
    pub cdyn_cpu_nf: f64,
    /// Switched capacitance of BNN-mode execution in nF at the 400-neuron
    /// (4 × 100) design point (241 mW at 1 V, 960 MHz — Fig. 7).
    pub cdyn_bnn_nf: f64,
    /// NCPU dynamic-power overhead in BNN mode (Fig. 11(a): +5.8%).
    pub ncpu_bnn_overhead: f64,
    /// NCPU dynamic-power overhead in CPU mode (Fig. 11: +14.7% average).
    pub ncpu_cpu_overhead: f64,
    /// Logic leakage density at 1 V, mW/mm².
    pub leak_logic_mw_per_mm2: f64,
    /// SRAM leakage density at 1 V, mW/mm².
    pub leak_sram_mw_per_mm2: f64,
    /// Leakage voltage slope: `P ∝ V · exp(λ(V − 1))`.
    pub leak_lambda: f64,
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel {
            dvfs: Dvfs::default(),
            cdyn_cpu_nf: 0.110,
            cdyn_bnn_nf: 0.251,
            ncpu_bnn_overhead: 0.058,
            ncpu_cpu_overhead: 0.147,
            leak_logic_mw_per_mm2: 8.0,
            leak_sram_mw_per_mm2: 1.5,
            leak_lambda: 1.5,
        }
    }
}

impl PowerModel {
    /// Voltage scaling factor of leakage relative to 1 V.
    fn leak_factor(&self, v: f64) -> f64 {
        v * (self.leak_lambda * (v - 1.0)).exp()
    }

    /// Leakage power of a silicon region at logic voltage `v`, honouring
    /// the SRAM rail's Vmin floor (the SRAM rail stops at 0.55 V while the
    /// logic rail keeps scaling, as the chip measurement did).
    pub fn leakage_mw(&self, areas: &SystemAreas, v: f64) -> f64 {
        let v_sram = self.dvfs.sram_voltage(v);
        areas.logic_mm2 * self.leak_logic_mw_per_mm2 * self.leak_factor(v)
            + areas.sram_mm2 * self.leak_sram_mw_per_mm2 * self.leak_factor(v_sram)
    }

    /// Dynamic power of a core running flat out in the given mode at `v`,
    /// in mW. `activity` scales with workload intensity (1.0 = the
    /// benchmark conditions the model was calibrated at).
    pub fn dynamic_mw(&self, kind: CoreKind, v: f64, activity: f64) -> f64 {
        let f = self.dvfs.freq_hz(v, kind);
        let (c_nf, overhead) = match kind {
            CoreKind::StandaloneCpu => (self.cdyn_cpu_nf, 1.0),
            CoreKind::NcpuCpuMode => (self.cdyn_cpu_nf, 1.0 + self.ncpu_cpu_overhead),
            CoreKind::StandaloneBnn => (self.cdyn_bnn_nf, 1.0),
            CoreKind::NcpuBnnMode => (self.cdyn_bnn_nf, 1.0 + self.ncpu_bnn_overhead),
        };
        // P[mW] = C[nF] · V² · f[Hz] · 1e-6
        c_nf * v * v * f * 1.0e-6 * overhead * activity
    }

    /// Total power (dynamic + leakage over `areas`) in mW.
    pub fn total_mw(&self, kind: CoreKind, areas: &SystemAreas, v: f64, activity: f64) -> f64 {
        self.dynamic_mw(kind, v, activity) + self.leakage_mw(areas, v)
    }

    /// Energy per clock cycle in pJ (dynamic + leakage share).
    pub fn energy_per_cycle_pj(
        &self,
        kind: CoreKind,
        areas: &SystemAreas,
        v: f64,
        activity: f64,
    ) -> f64 {
        let f = self.dvfs.freq_hz(v, kind);
        self.total_mw(kind, areas, v, activity) / f * 1.0e9
    }

    /// BNN compute efficiency in TOPS/W: one ±1 MAC per neuron per cycle.
    ///
    /// At the chip's design point (400 neurons) this reproduces the
    /// paper's 1.6 TOPS/W at 1 V and 6.0 TOPS/W peak at 0.4 V.
    pub fn bnn_tops_per_watt(&self, v: f64, total_neurons: usize) -> f64 {
        // Leakage of one NCPU core at the 100-neuron design point.
        let areas = crate::area::AreaModel::default().ncpu_core(total_neurons / 4);
        let e_pj = self.energy_per_cycle_pj(CoreKind::NcpuBnnMode, &areas, v, 1.0);
        total_neurons as f64 / e_pj
    }

    /// Scales the BNN switched capacitance for a different array size
    /// (active neurons dominate BNN dynamic power).
    pub fn cdyn_bnn_scaled_nf(&self, total_neurons: usize) -> f64 {
        self.cdyn_bnn_nf * total_neurons as f64 / 400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;

    fn grid() -> Vec<f64> {
        (0..=6).map(|i| 0.4 + 0.1 * i as f64).collect()
    }

    #[test]
    fn anchor_bnn_power_at_1v() {
        let pm = PowerModel::default();
        let p = pm.dynamic_mw(CoreKind::StandaloneBnn, 1.0, 1.0);
        assert!((p - 241.0).abs() < 2.0, "241 mW at 1 V, got {p}");
    }

    #[test]
    fn anchor_cpu_power_at_1v() {
        let pm = PowerModel::default();
        let p = pm.dynamic_mw(CoreKind::StandaloneCpu, 1.0, 1.0);
        assert!((100.0..115.0).contains(&p), "≈106-112 mW at 1 V, got {p}");
    }

    #[test]
    fn anchor_milliwatt_class_at_0v4() {
        let pm = PowerModel::default();
        let areas = AreaModel::default().ncpu_core(100);
        let bnn = pm.total_mw(CoreKind::NcpuBnnMode, &areas, 0.4, 1.0);
        let cpu = pm.total_mw(CoreKind::NcpuCpuMode, &areas, 0.4, 1.0);
        assert!((0.5..2.5).contains(&bnn), "≈1.2 mW BNN at 0.4 V, got {bnn}");
        assert!((0.3..1.8).contains(&cpu), "≈0.8 mW CPU at 0.4 V, got {cpu}");
        assert!(bnn > cpu, "BNN inference draws more than CPU mode");
    }

    #[test]
    fn cpu_minimum_energy_point_near_half_volt() {
        let pm = PowerModel::default();
        let areas = AreaModel::default().ncpu_core(100);
        let energies: Vec<f64> = grid()
            .iter()
            .map(|&v| pm.energy_per_cycle_pj(CoreKind::NcpuCpuMode, &areas, v, 1.0))
            .collect();
        let argmin = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        let v_mep = grid()[argmin];
        assert!((0.45..=0.55).contains(&v_mep), "CPU MEP at ≈0.5 V, got {v_mep}");
    }

    #[test]
    fn bnn_energy_monotone_down_to_0v4() {
        // Fig. 9(c): no BNN MEP before malfunction below 0.4 V.
        let pm = PowerModel::default();
        let areas = AreaModel::default().ncpu_core(100);
        let e04 = pm.energy_per_cycle_pj(CoreKind::NcpuBnnMode, &areas, 0.4, 1.0);
        for v in [0.5, 0.6, 0.8, 1.0] {
            let e = pm.energy_per_cycle_pj(CoreKind::NcpuBnnMode, &areas, v, 1.0);
            assert!(e > e04, "BNN energy at {v} V must exceed the 0.4 V point");
        }
    }

    #[test]
    fn anchor_tops_per_watt() {
        let pm = PowerModel::default();
        let at_1v = pm.bnn_tops_per_watt(1.0, 400);
        let at_0v4 = pm.bnn_tops_per_watt(0.4, 400);
        assert!((1.3..1.9).contains(&at_1v), "≈1.6 TOPS/W at 1 V, got {at_1v}");
        assert!((5.0..7.0).contains(&at_0v4), "≈6.0 TOPS/W at 0.4 V, got {at_0v4}");
    }

    #[test]
    fn leakage_respects_sram_vmin() {
        let pm = PowerModel::default();
        let sram_only = SystemAreas { logic_mm2: 0.0, sram_mm2: 1.0 };
        let l04 = pm.leakage_mw(&sram_only, 0.4);
        let l055 = pm.leakage_mw(&sram_only, 0.55);
        assert!((l04 - l055).abs() < 1e-12, "SRAM rail pinned at 0.55 V");
        let logic_only = SystemAreas { logic_mm2: 1.0, sram_mm2: 0.0 };
        assert!(pm.leakage_mw(&logic_only, 0.4) < pm.leakage_mw(&logic_only, 0.55));
    }

    #[test]
    fn ncpu_overheads_applied() {
        let pm = PowerModel::default();
        let base = pm.dynamic_mw(CoreKind::StandaloneBnn, 0.8, 1.0);
        let ncpu = pm.dynamic_mw(CoreKind::NcpuBnnMode, 0.8, 1.0);
        // +5.8% capacitance, −4.1% frequency.
        let expect = base * 1.058 * (1.0 - 0.041);
        assert!((ncpu - expect).abs() < 1e-9);
    }
}
