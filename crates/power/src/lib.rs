//! Analytical 65nm technology model: DVFS, power, area, energy.
//!
//! The paper's evaluation is chip measurement; we have no silicon, so per
//! `DESIGN.md` this crate substitutes a calibrated analytical model. Every
//! constant is documented and anchored to a number the paper reports:
//!
//! * frequency–voltage curve fitted to 960 MHz @ 1 V and ~18 MHz @ 0.4 V
//!   (Fig. 9(b)),
//! * switched capacitance per mode from 241 mW (BNN) / ~110 mW (CPU) at
//!   1 V, 960 MHz (Fig. 7, Table II),
//! * leakage sized so the CPU-mode minimum-energy point falls near 0.5 V
//!   while BNN-mode energy keeps falling to 0.4 V (Fig. 9(c)),
//! * component areas solved from the paper's area ratios: 35.7% saving vs
//!   CPU+BNN, ~13% core-logic overhead, ~3% total overhead (Figs. 10/12),
//! * NCPU power overheads: +5.8% in BNN mode, +14.7% in CPU mode
//!   (Fig. 11), and fmax degradation −4.1%/−5.2% (Fig. 10).
//!
//! # Examples
//!
//! ```
//! use ncpu_power::{CoreKind, Dvfs, PowerModel};
//!
//! let dvfs = Dvfs::default();
//! let f1 = dvfs.freq_hz(1.0, CoreKind::NcpuBnnMode);
//! let f04 = dvfs.freq_hz(0.4, CoreKind::NcpuBnnMode);
//! assert!(f1 / f04 > 40.0, "deep-voltage scaling collapses frequency");
//!
//! let pm = PowerModel::default();
//! let eff = pm.bnn_tops_per_watt(0.4, 400);
//! assert!(eff > 4.0, "peak efficiency at the lowest voltage");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod dvfs;
mod instr_energy;
mod power;

pub use area::{AreaModel, SystemAreas};
pub use dvfs::{CoreKind, Dvfs};
pub use instr_energy::{instruction_energy_factor, ncpu_instruction_overhead};
pub use power::PowerModel;
