//! Component-level 65nm area model.
//!
//! Constants are solved from the paper's reported ratios at the fabricated
//! design point (4 layers × 100 neurons, 784-bit input):
//!
//! * NCPU saves 35.7% versus the CPU+BNN pair (Fig. 12(a)),
//! * NCPU core-logic overhead over the bare BNN is 13.1%, dominated by
//!   NeuroEX, and ~3% once SRAM is included (Fig. 10),
//! * the die photo's SRAM-heavy floorplan (Fig. 7).
//!
//! For the Fig. 18 sweep, weight banks scale linearly with the neuron
//! count from the chip's bank sizes (25 KiB W1, 6.5 KiB per deep layer at
//! 100 neurons); fixed structures (image/output/bias memories, sequence
//! controller, instruction cache) do not scale.

/// Area split of one core or system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemAreas {
    /// Logic (standard-cell) area in mm².
    pub logic_mm2: f64,
    /// SRAM macro area in mm².
    pub sram_mm2: f64,
}

impl SystemAreas {
    /// Total silicon area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.logic_mm2 + self.sram_mm2
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &SystemAreas) -> SystemAreas {
        SystemAreas {
            logic_mm2: self.logic_mm2 + other.logic_mm2,
            sram_mm2: self.sram_mm2 + other.sram_mm2,
        }
    }
}

/// Per-pipeline-stage breakdown of the NCPU's added logic (Fig. 10 left).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOverhead {
    /// NeuroPC additions (branch mux on the +4 chain).
    pub pc_mm2: f64,
    /// NeuroIF additions (bypass-cell register muxes).
    pub if_mm2: f64,
    /// NeuroID additions (decode neuron groups, RF read ports).
    pub id_mm2: f64,
    /// NeuroEX additions (Boolean ops, shifter, forwarding) — the largest.
    pub ex_mm2: f64,
    /// NeuroMEM additions (cache interface muxes).
    pub mem_mm2: f64,
}

impl StageOverhead {
    /// Total added logic in mm².
    pub fn total_mm2(&self) -> f64 {
        self.pc_mm2 + self.if_mm2 + self.id_mm2 + self.ex_mm2 + self.mem_mm2
    }
}

/// The calibrated area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// SRAM macro density (mm² per KiB, periphery included).
    pub sram_mm2_per_kib: f64,
    /// One XNOR neuron cell (XNOR, accumulator, output register).
    pub neuron_mm2: f64,
    /// BNN sequence controller.
    pub seq_ctrl_mm2: f64,
    /// Standalone CPU logic per stage: PC, IF, ID, EX, MEM/WB.
    pub cpu_stage_mm2: [f64; 5],
    /// NCPU added-logic fractions (of BNN logic) per stage, Fig. 10 left.
    pub stage_overhead_frac: [f64; 5],
}

impl Default for AreaModel {
    fn default() -> AreaModel {
        AreaModel {
            sram_mm2_per_kib: 0.0082,
            neuron_mm2: 265.0e-6,
            seq_ctrl_mm2: 0.008,
            // PC, IF, ID, EX (ALU+MUL+forwarding), MEM+WB — sums to 0.270.
            cpu_stage_mm2: [0.012, 0.030, 0.050, 0.120, 0.058],
            // Sums to 13.1%: NeuroEX needs the most recovery hardware.
            stage_overhead_frac: [0.008, 0.015, 0.026, 0.060, 0.022],
        }
    }
}

/// Number of BNN layers in the canonical design.
const LAYERS: usize = 4;
/// Chip bank sizes at the 100-neuron design point, in KiB.
const W1_KIB_AT_100: f64 = 25.0;
const W_DEEP_KIB_AT_100: f64 = 6.5;
/// Fixed memories: image 4 + output 1 + bias 1 + config/instruction 4 KiB.
const FIXED_MEM_KIB: f64 = 10.0;
/// CPU-private memories: I$ 4 + D$ 4 KiB + register file.
const CPU_MEM_KIB: f64 = 8.125;
/// Register file the NCPU adds on top of the BNN memories.
const RF_KIB: f64 = 0.125;

impl AreaModel {
    /// Logic area of a standalone BNN with `neurons` cells per layer.
    pub fn bnn_logic_mm2(&self, neurons: usize) -> f64 {
        (LAYERS * neurons) as f64 * self.neuron_mm2 + self.seq_ctrl_mm2
    }

    /// Total area of a standalone BNN accelerator core.
    pub fn bnn_core(&self, neurons: usize) -> SystemAreas {
        let scale = neurons as f64 / 100.0;
        let weight_kib = W1_KIB_AT_100 * scale
            + W_DEEP_KIB_AT_100 * scale * (LAYERS - 1) as f64;
        SystemAreas {
            logic_mm2: self.bnn_logic_mm2(neurons),
            sram_mm2: (weight_kib + FIXED_MEM_KIB) * self.sram_mm2_per_kib,
        }
    }

    /// Total area of the standalone 5-stage RISC-V core.
    pub fn cpu_core(&self) -> SystemAreas {
        SystemAreas {
            logic_mm2: self.cpu_stage_mm2.iter().sum(),
            sram_mm2: CPU_MEM_KIB * self.sram_mm2_per_kib,
        }
    }

    /// The NCPU's added logic per neural stage.
    pub fn ncpu_stage_overhead(&self, neurons: usize) -> StageOverhead {
        let base = self.bnn_logic_mm2(neurons);
        StageOverhead {
            pc_mm2: base * self.stage_overhead_frac[0],
            if_mm2: base * self.stage_overhead_frac[1],
            id_mm2: base * self.stage_overhead_frac[2],
            ex_mm2: base * self.stage_overhead_frac[3],
            mem_mm2: base * self.stage_overhead_frac[4],
        }
    }

    /// Total area of one reconfigurable NCPU core.
    pub fn ncpu_core(&self, neurons: usize) -> SystemAreas {
        let bnn = self.bnn_core(neurons);
        SystemAreas {
            logic_mm2: bnn.logic_mm2 + self.ncpu_stage_overhead(neurons).total_mm2(),
            sram_mm2: bnn.sram_mm2 + RF_KIB * self.sram_mm2_per_kib,
        }
    }

    /// The conventional heterogeneous pair: CPU core + BNN accelerator.
    pub fn heterogeneous(&self, neurons: usize) -> SystemAreas {
        self.cpu_core().plus(&self.bnn_core(neurons))
    }

    /// Fractional area saving of one NCPU versus the heterogeneous pair
    /// (Fig. 12(a): 35.7% at 100 neurons; Fig. 18 sweeps `neurons`).
    pub fn area_saving(&self, neurons: usize) -> f64 {
        let base = self.heterogeneous(neurons).total_mm2();
        (base - self.ncpu_core(neurons).total_mm2()) / base
    }

    /// NCPU core-logic overhead relative to the bare BNN logic (Fig. 10:
    /// 13.1%).
    pub fn core_logic_overhead(&self, neurons: usize) -> f64 {
        self.ncpu_stage_overhead(neurons).total_mm2() / self.bnn_logic_mm2(neurons)
    }

    /// NCPU total-area overhead relative to the standalone BNN (Fig. 10:
    /// 2.7%).
    pub fn total_overhead(&self, neurons: usize) -> f64 {
        let bnn = self.bnn_core(neurons).total_mm2();
        (self.ncpu_core(neurons).total_mm2() - bnn) / bnn
    }

    /// Digital-design area of an 8-bit ALU-class operator in mm²
    /// (reference for the Fig. 19 NALU comparison): roughly 40 NAND2-
    /// equivalent gates at ~2 µm²/gate for an 8-bit ripple adder.
    pub fn digital_alu_op_mm2(&self) -> f64 {
        40.0 * 2.0e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: AreaModel = AreaModel {
        sram_mm2_per_kib: 0.0082,
        neuron_mm2: 265.0e-6,
        seq_ctrl_mm2: 0.008,
        cpu_stage_mm2: [0.012, 0.030, 0.050, 0.120, 0.058],
        stage_overhead_frac: [0.008, 0.015, 0.026, 0.060, 0.022],
    };

    #[test]
    fn paper_anchor_area_saving_at_100() {
        let s = M.area_saving(100);
        assert!((0.33..0.385).contains(&s), "saving {s} vs paper 35.7%");
    }

    #[test]
    fn paper_anchor_core_logic_overhead() {
        let o = M.core_logic_overhead(100);
        assert!((o - 0.131).abs() < 1e-9, "13.1% by construction, got {o}");
    }

    #[test]
    fn paper_anchor_total_overhead_small() {
        let o = M.total_overhead(100);
        assert!((0.015..0.045).contains(&o), "≈2.7%, got {o}");
    }

    #[test]
    fn fig18_saving_decreases_with_neurons() {
        let savings: Vec<f64> = [50, 100, 200, 400].iter().map(|&n| M.area_saving(n)).collect();
        for w in savings.windows(2) {
            assert!(w[0] > w[1], "saving must fall as the BNN grows: {savings:?}");
        }
        assert!(savings[0] > 0.40, "≈43.5% at 50 neurons, got {}", savings[0]);
        assert!(savings[3] < 0.25, "≈22.5% at 400 neurons, got {}", savings[3]);
    }

    #[test]
    fn ex_stage_dominates_overhead() {
        let o = M.ncpu_stage_overhead(100);
        assert!(o.ex_mm2 > o.pc_mm2 && o.ex_mm2 > o.if_mm2);
        assert!(o.ex_mm2 > o.id_mm2 && o.ex_mm2 > o.mem_mm2);
        assert!((o.total_mm2() / M.bnn_logic_mm2(100) - 0.131).abs() < 1e-12);
    }

    #[test]
    fn floorplan_is_sram_dominated() {
        let b = M.bnn_core(100);
        assert!(b.sram_mm2 > b.logic_mm2, "Fig. 7: memories dominate the die");
    }

    #[test]
    fn two_core_soc_in_die_budget() {
        // Two NCPU cores + 64 KiB L2 + pads/PLL should sit near the chip's
        // 2.8 mm² die.
        let core = M.ncpu_core(100).total_mm2();
        let l2 = 64.0 * M.sram_mm2_per_kib;
        let soc = 2.0 * core + l2;
        assert!((1.4..2.8).contains(&soc), "SoC estimate {soc} mm²");
    }
}
