//! Per-instruction energy weights (paper Fig. 11(b)).
//!
//! The pipeline's per-mnemonic retire counts are weighted by these factors
//! to split CPU-mode energy by instruction. Factors are relative to a
//! plain register-register ALU operation; memory instructions pay for the
//! data-SRAM access, control flow is cheaper (no writeback), `mul` is the
//! most expensive recovered operation.
//!
//! The NCPU multiplier models the un-gated neuron logic that toggles
//! alongside each instruction class; its retire-weighted average over the
//! base ISA is ≈14.7%, matching the paper's measured mean.

/// Relative dynamic energy of one retired instruction (1.0 = `add`).
pub fn instruction_energy_factor(mnemonic: &str) -> f64 {
    match mnemonic {
        "lui" | "auipc" => 0.80,
        "jal" | "jalr" => 0.95,
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => 0.90,
        "lb" | "lh" | "lw" | "lbu" | "lhu" => 1.30,
        "sb" | "sh" | "sw" => 1.25,
        "mul" => 1.80,
        "lw_l2" | "sw_l2" => 1.60,
        "mv_neu" | "trans_bnn" | "trans_cpu" | "trigger_bnn" => 0.70,
        // addi/slti/…, add/sub/… and anything unlisted.
        _ => 1.00,
    }
}

/// The NCPU-versus-standalone energy multiplier for one instruction
/// (Fig. 11(b): between ~13.7% and ~15.2%, averaging 14.7%).
pub fn ncpu_instruction_overhead(mnemonic: &str) -> f64 {
    match mnemonic {
        // Memory instructions exercise the (well-gated) SRAM path more.
        "lb" | "lh" | "lw" | "lbu" | "lhu" | "sb" | "sh" | "sw" => 1.137,
        // Control flow re-uses the recovered branch data path heavily.
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "jal" | "jalr" => 1.152,
        "lui" | "auipc" => 1.148,
        _ => 1.147,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_isa_average_overhead_is_paper_mean() {
        // Equal-weight average over the 37 base instructions ≈ 14.7%.
        let mnemonics = ncpu_isa_mnemonics();
        let avg: f64 = mnemonics.iter().map(|m| ncpu_instruction_overhead(m) - 1.0).sum::<f64>()
            / mnemonics.len() as f64;
        assert!((avg - 0.147).abs() < 0.003, "average overhead {avg}");
    }

    #[test]
    fn overheads_span_the_measured_band() {
        for m in ncpu_isa_mnemonics() {
            let o = ncpu_instruction_overhead(m);
            assert!((1.13..=1.16).contains(&o), "{m} overhead {o} outside Fig. 11(b) band");
        }
    }

    #[test]
    fn memory_ops_cost_more_than_alu() {
        assert!(instruction_energy_factor("lw") > instruction_energy_factor("add"));
        assert!(instruction_energy_factor("mul") > instruction_energy_factor("lw"));
        assert!(instruction_energy_factor("beq") < instruction_energy_factor("add"));
    }

    fn ncpu_isa_mnemonics() -> [&'static str; 37] {
        ncpu_base_list()
    }

    fn ncpu_base_list() -> [&'static str; 37] {
        [
            "lui", "auipc", "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu", "lb",
            "lh", "lw", "lbu", "lhu", "sb", "sh", "sw", "addi", "slti", "sltiu", "xori", "ori",
            "andi", "slli", "srli", "srai", "add", "sub", "sll", "slt", "sltu", "xor", "srl",
            "sra", "or", "and",
        ]
    }
}
