//! Seed-deterministic fault injection model for the NCPU SoC simulators.
//!
//! The paper claims reliable end-to-end operation down to near-threshold
//! voltage (0.4 V), but low-voltage SRAM is exactly where soft errors
//! land. This crate models that stress deterministically: a [`FaultPlan`]
//! names per-dispatch fault probabilities (parts per million) and the
//! recovery policy knobs; a [`FaultSession`] scales the SRAM soft-error
//! rate by the operating voltage and draws per-(item, attempt) faults
//! from pinned split RNG streams, so every engine — and every rerun at
//! any `NCPU_THREADS` — sees byte-identical fault sequences.
//!
//! Detection and recovery (parity checks, watchdogs, retry, quarantine)
//! live in `ncpu-soc::fabric`; this crate is the pure injection model
//! plus the [`parity`] primitive that justifies the certain-detection
//! assumption for single-bit flips.

use ncpu_testkit::rng::Rng;

/// Upper bound on dispatch attempts per item; each attempt gets its own
/// split RNG stream at index `item * ATTEMPT_STREAMS + attempt`, so the
/// number of random draws an attempt consumes never perturbs any other
/// attempt's stream.
pub const ATTEMPT_STREAMS: u64 = 4096;

/// A deterministic fault-injection and recovery policy for one run.
///
/// Rates are parts per million of *dispatch attempts*; all-zero rates
/// (see [`FaultPlan::none`]) make the plan inert and every engine
/// byte-identical to a plan-free run. The SRAM flip rate is the value
/// at the nominal 1.0 V operating point — [`FaultSession`] scales it up
/// quadratically as the supply drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the split RNG streams; two runs with equal seeds and
    /// equal rates draw identical fault sequences.
    pub seed: u64,
    /// SRAM/L2 single-bit upset probability per staged dispatch, in
    /// parts per million at 1.0 V (voltage-scaled upward below that).
    pub sram_flip_ppm: u32,
    /// DMA stall probability per staged dispatch, in parts per million.
    pub dma_stall_ppm: u32,
    /// Extra delivery latency a DMA stall adds, in cycles. Must be
    /// nonzero when `dma_stall_ppm` is.
    pub dma_stall_cycles: u64,
    /// DMA truncation probability per staged dispatch, in parts per
    /// million: the transfer delivers only a prefix of the item.
    pub dma_truncate_ppm: u32,
    /// Core hang probability per dispatch, in parts per million. Hangs
    /// are only detected by the watchdog, so `watchdog_cycles` must be
    /// nonzero when this is.
    pub core_hang_ppm: u32,
    /// Per-item watchdog budget in cycles; an item that executes longer
    /// is aborted and retried. Zero disables the watchdog.
    pub watchdog_cycles: u64,
    /// Faulted dispatches retried before the item is dropped.
    pub max_retries: u32,
    /// Base backoff after a detected fault; attempt `k` of a dispatch
    /// waits `backoff_cycles << (k - 1)` extra cycles before re-staging.
    pub backoff_cycles: u64,
    /// Consecutive faults on one core before it is quarantined and its
    /// queue re-scheduled onto healthy cores. Zero disables quarantine.
    pub quarantine_after: u32,
}

impl FaultPlan {
    /// The inert plan: no injection, no watchdog. Engines treat it as
    /// "fault layer absent" and stay byte-identical to the pre-fault
    /// code paths.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            sram_flip_ppm: 0,
            dma_stall_ppm: 0,
            dma_stall_cycles: 0,
            dma_truncate_ppm: 0,
            core_hang_ppm: 0,
            watchdog_cycles: 0,
            max_retries: 0,
            backoff_cycles: 0,
            quarantine_after: 0,
        }
    }

    /// Whether the plan can affect a run at all: any nonzero injection
    /// rate, or a watchdog (which can fire on genuinely long items even
    /// with injection off).
    pub fn is_active(&self) -> bool {
        self.sram_flip_ppm > 0
            || self.dma_stall_ppm > 0
            || self.dma_truncate_ppm > 0
            || self.core_hang_ppm > 0
            || self.watchdog_cycles > 0
    }

    /// Builds a plan from the `NCPU_FAULT_*` environment variables (see
    /// [`FAULT_ENV_VARS`]), starting from [`FaultPlan::none`]. Unset or
    /// empty variables keep their inert defaults; invalid values
    /// (garbage, negatives, overflow) are reported once on stderr and
    /// then ignored — the same warn-and-fall-back contract `NCPU_TRACE`
    /// and `NCPU_THREADS` follow, built on the shared hardened parser
    /// in [`ncpu_obs::numparse`].
    pub fn from_env() -> FaultPlan {
        let (plan, errors) =
            FaultPlan::from_lookup(|var| std::env::var(var).ok());
        if !errors.is_empty() {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                for e in &errors {
                    eprintln!("ncpu-fault: ignoring {e}");
                }
            });
        }
        plan
    }

    /// [`FaultPlan::from_env`] with the environment abstracted behind a
    /// lookup closure, so the parsing contract is unit-testable without
    /// mutating process state. Returns the plan plus one diagnostic per
    /// rejected variable (the caller decides how loudly to report).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> (FaultPlan, Vec<String>) {
        use ncpu_obs::numparse::{parse_u32, parse_u64};
        let mut plan = FaultPlan::none();
        let mut errors = Vec::new();
        {
            let mut u64_knob = |var: &str, slot: &mut u64| {
                if let Some(raw) = get(var) {
                    match parse_u64(&raw) {
                        Ok(Some(v)) => *slot = v,
                        Ok(None) => {}
                        Err(e) => errors.push(format!("{var}: {e}")),
                    }
                }
            };
            u64_knob(ENV_SEED, &mut plan.seed);
            u64_knob(ENV_DMA_STALL_CYCLES, &mut plan.dma_stall_cycles);
            u64_knob(ENV_WATCHDOG_CYCLES, &mut plan.watchdog_cycles);
            u64_knob(ENV_BACKOFF_CYCLES, &mut plan.backoff_cycles);
        }
        let mut u32_knob = |var: &str, slot: &mut u32| {
            if let Some(raw) = get(var) {
                match parse_u32(&raw) {
                    Ok(Some(v)) => *slot = v,
                    Ok(None) => {}
                    Err(e) => errors.push(format!("{var}: {e}")),
                }
            }
        };
        u32_knob(ENV_SRAM_FLIP_PPM, &mut plan.sram_flip_ppm);
        u32_knob(ENV_DMA_STALL_PPM, &mut plan.dma_stall_ppm);
        u32_knob(ENV_DMA_TRUNCATE_PPM, &mut plan.dma_truncate_ppm);
        u32_knob(ENV_CORE_HANG_PPM, &mut plan.core_hang_ppm);
        u32_knob(ENV_MAX_RETRIES, &mut plan.max_retries);
        u32_knob(ENV_QUARANTINE_AFTER, &mut plan.quarantine_after);
        (plan, errors)
    }
}

/// `NCPU_FAULT_SEED` — RNG seed for the split fault streams.
pub const ENV_SEED: &str = "NCPU_FAULT_SEED";
/// `NCPU_FAULT_SRAM_FLIP_PPM` — SRAM upset rate at 1.0 V.
pub const ENV_SRAM_FLIP_PPM: &str = "NCPU_FAULT_SRAM_FLIP_PPM";
/// `NCPU_FAULT_DMA_STALL_PPM` — DMA stall rate.
pub const ENV_DMA_STALL_PPM: &str = "NCPU_FAULT_DMA_STALL_PPM";
/// `NCPU_FAULT_DMA_STALL_CYCLES` — extra latency per stall.
pub const ENV_DMA_STALL_CYCLES: &str = "NCPU_FAULT_DMA_STALL_CYCLES";
/// `NCPU_FAULT_DMA_TRUNCATE_PPM` — DMA truncation rate.
pub const ENV_DMA_TRUNCATE_PPM: &str = "NCPU_FAULT_DMA_TRUNCATE_PPM";
/// `NCPU_FAULT_CORE_HANG_PPM` — core hang rate.
pub const ENV_CORE_HANG_PPM: &str = "NCPU_FAULT_CORE_HANG_PPM";
/// `NCPU_FAULT_WATCHDOG_CYCLES` — per-item watchdog budget.
pub const ENV_WATCHDOG_CYCLES: &str = "NCPU_FAULT_WATCHDOG_CYCLES";
/// `NCPU_FAULT_MAX_RETRIES` — retries before an item is dropped.
pub const ENV_MAX_RETRIES: &str = "NCPU_FAULT_MAX_RETRIES";
/// `NCPU_FAULT_BACKOFF_CYCLES` — base retry backoff.
pub const ENV_BACKOFF_CYCLES: &str = "NCPU_FAULT_BACKOFF_CYCLES";
/// `NCPU_FAULT_QUARANTINE_AFTER` — consecutive faults before quarantine.
pub const ENV_QUARANTINE_AFTER: &str = "NCPU_FAULT_QUARANTINE_AFTER";

/// Every `NCPU_FAULT_*` variable [`FaultPlan::from_env`] reads, in
/// field order.
pub const FAULT_ENV_VARS: [&str; 10] = [
    ENV_SEED,
    ENV_SRAM_FLIP_PPM,
    ENV_DMA_STALL_PPM,
    ENV_DMA_STALL_CYCLES,
    ENV_DMA_TRUNCATE_PPM,
    ENV_CORE_HANG_PPM,
    ENV_WATCHDOG_CYCLES,
    ENV_MAX_RETRIES,
    ENV_BACKOFF_CYCLES,
    ENV_QUARANTINE_AFTER,
];

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// One injected fault, as drawn by [`FaultSession::draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A single-bit upset in the staged item's SRAM image. The bit
    /// index is drawn for the record; parity detection discards the
    /// corrupted copy before it is ever executed.
    SramFlip {
        /// Which bit of the staged bytes flipped.
        bit: u64,
    },
    /// The DMA transfer completes, but late.
    DmaStall {
        /// Extra cycles added to the delivery time.
        extra_cycles: u64,
    },
    /// The DMA transfer delivers only a prefix of the item.
    DmaTruncate {
        /// Bytes actually delivered (strictly less than the item size).
        bytes: u32,
    },
    /// The core never retires the item; only the watchdog notices.
    CoreHang,
}

/// A [`FaultPlan`] bound to an operating point: pre-scales the SRAM
/// soft-error rate for the supply voltage and hands out per-attempt
/// fault draws.
#[derive(Debug, Clone)]
pub struct FaultSession {
    seed: u64,
    hang_ppm: u64,
    flip_ppm: u64,
    truncate_ppm: u64,
    stall_ppm: u64,
    stall_cycles: u64,
}

impl FaultSession {
    /// Binds `plan` to a supply voltage in millivolts.
    ///
    /// # Panics
    /// If the plan is self-contradictory: hangs without a watchdog
    /// would deadlock the machine, and stalls of zero cycles would be
    /// unobservable.
    pub fn new(plan: &FaultPlan, millivolts: u32) -> FaultSession {
        assert!(
            plan.core_hang_ppm == 0 || plan.watchdog_cycles > 0,
            "FaultPlan: core hangs require a watchdog to be detectable"
        );
        assert!(
            plan.dma_stall_ppm == 0 || plan.dma_stall_cycles > 0,
            "FaultPlan: DMA stalls require a nonzero stall length"
        );
        FaultSession {
            seed: plan.seed,
            hang_ppm: u64::from(plan.core_hang_ppm),
            flip_ppm: u64::from(scaled_flip_ppm(plan.sram_flip_ppm, millivolts)),
            truncate_ppm: u64::from(plan.dma_truncate_ppm),
            stall_ppm: u64::from(plan.dma_stall_ppm),
            stall_cycles: plan.dma_stall_cycles,
        }
    }

    /// The voltage-scaled SRAM flip rate this session injects at, in
    /// parts per million of staged dispatches.
    pub fn effective_flip_ppm(&self) -> u32 {
        self.flip_ppm as u32
    }

    /// Draws the fault (or `None` for a clean dispatch) for attempt
    /// `attempt` of item `item` whose staged image is `staged_bytes`
    /// long.
    ///
    /// The draw is a pure function of `(seed, item, attempt)`: each
    /// attempt reads its own split stream, so engines that interleave
    /// items differently still see identical faults. Items that stage
    /// no bytes (pre-resident workloads) cross neither SRAM nor DMA, so
    /// only core hangs apply to them.
    pub fn draw(&self, item: u64, attempt: u32, staged_bytes: usize) -> Option<Fault> {
        let attempt = u64::from(attempt);
        assert!(attempt < ATTEMPT_STREAMS, "retry policy exceeded {ATTEMPT_STREAMS} attempts");
        let mut rng = Rng::split(self.seed, item * ATTEMPT_STREAMS + attempt);
        let roll = rng.gen_range(0..1_000_000u64);
        let mut edge = self.hang_ppm;
        if roll < edge {
            return Some(Fault::CoreHang);
        }
        if staged_bytes == 0 {
            return None;
        }
        edge = edge.saturating_add(self.flip_ppm);
        if roll < edge {
            return Some(Fault::SramFlip { bit: rng.gen_range(0..staged_bytes as u64 * 8) });
        }
        edge = edge.saturating_add(self.truncate_ppm);
        if roll < edge {
            return Some(Fault::DmaTruncate { bytes: rng.gen_range(0..staged_bytes as u32) });
        }
        edge = edge.saturating_add(self.stall_ppm);
        if roll < edge {
            return Some(Fault::DmaStall { extra_cycles: self.stall_cycles });
        }
        None
    }
}

/// Scales a 1.0 V soft-error rate to the operating voltage.
///
/// Near-threshold SRAM critical charge falls roughly linearly with the
/// supply, and upset rate grows super-linearly as margin vanishes; we
/// model the rate multiplier as `1 + (deficit_mv)^2 / 10^4`, all in
/// integer arithmetic so every host computes the same value: 1x at or
/// above 1.0 V, ~5x at 0.8 V, ~17x at 0.6 V, 37x at the paper's 0.4 V
/// floor. The result saturates at certainty (10^6 ppm).
pub fn scaled_flip_ppm(ppm_at_nominal: u32, millivolts: u32) -> u32 {
    let deficit = u64::from(1000u32.saturating_sub(millivolts));
    let factor = 10_000 + deficit * deficit;
    let scaled = u64::from(ppm_at_nominal).saturating_mul(factor) / 10_000;
    scaled.min(1_000_000) as u32
}

/// Even parity over a byte image: XOR-fold then reduce to one bit.
///
/// Any single-bit flip inverts the result, which is why the fabric's
/// parity checker detects every [`Fault::SramFlip`] with certainty
/// (the unit test below is the proof obligation for that model).
pub fn parity(bytes: &[u8]) -> u8 {
    let folded = bytes.iter().fold(0u8, |acc, b| acc ^ b);
    folded.count_ones() as u8 & 1
}

/// Flips bit `bit` (little-endian within each byte) of `bytes` in
/// place; the test-side counterpart of [`Fault::SramFlip`].
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    let byte = (bit / 8) as usize;
    bytes[byte] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stressful() -> FaultPlan {
        FaultPlan {
            seed: 11,
            sram_flip_ppm: 200_000,
            dma_stall_ppm: 100_000,
            dma_stall_cycles: 32,
            dma_truncate_ppm: 100_000,
            core_hang_ppm: 100_000,
            watchdog_cycles: 10_000,
            max_retries: 3,
            backoff_cycles: 16,
            quarantine_after: 4,
        }
    }

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!FaultPlan::none().is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        let mut watchdog_only = FaultPlan::none();
        watchdog_only.watchdog_cycles = 1_000;
        assert!(watchdog_only.is_active());
    }

    #[test]
    fn voltage_scaling_is_quadratic_and_saturates() {
        assert_eq!(scaled_flip_ppm(100, 1000), 100);
        assert_eq!(scaled_flip_ppm(100, 1200), 100); // no credit above nominal
        assert_eq!(scaled_flip_ppm(100, 800), 500);
        assert_eq!(scaled_flip_ppm(100, 600), 1700);
        assert_eq!(scaled_flip_ppm(100, 400), 3700);
        assert_eq!(scaled_flip_ppm(900_000, 400), 1_000_000);
        // Monotone: lower voltage never lowers the rate.
        let mut last = 0;
        for mv in (400..=1000).rev().step_by(50) {
            let ppm = scaled_flip_ppm(1_000, mv);
            assert!(ppm >= last, "rate fell from {last} to {ppm} at {mv} mV");
            last = ppm;
        }
    }

    #[test]
    fn draws_are_deterministic_and_attempt_independent() {
        let session = FaultSession::new(&stressful(), 600);
        for item in 0..32u64 {
            for attempt in 0..8u32 {
                let a = session.draw(item, attempt, 64);
                let b = session.draw(item, attempt, 64);
                assert_eq!(a, b, "draw must be a pure function of (item, attempt)");
            }
        }
        // Different attempts of one item come from different streams.
        let distinct: std::collections::BTreeSet<_> =
            (0..64).map(|a| format!("{:?}", session.draw(7, a, 64))).collect();
        assert!(distinct.len() > 1, "attempt streams are not independent");
    }

    #[test]
    fn rates_shape_the_draw_population() {
        let session = FaultSession::new(&stressful(), 1000);
        let mut clean = 0u32;
        let mut by_kind = [0u32; 4];
        for item in 0..4_000u64 {
            match session.draw(item, 0, 64) {
                None => clean += 1,
                Some(Fault::CoreHang) => by_kind[0] += 1,
                Some(Fault::SramFlip { bit }) => {
                    assert!(bit < 64 * 8);
                    by_kind[1] += 1;
                }
                Some(Fault::DmaTruncate { bytes }) => {
                    assert!(bytes < 64);
                    by_kind[2] += 1;
                }
                Some(Fault::DmaStall { extra_cycles }) => {
                    assert_eq!(extra_cycles, 32);
                    by_kind[3] += 1;
                }
            }
        }
        // 50% total fault rate: every class present, and the clean share
        // is within a loose band around the configured rate.
        assert!(by_kind.iter().all(|&n| n > 0), "some class never drew: {by_kind:?}");
        assert!((1_600..=2_400).contains(&clean), "clean draws {clean} of 4000");
        // Unstaged items can only hang.
        for item in 0..4_000u64 {
            match session.draw(item, 0, 0) {
                None | Some(Fault::CoreHang) => {}
                other => panic!("unstaged item drew {other:?}"),
            }
        }
    }

    #[test]
    fn lower_voltage_raises_observed_flip_rate() {
        let nominal = FaultSession::new(&stressful(), 1000);
        let low = FaultSession::new(&stressful(), 400);
        assert!(low.effective_flip_ppm() > nominal.effective_flip_ppm());
        let flips = |s: &FaultSession| {
            (0..4_000u64).filter(|&i| matches!(s.draw(i, 0, 64), Some(Fault::SramFlip { .. }))).count()
        };
        assert!(
            flips(&low) > flips(&nominal),
            "0.4 V should upset more dispatches than 1.0 V"
        );
    }

    #[test]
    fn single_bit_flip_always_inverts_parity() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..256 {
            let mut bytes: Vec<u8> = (0..rng.gen_range(1..64usize)).map(|_| rng.gen()).collect();
            let before = parity(&bytes);
            let bit = rng.gen_range(0..bytes.len() as u64 * 8);
            flip_bit(&mut bytes, bit);
            assert_eq!(parity(&bytes), before ^ 1, "flip of bit {bit} kept parity");
        }
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn hangs_without_watchdog_are_rejected() {
        let mut plan = FaultPlan::none();
        plan.core_hang_ppm = 1;
        FaultSession::new(&plan, 1000);
    }

    fn lookup_from<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |var| {
            pairs
                .iter()
                .find(|(k, _)| *k == var)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn from_lookup_parses_every_knob() {
        let pairs = [
            (ENV_SEED, "7"),
            (ENV_SRAM_FLIP_PPM, " 120 "),
            (ENV_DMA_STALL_PPM, "3"),
            (ENV_DMA_STALL_CYCLES, "64"),
            (ENV_DMA_TRUNCATE_PPM, "2"),
            (ENV_CORE_HANG_PPM, "1"),
            (ENV_WATCHDOG_CYCLES, "4096"),
            (ENV_MAX_RETRIES, "5"),
            (ENV_BACKOFF_CYCLES, "128"),
            (ENV_QUARANTINE_AFTER, "3"),
        ];
        let (plan, errors) = FaultPlan::from_lookup(lookup_from(&pairs));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sram_flip_ppm, 120);
        assert_eq!(plan.dma_stall_ppm, 3);
        assert_eq!(plan.dma_stall_cycles, 64);
        assert_eq!(plan.dma_truncate_ppm, 2);
        assert_eq!(plan.core_hang_ppm, 1);
        assert_eq!(plan.watchdog_cycles, 4096);
        assert_eq!(plan.max_retries, 5);
        assert_eq!(plan.backoff_cycles, 128);
        assert_eq!(plan.quarantine_after, 3);
        assert!(plan.is_active());
    }

    #[test]
    fn from_lookup_treats_unset_and_empty_as_defaults() {
        let pairs = [(ENV_SEED, ""), (ENV_WATCHDOG_CYCLES, "   ")];
        let (plan, errors) = FaultPlan::from_lookup(lookup_from(&pairs));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn from_lookup_rejects_garbage_overflow_and_negatives() {
        let pairs = [
            (ENV_SEED, "not-a-number"),
            (ENV_SRAM_FLIP_PPM, "4294967296"), // u32::MAX + 1
            (ENV_BACKOFF_CYCLES, "-5"),
            (ENV_MAX_RETRIES, "2"), // the one valid override
        ];
        let (plan, errors) = FaultPlan::from_lookup(lookup_from(&pairs));
        assert_eq!(errors.len(), 3, "{errors:?}");
        // Diagnostics come out in parse order: the u64 knobs first
        // (seed, …, backoff), then the u32 knobs.
        assert!(errors[0].contains(ENV_SEED) && errors[0].contains("not-a-number"));
        assert!(errors[1].contains(ENV_BACKOFF_CYCLES));
        assert!(errors[2].contains(ENV_SRAM_FLIP_PPM));
        // Rejected variables keep their defaults; valid ones apply.
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.sram_flip_ppm, 0);
        assert_eq!(plan.backoff_cycles, 0);
        assert_eq!(plan.max_retries, 2);
    }

    #[test]
    fn from_env_without_overrides_is_inert() {
        // The test environment never sets NCPU_FAULT_*; guard anyway so
        // the assertion is meaningful even under odd harnesses.
        if FAULT_ENV_VARS.iter().any(|v| std::env::var_os(v).is_some()) {
            return;
        }
        assert_eq!(FaultPlan::from_env(), FaultPlan::none());
    }
}
