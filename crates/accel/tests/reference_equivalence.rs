//! Property test: the cycle-level accelerator is bit-identical to the
//! reference inference for arbitrary models and inputs.

use ncpu_accel::{AccelConfig, Accelerator};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_testkit::prop::Prop;
use ncpu_testkit::rng::Rng;
use ncpu_testkit::{prop_assert, prop_assert_eq};

/// Raw generated material for one case: dimension selectors plus bit/bias
/// pools. The model and the input batch are built *inside* the property
/// with cyclic indexing, so every shrink of the pools still yields a valid
/// model (the replacement for proptest's `prop_flat_map` strategies).
type RawCase = ((u8, u8, u8, u8), Vec<bool>, Vec<i32>, Vec<bool>);

fn raw_case(rng: &mut Rng) -> RawCase {
    let layers_sel = rng.gen_range(0u8..3); // 2..=4 layers
    let neurons_sel = rng.gen_range(0u8..12); // 1..=12 neurons
    let input_sel = rng.gen_range(0u8..15); // 2..=16 input bits
    let batch_sel = rng.gen_range(0u8..6); // 1..=6 images
    let layers = 2 + layers_sel as usize;
    let neurons = 1 + neurons_sel as usize;
    let input = 2 + input_sel as usize;
    let batch = 1 + batch_sel as usize;
    let n_bits = input * neurons + (layers - 1) * neurons * neurons;
    let weight_bits: Vec<bool> = (0..n_bits).map(|_| rng.gen()).collect();
    let biases: Vec<i32> = (0..layers * neurons).map(|_| rng.gen_range(-3i32..=3)).collect();
    let input_bits: Vec<bool> = (0..batch * input).map(|_| rng.gen()).collect();
    ((layers_sel, neurons_sel, input_sel, batch_sel), weight_bits, biases, input_bits)
}

/// A random small BNN (2–4 layers) plus a batch of inputs.
fn build(case: &RawCase) -> (BnnModel, Vec<BitVec>) {
    let ((layers_sel, neurons_sel, input_sel, batch_sel), bits, biases, input_bits) = case;
    let layers = 2 + (*layers_sel as usize % 3);
    let neurons = 1 + (*neurons_sel as usize % 12);
    let input = 2 + (*input_sel as usize % 15);
    let batch = 1 + (*batch_sel as usize % 6);
    let bit = |i: usize| !bits.is_empty() && bits[i % bits.len()];
    let bias = |i: usize| if biases.is_empty() { 0 } else { biases[i % biases.len()] };
    let topo = Topology::new(input, vec![neurons; layers], neurons.min(4));
    let mut cursor = 0;
    let mut built = Vec::new();
    for l in 0..layers {
        let n_in = topo.layer_input(l);
        let rows: Vec<BitVec> = (0..neurons)
            .map(|_| {
                let row = BitVec::from_bools((0..n_in).map(|k| bit(cursor + k)));
                cursor += n_in;
                row
            })
            .collect();
        built.push(BnnLayer::new(rows, (0..neurons).map(|n| bias(l * neurons + n)).collect()));
    }
    let model = BnnModel::new(topo, built);
    let inputs: Vec<BitVec> = (0..batch)
        .map(|img| {
            BitVec::from_bools((0..input).map(|i| {
                !input_bits.is_empty() && input_bits[(img * input + i) % input_bits.len()]
            }))
        })
        .collect();
    (model, inputs)
}

/// Pipelined and serial timing modes both match the reference model on
/// every image of every random batch.
#[test]
fn accelerator_matches_reference() {
    Prop::new("accel::accelerator_matches_reference").run(raw_case, |case| {
        let (model, inputs) = build(case);
        let reference: Vec<usize> = inputs.iter().map(|i| model.classify(i)).collect();
        let mut piped = Accelerator::new(model.clone(), AccelConfig::default());
        let run = piped.run_batch(&inputs);
        prop_assert_eq!(&run.outputs, &reference);

        let mut serial = Accelerator::new(
            model.clone(),
            AccelConfig { layer_pipelining: false, ..AccelConfig::default() },
        );
        prop_assert_eq!(&serial.run_batch(&inputs).outputs, &reference);
        Ok(())
    });
}

/// Timing invariants: spans are ordered, non-overlapping per image,
/// and the serial mode is never faster than the pipelined mode.
#[test]
fn timing_invariants() {
    Prop::new("accel::timing_invariants").run(raw_case, |case| {
        let (model, inputs) = build(case);
        let mut piped = Accelerator::new(model.clone(), AccelConfig::default());
        let p = piped.run_batch(&inputs);
        let mut serial = Accelerator::new(
            model.clone(),
            AccelConfig { layer_pipelining: false, ..AccelConfig::default() },
        );
        let s = serial.run_batch(&inputs);
        prop_assert!(p.total_cycles <= s.total_cycles);
        let latency: u64 = (0..model.layers().len())
            .map(|l| model.topology().layer_input(l) as u64 + ncpu_accel::SIGN_CYCLES)
            .sum();
        for (i, &(start, end)) in p.spans.iter().enumerate() {
            prop_assert!(end > start, "image {i} span must be nonempty");
            prop_assert!(end - start >= latency, "no image beats the array latency");
        }
        // Completion order follows submission order (in-order array).
        for w in p.spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        Ok(())
    });
}

/// Rolled (deep) execution matches the reference for models deeper
/// than the physical array.
#[test]
fn deep_rollback_matches_reference() {
    Prop::new("accel::deep_rollback_matches_reference").run(raw_case, |case| {
        let (model, inputs) = build(case);
        // Build a deeper logical model by doubling the layer stack.
        let topo = model.topology();
        let neurons = topo.layers()[0];
        let mut layers: Vec<BnnLayer> = model.layers().to_vec();
        for l in model.layers() {
            // Re-use square layers only (first layer's input may differ).
            if l.input_len() == neurons {
                layers.push(l.clone());
            }
        }
        let deep_topo = Topology::new(
            topo.input(),
            layers.iter().map(BnnLayer::neurons).collect(),
            topo.classes(),
        );
        let deep = BnnModel::new(deep_topo, layers);
        let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
        let timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
        let run = accel.run_batch_deep(&deep, &timed);
        let reference: Vec<usize> = inputs.iter().map(|i| deep.classify(i)).collect();
        prop_assert_eq!(run.outputs, reference);
        Ok(())
    });
}
