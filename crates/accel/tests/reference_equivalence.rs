//! Property test: the cycle-level accelerator is bit-identical to the
//! reference inference for arbitrary models and inputs.

use ncpu_accel::{AccelConfig, Accelerator};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use proptest::prelude::*;

/// Strategy: a random small BNN (2–4 layers) plus a batch of inputs.
fn model_and_inputs() -> impl Strategy<Value = (BnnModel, Vec<BitVec>)> {
    (2usize..=4, 1usize..=12, 2usize..=16, 1usize..=6).prop_flat_map(
        |(layers, neurons, input, batch)| {
            let weight_bits = prop::collection::vec(
                any::<bool>(),
                input * neurons + (layers - 1) * neurons * neurons,
            );
            let biases = prop::collection::vec(-3i32..=3, layers * neurons);
            let inputs = prop::collection::vec(
                prop::collection::vec(any::<bool>(), input),
                batch,
            );
            (weight_bits, biases, inputs).prop_map(move |(bits, biases, raw_inputs)| {
                let topo = Topology::new(input, vec![neurons; layers], neurons.min(4));
                let mut cursor = 0;
                let mut built = Vec::new();
                for l in 0..layers {
                    let n_in = topo.layer_input(l);
                    let rows: Vec<BitVec> = (0..neurons)
                        .map(|_| {
                            let row = BitVec::from_bools(
                                bits[cursor..cursor + n_in].iter().copied(),
                            );
                            cursor += n_in;
                            row
                        })
                        .collect();
                    built.push(BnnLayer::new(
                        rows,
                        biases[l * neurons..(l + 1) * neurons].to_vec(),
                    ));
                }
                let model = BnnModel::new(topo, built);
                let inputs =
                    raw_inputs.into_iter().map(BitVec::from_bools).collect::<Vec<_>>();
                (model, inputs)
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipelined and serial timing modes both match the reference model on
    /// every image of every random batch.
    #[test]
    fn accelerator_matches_reference((model, inputs) in model_and_inputs()) {
        let reference: Vec<usize> = inputs.iter().map(|i| model.classify(i)).collect();
        let mut piped = Accelerator::new(model.clone(), AccelConfig::default());
        let run = piped.run_batch(&inputs);
        prop_assert_eq!(&run.outputs, &reference);

        let mut serial = Accelerator::new(
            model.clone(),
            AccelConfig { layer_pipelining: false, ..AccelConfig::default() },
        );
        prop_assert_eq!(&serial.run_batch(&inputs).outputs, &reference);
    }

    /// Timing invariants: spans are ordered, non-overlapping per image,
    /// and the serial mode is never faster than the pipelined mode.
    #[test]
    fn timing_invariants((model, inputs) in model_and_inputs()) {
        let mut piped = Accelerator::new(model.clone(), AccelConfig::default());
        let p = piped.run_batch(&inputs);
        let mut serial = Accelerator::new(
            model.clone(),
            AccelConfig { layer_pipelining: false, ..AccelConfig::default() },
        );
        let s = serial.run_batch(&inputs);
        prop_assert!(p.total_cycles <= s.total_cycles);
        let latency: u64 = (0..model.layers().len())
            .map(|l| model.topology().layer_input(l) as u64 + ncpu_accel::SIGN_CYCLES)
            .sum();
        for (i, &(start, end)) in p.spans.iter().enumerate() {
            prop_assert!(end > start, "image {i} span must be nonempty");
            prop_assert!(end - start >= latency, "no image beats the array latency");
        }
        // Completion order follows submission order (in-order array).
        for w in p.spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Rolled (deep) execution matches the reference for models deeper
    /// than the physical array.
    #[test]
    fn deep_rollback_matches_reference((model, inputs) in model_and_inputs()) {
        // Build a deeper logical model by doubling the layer stack.
        let topo = model.topology();
        let neurons = topo.layers()[0];
        let mut layers: Vec<BnnLayer> = model.layers().to_vec();
        for l in model.layers() {
            // Re-use square layers only (first layer's input may differ).
            if l.input_len() == neurons {
                layers.push(l.clone());
            }
        }
        let deep_topo = Topology::new(
            topo.input(),
            layers.iter().map(BnnLayer::neurons).collect(),
            topo.classes(),
        );
        let deep = BnnModel::new(deep_topo, layers);
        let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
        let timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
        let run = accel.run_batch_deep(&deep, &timed);
        let reference: Vec<usize> = inputs.iter().map(|i| deep.classify(i)).collect();
        prop_assert_eq!(run.outputs, reference);
    }
}
