//! The accelerator engine: functional inference + systolic timing.

use ncpu_bnn::{BitVec, BnnModel};
use ncpu_obs::{EventKind, Recorder, TraceLevel};
use ncpu_sim::{AddressArbiter, BankId};

use crate::config::{AccelConfig, SIGN_CYCLES};
use crate::packing::pack_layer_weights;

/// Activity counters of the accelerator (inputs to the power model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelStats {
    /// Images classified.
    pub images: u64,
    /// Cycles during which at least one layer was computing.
    pub busy_cycles: u64,
    /// ±1 multiply-accumulate operations performed.
    pub macs: u64,
    /// 32-bit words read from the weight banks.
    pub weight_word_reads: u64,
    /// 32-bit words read from the image memory.
    pub image_word_reads: u64,
    /// Result words written to the output memory.
    pub output_writes: u64,
}

/// Timing and results of one batch inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRun {
    /// Predicted class per image.
    pub outputs: Vec<usize>,
    /// `(start, end)` cycle of each image's traversal of the array.
    pub spans: Vec<(u64, u64)>,
    /// Cycle the last image completed.
    pub total_cycles: u64,
}

impl BatchRun {
    /// Latency of the first image in cycles.
    pub fn first_latency(&self) -> u64 {
        self.spans.first().map_or(0, |&(s, e)| e - s)
    }

    /// Steady-state initiation interval (cycles between consecutive image
    /// completions; 0 for batches of one).
    pub fn steady_interval(&self) -> u64 {
        if self.spans.len() < 2 {
            return 0;
        }
        let (_, e1) = self.spans[self.spans.len() - 2];
        let (_, e2) = self.spans[self.spans.len() - 1];
        e2 - e1
    }
}

/// Cycle-level BNN accelerator over a trained model.
///
/// See the [crate documentation](crate) for the model and an example.
#[derive(Debug, Clone)]
pub struct Accelerator {
    model: BnnModel,
    config: AccelConfig,
    banks: AddressArbiter,
    weight_bank_ids: Vec<BankId>,
    stats: AccelStats,
    obs: Recorder,
}

impl Accelerator {
    /// Builds an accelerator and loads `model`'s weights into its banks.
    ///
    /// # Panics
    ///
    /// Panics if the model's packed weights exceed the configured bank
    /// sizes (the paper's banks fit a 784→100×4 network).
    pub fn new(model: BnnModel, config: AccelConfig) -> Accelerator {
        let mut banks = AddressArbiter::new();
        let mut weight_bank_ids = Vec::new();
        let mut base = 0u32;
        for (l, layer) in model.layers().iter().enumerate() {
            let cap = if l == 0 { config.banks.w1 } else { config.banks.w_deep };
            let packed = pack_layer_weights(layer);
            assert!(packed.len() <= cap, "layer {l} weights ({} B) exceed bank ({cap} B)", packed.len());
            let id = banks.add_bank(format!("w{}", l + 1), base, cap);
            banks.bank_mut(id).load(0, &packed);
            weight_bank_ids.push(id);
            base += cap as u32;
        }
        banks.add_bank("image", base, config.banks.image);
        banks.add_bank("output", base + config.banks.image as u32, config.banks.output);
        Accelerator {
            model,
            config,
            banks,
            weight_bank_ids,
            stats: AccelStats::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Enables event recording at `level`: each image becomes a `bnn`
    /// phase span and each batch an inference event, stamped in the
    /// caller's cycle domain (batch `avail` times are caller cycles).
    pub fn set_obs_level(&mut self, level: TraceLevel) {
        self.obs.set_level(level);
    }

    /// The accelerator's recorder shard, for the embedding SoC to absorb.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// The model being served.
    pub fn model(&self) -> &BnnModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &AccelStats {
        &self.stats
    }

    /// The SRAM banks (weights, image, output) for inspection.
    pub fn banks(&self) -> &AddressArbiter {
        &self.banks
    }

    /// Mutable access to the SRAM banks. The NCPU core routes CPU-mode
    /// data-cache accesses through here — the memory-reuse scheme of paper
    /// Fig. 4 — so data written by the CPU is readable by the accelerator
    /// in place.
    pub fn banks_mut(&mut self) -> &mut AddressArbiter {
        &mut self.banks
    }

    /// Base address of the image memory within the bank address space.
    pub fn image_base(&self) -> u32 {
        let layers = self.model.layers().len();
        (self.config.banks.w1 + self.config.banks.w_deep * (layers - 1)) as u32
    }

    /// Base address of the output (result) memory.
    pub fn output_base(&self) -> u32 {
        self.image_base() + self.config.banks.image as u32
    }

    /// Total packed weight bytes (what a naive mode switch would reload).
    pub fn packed_weight_bytes(&self) -> usize {
        self.model
            .layers()
            .iter()
            .map(|l| l.neurons() * crate::packing::packed_row_bytes(l.input_len()))
            .sum()
    }

    /// Cycles one image spends in layer `l`: one broadcast cycle per input
    /// bit plus the sign stage.
    pub fn layer_cycles(&self, l: usize) -> u64 {
        self.model.topology().layer_input(l) as u64 + SIGN_CYCLES
    }

    /// Latency of a single image through all layers.
    pub fn image_latency(&self) -> u64 {
        (0..self.model.layers().len()).map(|l| self.layer_cycles(l)).sum()
    }

    /// Steady-state initiation interval under layer pipelining: the longest
    /// single layer pass (the first layer for the paper's 784-input net).
    pub fn pipelined_interval(&self) -> u64 {
        (0..self.model.layers().len())
            .map(|l| self.layer_cycles(l))
            .max()
            .unwrap_or(0)
    }

    /// Classifies one image; returns `(class, latency_cycles)`.
    pub fn infer(&mut self, input: &BitVec) -> (usize, u64) {
        let run = self.run_batch(std::slice::from_ref(input));
        (run.outputs[0], run.total_cycles)
    }

    /// Classifies a batch, all images available at cycle 0.
    pub fn run_batch(&mut self, inputs: &[BitVec]) -> BatchRun {
        let avail: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
        self.run_batch_timed(&avail)
    }

    /// Classifies a batch where image `i` becomes available in the image
    /// memory at cycle `avail_i` (e.g. as DMA delivers it).
    ///
    /// Functional results are computed with the reference model; timing
    /// follows the systolic recurrence (see the crate docs).
    pub fn run_batch_timed(&mut self, inputs: &[(BitVec, u64)]) -> BatchRun {
        let layers = self.model.layers().len();
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut spans = Vec::with_capacity(inputs.len());
        // end[l] = cycle layer l last freed up.
        let mut layer_free = vec![0u64; layers];
        let mut last_end = 0u64;
        let mut prev_busy_end = 0u64;

        for (input, avail) in inputs {
            // ---- functional ----
            outputs.push(self.model.classify(input));
            self.count_activity(input);

            // ---- timing ----
            let mut t = *avail;
            let start;
            if self.config.layer_pipelining {
                let mut entry = t.max(layer_free[0]);
                start = entry;
                for (l, free) in layer_free.iter_mut().enumerate() {
                    let begin = entry.max(*free);
                    let end = begin + self.layer_cycles(l);
                    *free = end;
                    entry = end;
                }
                t = entry;
            } else {
                // Ablation: one image occupies the whole array at a time.
                start = t.max(last_end);
                t = start + self.image_latency();
                for f in layer_free.iter_mut() {
                    *f = t;
                }
            }
            last_end = t;
            spans.push((start, t));
            // Busy accounting: the array is busy from each image's start to
            // end; overlaps (pipelining) are not double-counted.
            let busy_start = start.max(prev_busy_end);
            self.stats.busy_cycles += t.saturating_sub(busy_start);
            prev_busy_end = prev_busy_end.max(t);
        }
        self.record_batch(&spans, last_end);
        BatchRun { outputs, spans, total_cycles: last_end }
    }

    /// Classifies a batch with a model *deeper* than the physical array by
    /// wrapping outputs back to the first layer (paper Section VIII-A:
    /// "deeper BNN with more layers can be supported by rolling back the
    /// BNN operation").
    ///
    /// Logical layer `l` executes on physical layer `l % depth`, so an
    /// image's second pass contends with the next image's first pass; the
    /// systolic recurrence accounts for that occupancy.
    ///
    /// # Panics
    ///
    /// Panics if any logical layer is wider than the physical array or
    /// wider than its physical weight bank allows.
    pub fn run_batch_deep(&mut self, deep: &BnnModel, inputs: &[(BitVec, u64)]) -> BatchRun {
        let phys = self.model.layers().len();
        let phys_neurons = self.model.layers()[0].neurons();
        for (l, layer) in deep.layers().iter().enumerate() {
            assert!(
                layer.neurons() <= phys_neurons,
                "logical layer {l} ({} neurons) exceeds the {phys_neurons}-neuron array",
                layer.neurons()
            );
            let cap = if l % phys == 0 { self.config.banks.w1 } else { self.config.banks.w_deep };
            let bytes = layer.neurons() * crate::packing::packed_row_bytes(layer.input_len());
            assert!(bytes <= cap, "logical layer {l} weights exceed bank capacity");
        }
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut spans = Vec::with_capacity(inputs.len());
        let mut phys_free = vec![0u64; phys];
        let mut last_end = 0u64;
        let mut prev_busy_end = 0u64;
        for (input, avail) in inputs {
            outputs.push(deep.classify(input));
            self.stats.images += 1;
            self.stats.macs += deep.topology().macs() as u64;
            let mut entry = (*avail).max(phys_free[0]);
            let start = entry;
            for (l, _) in deep.layers().iter().enumerate() {
                let p = l % phys;
                let begin = entry.max(phys_free[p]);
                let end = begin + deep.topology().layer_input(l) as u64 + SIGN_CYCLES;
                phys_free[p] = end;
                entry = end;
            }
            last_end = entry;
            spans.push((start, entry));
            let busy_start = start.max(prev_busy_end);
            self.stats.busy_cycles += entry.saturating_sub(busy_start);
            prev_busy_end = prev_busy_end.max(entry);
        }
        self.record_batch(&spans, last_end);
        BatchRun { outputs, spans, total_cycles: last_end }
    }

    fn record_batch(&mut self, spans: &[(u64, u64)], last_end: u64) {
        if !self.obs.wants_spans() || spans.is_empty() {
            return;
        }
        for &(start, end) in spans {
            self.obs.phase(0, "bnn", start, end);
        }
        self.obs.emit(
            0,
            spans[0].0,
            EventKind::Inference { images: spans.len() as u32, end: last_end },
        );
    }

    fn count_activity(&mut self, input: &BitVec) {
        let topo = self.model.topology().clone();
        self.stats.images += 1;
        self.stats.macs += topo.macs() as u64;
        self.stats.image_word_reads += (input.len() as u64).div_ceil(32);
        self.stats.output_writes += topo.classes() as u64;
        for l in 0..self.weight_bank_ids.len() {
            let words =
                (topo.layer_input(l) as u64 * topo.layers()[l] as u64).div_ceil(32);
            self.stats.weight_word_reads += words;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::Topology;

    fn tiny_model() -> BnnModel {
        // Deterministic pseudo-random weights, nonzero biases.
        let topo = Topology::new(24, vec![10, 10], 4);
        let mut layers = Vec::new();
        for l in 0..2 {
            let inputs = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..10)
                .map(|j| BitVec::from_bools((0..inputs).map(|i| (i * 7 + j * 3 + l) % 5 < 2)))
                .collect();
            let bias = (0..10).map(|j| (j % 3) - 1).collect();
            layers.push(ncpu_bnn::BnnLayer::new(rows, bias));
        }
        BnnModel::new(topo, layers)
    }

    #[test]
    fn functional_matches_reference() {
        let model = tiny_model();
        let mut acc = Accelerator::new(model.clone(), AccelConfig::default());
        for k in 0..20 {
            let input = BitVec::from_bools((0..24).map(|i| (i + k) % 3 == 0));
            let (class, _) = acc.infer(&input);
            assert_eq!(class, model.classify(&input), "image {k}");
        }
        assert_eq!(acc.stats().images, 20);
    }

    #[test]
    fn single_image_latency_is_sum_of_layers() {
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        let run = acc.run_batch(&[BitVec::zeros(24)]);
        // Layer 1: 24+1, layer 2: 10+1 -> 36 cycles.
        assert_eq!(run.total_cycles, 36);
        assert_eq!(run.first_latency(), 36);
        assert_eq!(acc.image_latency(), 36);
    }

    #[test]
    fn pipelining_overlaps_images() {
        let inputs: Vec<BitVec> = (0..8).map(|_| BitVec::zeros(24)).collect();
        let mut piped = Accelerator::new(tiny_model(), AccelConfig::default());
        let mut serial = Accelerator::new(
            tiny_model(),
            AccelConfig { layer_pipelining: false, ..Default::default() },
        );
        let p = piped.run_batch(&inputs);
        let s = serial.run_batch(&inputs);
        // Pipelined: 36 + 7×25 (first layer bound) = 211. Serial: 8×36.
        assert_eq!(p.total_cycles, 36 + 7 * 25);
        assert_eq!(s.total_cycles, 8 * 36);
        assert_eq!(p.steady_interval(), piped.pipelined_interval());
        assert_eq!(p.outputs, s.outputs, "timing mode must not change results");
    }

    #[test]
    fn availability_times_delay_entry() {
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        let run = acc.run_batch_timed(&[(BitVec::zeros(24), 100)]);
        assert_eq!(run.spans[0], (100, 136));
    }

    #[test]
    fn busy_cycles_do_not_exceed_makespan() {
        let inputs: Vec<(BitVec, u64)> =
            (0..5).map(|i| (BitVec::zeros(24), i * 500)).collect();
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        let run = acc.run_batch_timed(&inputs);
        assert!(acc.stats().busy_cycles <= run.total_cycles);
        // Widely spaced arrivals: no overlap, busy = 5 × 36.
        assert_eq!(acc.stats().busy_cycles, 5 * 36);
    }

    #[test]
    fn traced_batches_emit_image_spans() {
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        acc.set_obs_level(TraceLevel::Counters);
        let run = acc.run_batch(&[BitVec::zeros(24), BitVec::zeros(24)]);
        let spans = acc.obs_mut().spans().to_vec();
        // Two per-image "bnn" phases plus one batch inference span.
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, EventKind::Phase { label: "bnn".into(), end: run.spans[0].1 });
        assert_eq!(
            spans[2].kind,
            EventKind::Inference { images: 2, end: run.total_cycles }
        );
    }

    #[test]
    fn stats_count_memory_traffic() {
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        acc.infer(&BitVec::zeros(24));
        let s = acc.stats();
        assert_eq!(s.macs, (24 * 10 + 10 * 10) as u64);
        assert_eq!(s.image_word_reads, 1);
        assert_eq!(s.output_writes, 4);
        assert_eq!(s.weight_word_reads, (240u64).div_ceil(32) + (100u64).div_ceil(32));
    }

    #[test]
    fn deep_rollback_matches_reference_and_slows_throughput() {
        // An 8-layer logical model on the 2-physical-layer tiny array.
        let topo = Topology::new(24, vec![10; 8], 4);
        let mut layers = Vec::new();
        for l in 0..8 {
            let inputs = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..10)
                .map(|j| BitVec::from_bools((0..inputs).map(|i| (i * 3 + j + l) % 5 < 2)))
                .collect();
            layers.push(ncpu_bnn::BnnLayer::new(rows, vec![0; 10]));
        }
        let deep = BnnModel::new(topo, layers);
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        let inputs: Vec<(BitVec, u64)> =
            (0..4).map(|k| (BitVec::from_bools((0..24).map(|i| (i + k) % 3 == 0)), 0)).collect();
        let run = acc.run_batch_deep(&deep, &inputs);
        for (k, (input, _)) in inputs.iter().enumerate() {
            assert_eq!(run.outputs[k], deep.classify(input), "image {k}");
        }
        // Latency of one image = sum of all logical layer passes.
        let single: u64 = (0..8).map(|l| deep.topology().layer_input(l) as u64 + 1).sum();
        assert_eq!(run.first_latency(), single);
        // Throughput: wrapping halves the effective pipeline depth, so the
        // steady interval exceeds the plain 2-layer interval.
        let plain_interval = acc.pipelined_interval();
        assert!(run.steady_interval() > plain_interval);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn deep_rollback_checks_width() {
        let topo = Topology::new(24, vec![512; 4], 4);
        let deep = BnnModel::zeros(&topo);
        let mut acc = Accelerator::new(tiny_model(), AccelConfig::default());
        acc.run_batch_deep(&deep, &[(BitVec::zeros(24), 0)]);
    }

    #[test]
    fn paper_network_fits_default_banks() {
        let topo = Topology::paper(784, 100, 10);
        let model = BnnModel::zeros(&topo);
        let acc = Accelerator::new(model, AccelConfig::default());
        // Throughput interval = first layer: 784 + 1 cycles.
        assert_eq!(acc.pipelined_interval(), 785);
        assert_eq!(acc.image_latency(), 785 + 3 * 101);
    }
}
