//! Accelerator configuration and the paper's SRAM bank sizes.

/// Cycles the sign/bias stage adds at the end of each layer pass.
pub const SIGN_CYCLES: u64 = 1;

/// On-chip SRAM bank capacities of one NCPU core (paper Fig. 4(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSizes {
    /// Layer-1 weight memory in bytes (reused as data cache in CPU mode).
    pub w1: usize,
    /// Weight memory per deeper layer (layers 2–4) in bytes.
    pub w_deep: usize,
    /// Input image memory in bytes.
    pub image: usize,
    /// Output (classification result) memory in bytes.
    pub output: usize,
    /// Bias memory in bytes.
    pub bias: usize,
    /// Instruction cache in bytes (CPU mode only).
    pub icache: usize,
    /// Register file in bytes (CPU mode only; 32 × 32-bit).
    pub regfile: usize,
}

impl Default for BankSizes {
    /// The fabricated chip's sizes: W1 25 KiB, W2–W4 6.5 KiB each, image
    /// 4 KiB, output 1 KiB, bias 1 KiB, I$ 4 KiB, RF 1 Kib (128 B).
    fn default() -> BankSizes {
        BankSizes {
            w1: 25 * 1024,
            w_deep: 6 * 1024 + 512,
            image: 4 * 1024,
            output: 1024,
            bias: 1024,
            icache: 4 * 1024,
            regfile: 128,
        }
    }
}

impl BankSizes {
    /// Total SRAM bytes of one core for a `layers`-layer accelerator.
    pub fn total_bytes(&self, layers: usize) -> usize {
        self.w1
            + self.w_deep * layers.saturating_sub(1)
            + self.image
            + self.output
            + self.bias
            + self.icache
            + self.regfile
    }
}

/// Accelerator configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelConfig {
    /// Whether layers are pipelined across images (the paper's design).
    /// Disabled only by the `ablation_pipelining` experiment.
    pub layer_pipelining: bool,
    /// SRAM bank capacities.
    pub banks: BankSizes,
}

impl Default for AccelConfig {
    fn default() -> AccelConfig {
        AccelConfig { layer_pipelining: true, banks: BankSizes::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bank_budget() {
        let b = BankSizes::default();
        // 25 + 3×6.5 + 4 + 1 + 1 + 4 KiB + RF ≈ 54.6 KiB per core.
        let total = b.total_bytes(4);
        assert!((54 * 1024..56 * 1024).contains(&total), "total {total}");
    }
}
