//! Weight layout in the SRAM banks.
//!
//! Weights are stored neuron-major: one row of `ceil(inputs/8)` bytes per
//! neuron, padded to a 32-bit boundary so each broadcast cycle reads whole
//! words. The same layout is what the NCPU's CPU mode sees when the weight
//! banks are reconfigured as data cache, so it must round-trip exactly.

use ncpu_bnn::{BitVec, BnnLayer};

/// Bytes one padded weight row occupies for a layer with `inputs` inputs.
pub fn packed_row_bytes(inputs: usize) -> usize {
    inputs.div_ceil(8).div_ceil(4) * 4
}

/// Packs a layer's weight rows into the bank image.
///
/// Returns the packed bytes: `neurons × packed_row_bytes(inputs)`.
pub fn pack_layer_weights(layer: &BnnLayer) -> Vec<u8> {
    let row_bytes = packed_row_bytes(layer.input_len());
    let mut out = vec![0u8; layer.neurons() * row_bytes];
    for j in 0..layer.neurons() {
        let row = layer.weight_row(j).to_bytes();
        out[j * row_bytes..j * row_bytes + row.len()].copy_from_slice(&row);
    }
    out
}

/// Recovers weight rows from a packed bank image.
///
/// # Panics
///
/// Panics if `bytes` is shorter than `neurons × packed_row_bytes(inputs)`.
pub fn unpack_layer_weights(bytes: &[u8], inputs: usize, neurons: usize) -> Vec<BitVec> {
    let row_bytes = packed_row_bytes(inputs);
    assert!(bytes.len() >= neurons * row_bytes, "bank image too small");
    (0..neurons)
        .map(|j| BitVec::from_bytes(&bytes[j * row_bytes..(j + 1) * row_bytes], inputs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_padding() {
        assert_eq!(packed_row_bytes(784), 100); // 98 -> 100
        assert_eq!(packed_row_bytes(100), 16); // 13 -> 16
        assert_eq!(packed_row_bytes(32), 4);
        assert_eq!(packed_row_bytes(1), 4);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let rows: Vec<BitVec> = (0..5)
            .map(|j| BitVec::from_bools((0..77).map(|i| (i * 3 + j) % 4 == 0)))
            .collect();
        let layer = BnnLayer::new(rows.clone(), vec![0; 5]);
        let packed = pack_layer_weights(&layer);
        assert_eq!(packed.len(), 5 * packed_row_bytes(77));
        assert_eq!(unpack_layer_weights(&packed, 77, 5), rows);
    }

    #[test]
    fn paper_sizes_fit_their_banks() {
        // Layer 1: 784 inputs × 100 neurons -> 10 000 B ≤ 25 KiB.
        assert!(100 * packed_row_bytes(784) <= 25 * 1024);
        // Deep layers: 100 × 100 -> 1 600 B ≤ 6.5 KiB.
        assert!(100 * packed_row_bytes(100) <= 6 * 1024 + 512);
    }
}
