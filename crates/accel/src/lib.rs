//! Cycle-level binary-neural-network accelerator (the standalone baseline).
//!
//! Models the paper's Fig. 2 design: a multi-layer array of XNOR neurons,
//! fed bit-serially from SRAM, with layers pipelined so several images are
//! in flight at once (the property the end-to-end baseline of Fig. 13
//! relies on). The model is exact in two senses:
//!
//! * **functional** — classification results are bit-identical to the
//!   reference [`ncpu_bnn::BnnModel`] inference (differential-tested),
//! * **timing** — per-image layer occupancy follows the systolic
//!   recurrence `start(i,l) = max(end(i,l−1), end(i−1,l))` with
//!   `layer_cycles(l) = inputs(l) + SIGN_CYCLES`, which is cycle-exact for
//!   the bit-serial broadcast datapath.
//!
//! Weights and biases live in modeled SRAM banks (paper Fig. 4(a) sizes);
//! the access counters feed the activity-based power model.
//!
//! # Examples
//!
//! ```
//! use ncpu_accel::{AccelConfig, Accelerator};
//! use ncpu_bnn::{BitVec, BnnModel, Topology};
//!
//! let topo = Topology::new(16, vec![8, 8], 4);
//! let model = BnnModel::zeros(&topo);
//! let mut acc = Accelerator::new(model, AccelConfig::default());
//! let run = acc.run_batch(&[BitVec::zeros(16)]);
//! assert_eq!(run.outputs.len(), 1);
//! assert!(run.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod packing;

pub use config::{AccelConfig, BankSizes, SIGN_CYCLES};
pub use engine::{Accelerator, AccelStats, BatchRun};
pub use packing::{pack_layer_weights, packed_row_bytes, unpack_layer_weights};
