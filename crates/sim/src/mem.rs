//! Banked SRAM model with the address arbiter of paper Fig. 4(b).

use std::cell::Cell;
use std::error::Error;
use std::fmt;

/// Identifies one [`SramBank`] within an [`AddressArbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub(crate) usize);

impl BankId {
    /// The bank's index in arbiter registration order.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Error raised on an out-of-range or misaligned SRAM access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The byte address is not mapped by any bank.
    Unmapped {
        /// Faulting global byte address.
        addr: u32,
    },
    /// The access crosses the end of its bank.
    OutOfRange {
        /// Name of the bank.
        bank: String,
        /// Faulting in-bank byte offset.
        offset: u32,
        /// Bank capacity in bytes.
        capacity: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "address {addr:#x} is not mapped"),
            MemError::OutOfRange { bank, offset, capacity } => {
                write!(f, "offset {offset:#x} out of range for bank `{bank}` ({capacity} bytes)")
            }
        }
    }
}

impl Error for MemError {}

/// One physical SRAM bank: a byte array with access counters.
///
/// The counters (`reads`/`writes`) feed the activity-based power model; the
/// `enabled` flag models the clock gating the paper applies to unused banks
/// ("the rest of the unused memory are clock gated").
///
/// # Examples
///
/// ```
/// use ncpu_sim::SramBank;
///
/// let mut bank = SramBank::new("w1", 25 * 1024);
/// bank.write_word(0, 0xdead_beef).unwrap();
/// assert_eq!(bank.read_word(0).unwrap(), 0xdead_beef);
/// assert_eq!(bank.reads(), 1);
/// assert_eq!(bank.writes(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SramBank {
    name: String,
    data: Vec<u8>,
    reads: u64,
    writes: u64,
    enabled: bool,
}

impl SramBank {
    /// Creates a zero-initialized bank of `bytes` bytes.
    pub fn new(name: impl Into<String>, bytes: usize) -> SramBank {
        SramBank { name: name.into(), data: vec![0; bytes], reads: 0, writes: 0, enabled: true }
    }

    /// The bank's name (used in power reports and errors).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of counted read accesses.
    pub const fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of counted write accesses.
    pub const fn writes(&self) -> u64 {
        self.writes
    }

    /// Whether the bank's clock is running (gated banks draw no dynamic power).
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or clock-gates the bank. Gated banks remain readable in the
    /// simulator (data is retained); only the accounting changes.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Resets the access counters (e.g. at a phase boundary).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    fn check(&self, offset: u32, width: u32) -> Result<(), MemError> {
        if offset as usize + width as usize > self.data.len() {
            Err(MemError::OutOfRange {
                bank: self.name.clone(),
                offset,
                capacity: self.data.len() as u32,
            })
        } else {
            Ok(())
        }
    }

    /// Reads `width` bytes little-endian at `offset`, counting one access.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the bank end.
    pub fn read(&mut self, offset: u32, width: u32) -> Result<u32, MemError> {
        self.check(offset, width)?;
        self.reads += 1;
        let mut raw = 0u32;
        for i in 0..width as usize {
            raw |= (self.data[offset as usize + i] as u32) << (8 * i);
        }
        Ok(raw)
    }

    /// Writes the low `width` bytes of `value` little-endian at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the bank end.
    pub fn write(&mut self, offset: u32, width: u32, value: u32) -> Result<(), MemError> {
        self.check(offset, width)?;
        self.writes += 1;
        for i in 0..width as usize {
            self.data[offset as usize + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Reads a 32-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn read_word(&mut self, offset: u32) -> Result<u32, MemError> {
        self.read(offset, 4)
    }

    /// Writes a 32-bit word at `offset`.
    ///
    /// # Errors
    ///
    /// See [`write`](Self::write).
    pub fn write_word(&mut self, offset: u32, value: u32) -> Result<(), MemError> {
        self.write(offset, 4, value)
    }

    /// Bulk-loads `bytes` starting at `offset` without counting accesses
    /// (models production-time initialization, not runtime traffic).
    ///
    /// # Panics
    ///
    /// Panics if the data does not fit.
    pub fn load(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Raw view of the bank contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Routes a flat address space onto multiple [`SramBank`]s, enabling exactly
/// one bank per access — the address-arbiter design of paper Fig. 4(b).
///
/// Banks are registered with a base address; lookups are linear over the
/// (small) bank list, matching the one-hot enable logic of the hardware.
///
/// # Examples
///
/// ```
/// use ncpu_sim::AddressArbiter;
///
/// let mut arb = AddressArbiter::new();
/// let w1 = arb.add_bank("w1", 0x0000, 1024);
/// let w2 = arb.add_bank("w2", 0x1000, 1024);
/// arb.write(0x1004, 4, 7).unwrap();
/// assert_eq!(arb.read(0x1004, 4).unwrap(), 7);
/// assert_eq!(arb.bank(w2).writes(), 1);
/// assert_eq!(arb.bank(w1).writes(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressArbiter {
    banks: Vec<SramBank>,
    bases: Vec<u32>,
    /// Most-recently-hit bank: the single-requester fast path. Simulated
    /// access streams are heavily bank-local (a CPU phase hammers the data
    /// cache, an inference phase streams one weight bank), so checking the
    /// last hit first turns the linear scan into O(1) for the common case.
    /// A `Cell` because `resolve` is logically read-only; the hint only
    /// affects speed, never which bank an address maps to.
    last_hit: Cell<usize>,
}

impl AddressArbiter {
    /// Creates an arbiter with no banks.
    pub fn new() -> AddressArbiter {
        AddressArbiter::default()
    }

    /// Registers a bank mapped at `[base, base + bytes)` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the new range overlaps an existing bank; overlapping windows
    /// would make the one-hot enable ambiguous.
    pub fn add_bank(&mut self, name: impl Into<String>, base: u32, bytes: usize) -> BankId {
        let end = base as u64 + bytes as u64;
        for (i, b) in self.banks.iter().enumerate() {
            let b0 = self.bases[i] as u64;
            let b1 = b0 + b.capacity() as u64;
            assert!(
                end <= b0 || base as u64 >= b1,
                "bank range overlaps existing bank `{}`",
                b.name()
            );
        }
        self.banks.push(SramBank::new(name, bytes));
        self.bases.push(base);
        BankId(self.banks.len() - 1)
    }

    /// Number of registered banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this arbiter.
    pub fn bank(&self, id: BankId) -> &SramBank {
        &self.banks[id.0]
    }

    /// Mutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this arbiter.
    pub fn bank_mut(&mut self, id: BankId) -> &mut SramBank {
        &mut self.banks[id.0]
    }

    /// Iterates over `(base, bank)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SramBank)> {
        self.bases.iter().copied().zip(self.banks.iter())
    }

    /// Mutable iteration over `(base, bank)` pairs in registration order
    /// (bulk state capture/restore across all banks).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut SramBank)> {
        self.bases.iter().copied().zip(self.banks.iter_mut())
    }

    /// Resolves a global address to its bank and in-bank offset.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no bank covers `addr`.
    pub fn resolve(&self, addr: u32) -> Result<(BankId, u32), MemError> {
        let hint = self.last_hit.get();
        if let Some(bank) = self.banks.get(hint) {
            let base = self.bases[hint];
            if addr >= base && (addr as u64) < base as u64 + bank.capacity() as u64 {
                return Ok((BankId(hint), addr - base));
            }
        }
        for (i, bank) in self.banks.iter().enumerate() {
            let base = self.bases[i];
            if addr >= base && (addr as u64) < base as u64 + bank.capacity() as u64 {
                self.last_hit.set(i);
                return Ok((BankId(i), addr - base));
            }
        }
        Err(MemError::Unmapped { addr })
    }

    /// Reads `width` bytes at global address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or bank-crossing accesses.
    pub fn read(&mut self, addr: u32, width: u32) -> Result<u32, MemError> {
        let (id, offset) = self.resolve(addr)?;
        self.banks[id.0].read(offset, width)
    }

    /// Writes the low `width` bytes of `value` at global address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped or bank-crossing accesses.
    pub fn write(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MemError> {
        let (id, offset) = self.resolve(addr)?;
        self.banks[id.0].write(offset, width, value)
    }

    /// Total read+write accesses across all banks.
    pub fn total_accesses(&self) -> u64 {
        self.banks.iter().map(|b| b.reads() + b.writes()).sum()
    }

    /// Resets every bank's access counters.
    pub fn reset_counters(&mut self) {
        for b in &mut self.banks {
            b.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_counts_accesses() {
        let mut b = SramBank::new("t", 16);
        b.write_word(0, 1).unwrap();
        b.write_word(4, 2).unwrap();
        b.read_word(0).unwrap();
        assert_eq!((b.reads(), b.writes()), (1, 2));
        b.reset_counters();
        assert_eq!((b.reads(), b.writes()), (0, 0));
    }

    #[test]
    fn bank_rejects_out_of_range() {
        let mut b = SramBank::new("t", 8);
        assert!(matches!(b.read(6, 4), Err(MemError::OutOfRange { .. })));
        assert!(b.read(4, 4).is_ok());
    }

    #[test]
    fn bank_subword_access() {
        let mut b = SramBank::new("t", 8);
        b.write_word(0, 0x0403_0201).unwrap();
        assert_eq!(b.read(1, 2).unwrap(), 0x0302);
        b.write(3, 1, 0xff).unwrap();
        assert_eq!(b.read_word(0).unwrap(), 0xff03_0201);
    }

    #[test]
    fn load_does_not_count() {
        let mut b = SramBank::new("t", 8);
        b.load(0, &[1, 2, 3, 4]);
        assert_eq!(b.writes(), 0);
        assert_eq!(b.read_word(0).unwrap(), 0x0403_0201);
    }

    #[test]
    fn arbiter_routes_by_address() {
        let mut arb = AddressArbiter::new();
        let a = arb.add_bank("a", 0, 64);
        let b = arb.add_bank("b", 0x100, 64);
        arb.write(0x10, 4, 1).unwrap();
        arb.write(0x110, 4, 2).unwrap();
        assert_eq!(arb.bank(a).writes(), 1);
        assert_eq!(arb.bank(b).writes(), 1);
        assert_eq!(arb.read(0x110, 4).unwrap(), 2);
        assert_eq!(arb.total_accesses(), 3);
    }

    #[test]
    fn arbiter_fast_path_never_changes_routing() {
        // Alternate between banks so the MRU hint is wrong on every other
        // access; resolution must be identical to a fresh arbiter's.
        let mut arb = AddressArbiter::new();
        arb.add_bank("a", 0, 64);
        arb.add_bank("b", 0x100, 64);
        arb.add_bank("c", 0x200, 64);
        for round in 0..3 {
            for (addr, want) in [(0x10u32, 0usize), (0x210, 2), (0x110, 1), (0x3f, 0)] {
                let (id, off) = arb.resolve(addr).unwrap();
                assert_eq!(id.index(), want, "round {round} addr {addr:#x}");
                assert_eq!(off, addr & 0xff, "round {round} addr {addr:#x}");
            }
            assert!(matches!(arb.resolve(0x300), Err(MemError::Unmapped { .. })));
        }
    }

    #[test]
    fn arbiter_reports_unmapped() {
        let mut arb = AddressArbiter::new();
        arb.add_bank("a", 0, 64);
        assert_eq!(arb.read(64, 4), Err(MemError::Unmapped { addr: 64 }));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn arbiter_rejects_overlap() {
        let mut arb = AddressArbiter::new();
        arb.add_bank("a", 0, 64);
        arb.add_bank("b", 32, 64);
    }

    #[test]
    fn arbiter_adjacent_banks_ok() {
        let mut arb = AddressArbiter::new();
        arb.add_bank("a", 0, 64);
        arb.add_bank("b", 64, 64);
        assert_eq!(arb.resolve(63).unwrap().0.index(), 0);
        assert_eq!(arb.resolve(64).unwrap().0.index(), 1);
    }

    #[test]
    fn gating_flag_toggles() {
        let mut b = SramBank::new("t", 8);
        assert!(b.is_enabled());
        b.set_enabled(false);
        assert!(!b.is_enabled());
    }
}
