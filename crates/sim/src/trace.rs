//! Bucketed power-versus-time recording (paper Fig. 16).

/// Records average power per fixed-width cycle bucket.
///
/// Producers call [`add_span`](PowerTrace::add_span) with the power drawn
/// over a cycle interval; the trace accumulates energy into buckets and
/// reports the bucket-average power, mirroring how the paper's transient
/// power traces were captured with an oscilloscope.
///
/// # Examples
///
/// ```
/// use ncpu_sim::PowerTrace;
///
/// let mut trace = PowerTrace::new(100);
/// trace.add_span(0, 50, 10.0);   // 10 mW for half the first bucket
/// trace.add_span(50, 200, 2.0);  // 2 mW afterwards
/// let s = trace.samples();
/// assert!((s[0] - 6.0).abs() < 1e-9);
/// assert!((s[1] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerTrace {
    bucket_cycles: u64,
    /// Accumulated energy per bucket in mW·cycles.
    energy: Vec<f64>,
}

impl PowerTrace {
    /// Creates a trace with `bucket_cycles`-wide sample buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> PowerTrace {
        assert!(bucket_cycles > 0, "bucket width must be nonzero");
        PowerTrace { bucket_cycles, energy: Vec::new() }
    }

    /// Width of one sample bucket in cycles.
    pub const fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Accumulates `power_mw` over the cycle interval `[start, end)`.
    pub fn add_span(&mut self, start: u64, end: u64, power_mw: f64) {
        if end <= start {
            return;
        }
        let last_bucket = ((end - 1) / self.bucket_cycles) as usize;
        if self.energy.len() <= last_bucket {
            self.energy.resize(last_bucket + 1, 0.0);
        }
        let mut cursor = start;
        while cursor < end {
            let bucket = (cursor / self.bucket_cycles) as usize;
            let bucket_end = (bucket as u64 + 1) * self.bucket_cycles;
            let span_end = end.min(bucket_end);
            self.energy[bucket] += power_mw * (span_end - cursor) as f64;
            cursor = span_end;
        }
    }

    /// Average power per bucket, in mW.
    pub fn samples(&self) -> Vec<f64> {
        self.energy.iter().map(|e| e / self.bucket_cycles as f64).collect()
    }

    /// Total accumulated energy in mW·cycles (divide by frequency for J).
    pub fn total_energy_mw_cycles(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Number of buckets currently recorded.
    pub fn len(&self) -> usize {
        self.energy.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty()
    }

    /// Renders the trace as two-column CSV (`cycle,power_mw`), one row per
    /// bucket, for plotting the Fig. 16 power traces externally.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,power_mw\n");
        for (i, p) in self.samples().iter().enumerate() {
            out.push_str(&format!("{},{p:.6}\n", i as u64 * self.bucket_cycles));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_split_across_buckets() {
        let mut t = PowerTrace::new(10);
        t.add_span(5, 25, 1.0); // buckets 0 (5 cyc), 1 (10 cyc), 2 (5 cyc)
        let s = t.samples();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_spans_accumulate() {
        let mut t = PowerTrace::new(10);
        t.add_span(0, 10, 1.0);
        t.add_span(0, 10, 2.0);
        assert!((t.samples()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_spans() {
        let mut t = PowerTrace::new(10);
        t.add_span(5, 5, 100.0);
        assert!(t.is_empty());
        assert_eq!(t.total_energy_mw_cycles(), 0.0);
    }

    #[test]
    fn total_energy_matches_sum() {
        let mut t = PowerTrace::new(7);
        t.add_span(0, 21, 2.0);
        assert!((t.total_energy_mw_cycles() - 42.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        PowerTrace::new(0);
    }

    #[test]
    fn csv_has_one_row_per_bucket() {
        let mut t = PowerTrace::new(10);
        t.add_span(0, 25, 2.0);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 buckets");
        assert_eq!(lines[0], "cycle,power_mw");
        assert!(lines[1].starts_with("0,2.0"));
        assert!(lines[3].starts_with("20,"));
    }
}
