//! Cycle statistics: utilization tracking and labelled phase timelines.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Tracks how many cycles a unit was busy out of a total window.
///
/// # Examples
///
/// ```
/// use ncpu_sim::stats::Utilization;
///
/// let mut u = Utilization::new();
/// u.add_busy(80);
/// u.add_idle(20);
/// assert!((u.fraction() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Utilization {
    busy: u64,
    total: u64,
}

impl Utilization {
    /// Creates an empty tracker.
    pub fn new() -> Utilization {
        Utilization::default()
    }

    /// Adds `cycles` of busy time.
    pub fn add_busy(&mut self, cycles: u64) {
        self.busy += cycles;
        self.total += cycles;
    }

    /// Adds `cycles` of idle time.
    pub fn add_idle(&mut self, cycles: u64) {
        self.total += cycles;
    }

    /// Extends the window to `total` cycles, treating the growth as idle.
    ///
    /// # Panics
    ///
    /// Panics if `total` is smaller than the current window.
    pub fn close_window(&mut self, total: u64) {
        assert!(total >= self.total, "window cannot shrink");
        self.total = total;
    }

    /// Busy cycles recorded.
    pub const fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Total window length in cycles.
    pub const fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Busy fraction in `[0, 1]` (zero for an empty window).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.fraction() * 100.0)
    }
}

/// One labelled span of execution on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase label, e.g. `"resize"` or `"bnn"`.
    pub label: String,
    /// First cycle of the span.
    pub start: u64,
    /// One past the last cycle of the span.
    pub end: u64,
}

impl Span {
    /// Length of the span in cycles.
    pub const fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Ordered record of labelled execution spans.
///
/// Regenerates the paper's runtime breakdowns (Fig. 15) and timeline plots
/// (Fig. 13/16): each pre-processing stage, each inference, and each idle
/// gap becomes one span.
///
/// # Examples
///
/// ```
/// use ncpu_sim::stats::Timeline;
///
/// let mut t = Timeline::new();
/// t.record("resize", 0, 300);
/// t.record("bnn", 300, 400);
/// assert_eq!(t.total_cycles(), 400);
/// assert!((t.share("resize") - 0.75).abs() < 1e-12);
/// ```
#[derive(Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    // Single-pass aggregation: label → slot into `totals`, maintained on
    // record(), so labels()/cycles_for() no longer rescan every span.
    index: HashMap<String, usize>,
    totals: Vec<(String, u64)>,
    latest_end: u64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Appends a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(&mut self, label: impl Into<String>, start: u64, end: u64) {
        assert!(end >= start, "span ends before it starts");
        let label = label.into();
        let slot = match self.index.get(&label) {
            Some(&slot) => slot,
            None => {
                let slot = self.totals.len();
                self.index.insert(label.clone(), slot);
                self.totals.push((label.clone(), 0));
                slot
            }
        };
        self.totals[slot].1 += end - start;
        self.latest_end = self.latest_end.max(end);
        self.spans.push(Span { label, start, end });
    }

    /// Builds a timeline from the `Phase` span events of an
    /// [`ncpu_obs`] recorder that belong to `core` — the bridge that
    /// re-expresses run-report timelines on the shared event stream.
    pub fn from_obs_events(events: &[ncpu_obs::Event], core: u16) -> Timeline {
        let mut timeline = Timeline::new();
        for event in events.iter().filter(|e| e.core == core) {
            if let ncpu_obs::EventKind::Phase { label, end } = &event.kind {
                timeline.record(label.clone(), event.cycle, *end);
            }
        }
        timeline
    }

    /// The recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of cycles across spans with the given label (O(1) lookup).
    pub fn cycles_for(&self, label: &str) -> u64 {
        self.index.get(label).map_or(0, |&slot| self.totals[slot].1)
    }

    /// Latest end cycle across all spans (0 when empty).
    pub fn total_cycles(&self) -> u64 {
        self.latest_end
    }

    /// Fraction of [`total_cycles`](Self::total_cycles) spent in `label`.
    pub fn share(&self, label: &str) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles_for(label) as f64 / total as f64
        }
    }

    /// Distinct labels in first-appearance order (no rescan).
    pub fn labels(&self) -> Vec<&str> {
        self.totals.iter().map(|(label, _)| label.as_str()).collect()
    }

    /// Merges another timeline's spans, offset by `base` cycles.
    pub fn extend_offset(&mut self, other: &Timeline, base: u64) {
        for s in &other.spans {
            self.record(s.label.clone(), s.start + base, s.end + base);
        }
    }

    /// Exports the timeline as CSV (`label,start_cycle,end_cycle`), the
    /// same shape [`crate::PowerTrace::to_csv`] uses. Overlap-tolerant:
    /// concurrent spans each get their own row rather than being
    /// bucketed, so plots of overlapping phases stay faithful.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,start_cycle,end_cycle\n");
        for span in &self.spans {
            let _ = writeln!(out, "{},{},{}", span.label, span.start, span.end);
        }
        out
    }
}

// Manual impl: the label index is a `HashMap`, whose derived `Debug`
// iterates in a nondeterministic order. Run reports embed timelines and
// `tests/determinism.rs` pins their `Debug` output byte-for-byte, so
// only the (ordered) spans are rendered — matching the pre-index output.
impl fmt::Debug for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Timeline").field("spans", &self.spans).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        assert_eq!(u.fraction(), 0.0);
        u.add_busy(3);
        u.add_idle(1);
        assert_eq!(u.fraction(), 0.75);
        u.close_window(8);
        assert_eq!(u.fraction(), 0.375);
        assert_eq!(u.to_string(), "37.5%");
    }

    #[test]
    #[should_panic(expected = "shrink")]
    fn window_cannot_shrink() {
        let mut u = Utilization::new();
        u.add_busy(10);
        u.close_window(5);
    }

    #[test]
    fn timeline_shares_and_labels() {
        let mut t = Timeline::new();
        t.record("a", 0, 10);
        t.record("b", 10, 30);
        t.record("a", 30, 40);
        assert_eq!(t.cycles_for("a"), 20);
        assert_eq!(t.total_cycles(), 40);
        assert_eq!(t.share("b"), 0.5);
        assert_eq!(t.labels(), vec!["a", "b"]);
    }

    #[test]
    fn timeline_merge_with_offset() {
        let mut t = Timeline::new();
        t.record("x", 0, 5);
        let mut u = Timeline::new();
        u.record("y", 0, 3);
        t.extend_offset(&u, 5);
        assert_eq!(t.total_cycles(), 8);
        assert_eq!(t.spans()[1].start, 5);
    }

    #[test]
    fn empty_timeline_is_safe() {
        let t = Timeline::new();
        assert_eq!(t.total_cycles(), 0);
        assert_eq!(t.share("anything"), 0.0);
        assert!(t.labels().is_empty());
    }

    #[test]
    fn debug_renders_spans_only() {
        let mut t = Timeline::new();
        t.record("a", 0, 10);
        // The label index must stay out of Debug output: determinism
        // tests pin report Debug strings and HashMap order varies.
        let rendered = format!("{t:?}");
        assert!(rendered.starts_with("Timeline { spans:"), "{rendered}");
        assert!(!rendered.contains("index"), "{rendered}");
    }

    #[test]
    fn csv_keeps_overlapping_spans() {
        let mut t = Timeline::new();
        t.record("cpu", 0, 10);
        t.record("dma", 5, 15); // overlaps "cpu"
        assert_eq!(t.to_csv(), "label,start_cycle,end_cycle\ncpu,0,10\ndma,5,15\n");
    }

    #[test]
    fn from_obs_events_picks_core_phases() {
        let mut rec = ncpu_obs::Recorder::new(ncpu_obs::TraceLevel::Full);
        rec.phase(0, "cpu", 0, 10);
        rec.phase(1, "bnn", 2, 8);
        rec.emit(0, 3, ncpu_obs::EventKind::Retire { pc: 0 });
        let t = Timeline::from_obs_events(rec.spans(), 1);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.cycles_for("bnn"), 6);
    }
}
