//! Shared simulation substrate for the NCPU reproduction.
//!
//! The cycle-level models in `ncpu-pipeline`, `ncpu-accel`, `ncpu-core` and
//! `ncpu-soc` are built on the primitives in this crate:
//!
//! * [`SramBank`] / [`AddressArbiter`] — the banked on-chip SRAM of paper
//!   Fig. 4(b), including the single-bank-enable access arbitration and
//!   per-bank access counters used by the power model,
//! * [`DmaEngine`] — the bandwidth/latency model of the SoC DMA that moves
//!   data between cores and the shared L2,
//! * [`stats`] — cycle counters, utilization tracking, and the labelled
//!   phase timeline behind the paper's runtime-breakdown figures,
//! * [`PowerTrace`] — bucketed power-versus-time recording used to
//!   regenerate the measured power traces of Fig. 16.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dma;
mod mem;
pub mod stats;
mod trace;

pub use dma::DmaEngine;
pub use mem::{AddressArbiter, BankId, MemError, SramBank};
pub use trace::PowerTrace;
