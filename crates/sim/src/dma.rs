//! Bandwidth/latency model of the SoC DMA engine.

use ncpu_obs::{EventKind, Recorder, TraceLevel};

/// Cycle-level DMA channel model.
///
/// The paper describes a DMA engine that manages "the data communication between the
/// NCPU cores and the L2 memory". We model one channel as a shared
/// resource: each transfer pays a fixed setup latency plus a
/// bandwidth-limited copy time, and transfers serialize on the channel.
///
/// # Examples
///
/// ```
/// use ncpu_sim::DmaEngine;
///
/// // 4 bytes/cycle, 16-cycle setup.
/// let mut dma = DmaEngine::new(4, 16);
/// let done = dma.schedule(0, 1024);
/// assert_eq!(done, 16 + 256);
/// // The next transfer queues behind the first.
/// let done2 = dma.schedule(0, 4);
/// assert_eq!(done2, done + 16 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    bytes_per_cycle: u32,
    setup_cycles: u64,
    busy_until: u64,
    transfers: u64,
    bytes_moved: u64,
    obs: Recorder,
}

impl DmaEngine {
    /// Creates a channel moving `bytes_per_cycle` with `setup_cycles`
    /// fixed latency per transfer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u32, setup_cycles: u64) -> DmaEngine {
        assert!(bytes_per_cycle > 0, "bandwidth must be nonzero");
        DmaEngine {
            bytes_per_cycle,
            setup_cycles,
            busy_until: 0,
            transfers: 0,
            bytes_moved: 0,
            obs: Recorder::disabled(),
        }
    }

    /// Enables event recording at `level`. DMA bookings use the caller's
    /// (global) clock, so the emitted span events need no re-basing.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.obs.set_level(level);
    }

    /// The engine's recorder shard, for the SoC to absorb.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Pure cost of one transfer, ignoring channel contention.
    pub fn transfer_cycles(&self, bytes: u32) -> u64 {
        self.setup_cycles + (bytes as u64).div_ceil(self.bytes_per_cycle as u64)
    }

    /// Books a transfer of `bytes` requested at cycle `now`; returns the
    /// completion cycle, accounting for earlier queued transfers.
    pub fn schedule(&mut self, now: u64, bytes: u32) -> u64 {
        let start = now.max(self.busy_until);
        let done = start + self.transfer_cycles(bytes);
        self.busy_until = done;
        self.transfers += 1;
        self.bytes_moved += bytes as u64;
        if self.obs.wants_spans() {
            self.obs.emit(0, start, EventKind::Dma { bytes, end: done });
        }
        done
    }

    /// Cycle at which the channel becomes free.
    pub const fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Number of transfers booked so far.
    pub const fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved so far.
    pub const fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Forgets all bookings (new run on the same channel).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.transfers = 0;
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_rounds_up() {
        let dma = DmaEngine::new(4, 10);
        assert_eq!(dma.transfer_cycles(0), 10);
        assert_eq!(dma.transfer_cycles(1), 11);
        assert_eq!(dma.transfer_cycles(4), 11);
        assert_eq!(dma.transfer_cycles(5), 12);
    }

    #[test]
    fn transfers_serialize() {
        let mut dma = DmaEngine::new(4, 0);
        let a = dma.schedule(100, 40); // 100..110
        assert_eq!(a, 110);
        let b = dma.schedule(50, 40); // queued: 110..120
        assert_eq!(b, 120);
        let c = dma.schedule(500, 4); // idle gap: 500..501
        assert_eq!(c, 501);
        assert_eq!(dma.transfers(), 3);
        assert_eq!(dma.bytes_moved(), 84);
    }

    #[test]
    fn reset_clears_bookings() {
        let mut dma = DmaEngine::new(4, 0);
        dma.schedule(0, 400);
        dma.reset();
        assert_eq!(dma.busy_until(), 0);
        assert_eq!(dma.transfers(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        DmaEngine::new(0, 0);
    }

    #[test]
    fn traced_transfers_emit_spans() {
        let mut dma = DmaEngine::new(4, 10);
        dma.schedule(0, 4); // before enabling: no span
        dma.set_trace_level(TraceLevel::Counters);
        let done = dma.schedule(100, 8);
        let spans = dma.obs_mut().spans().to_vec();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].cycle, 100);
        assert_eq!(spans[0].kind, EventKind::Dma { bytes: 8, end: done });
    }
}
