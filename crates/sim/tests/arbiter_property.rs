//! Property test: the banked address arbiter behaves exactly like one flat
//! memory, for any bank layout and access sequence.

use ncpu_sim::AddressArbiter;
use ncpu_testkit::prop::Prop;
use ncpu_testkit::{prop_assert, prop_assert_eq};

/// One access as primitive fields: `(addr, width_sel, value, is_read)`.
/// Widths are selected by index so shrinking (toward 0) stays valid.
type RawAccess = (u32, u32, u32, bool);

const WIDTHS: [u32; 3] = [1, 2, 4];

/// Split the same address space into 1–6 contiguous banks; any access
/// sequence must behave identically to a flat byte array (accesses
/// that cross a bank boundary fault in the arbiter and are skipped in
/// the reference).
#[test]
fn arbiter_equals_flat_memory() {
    Prop::new("sim::arbiter_equals_flat_memory").run(
        |rng| {
            let n_cuts = rng.gen_range(0usize..5);
            let cuts: Vec<u32> = (0..n_cuts).map(|_| rng.gen_range(1u32..255)).collect();
            let n_ops = rng.gen_range(1usize..60);
            let ops: Vec<RawAccess> = (0..n_ops)
                .map(|_| {
                    (
                        rng.gen_range(0u32..256),
                        rng.gen_range(0u32..3),
                        rng.gen::<u32>(),
                        rng.gen::<bool>(),
                    )
                })
                .collect();
            (cuts, ops)
        },
        |(cuts, ops)| {
            // Build banks from the cut points (sorted, deduped; shrinking
            // may produce duplicates or zeros, which collapse harmlessly).
            let mut bounds: Vec<u32> = std::iter::once(0)
                .chain(cuts.iter().copied())
                .chain(std::iter::once(256))
                .collect();
            bounds.sort_unstable();
            bounds.dedup();
            let mut arb = AddressArbiter::new();
            for (i, w) in bounds.windows(2).enumerate() {
                arb.add_bank(format!("b{i}"), w[0], (w[1] - w[0]) as usize);
            }
            let mut flat = vec![0u8; 256];
            let crosses_bank = |addr: u32, width: u32| {
                let end = addr + width;
                bounds.iter().any(|&b| addr < b && b < end)
            };

            for &(addr, width_sel, value, is_read) in ops {
                let addr = addr % 256;
                let width = WIDTHS[(width_sel % 3) as usize];
                if is_read {
                    let got = arb.read(addr, width);
                    if addr + width > 256 || crosses_bank(addr, width) {
                        prop_assert!(got.is_err(), "read {addr}+{width} should fault");
                    } else {
                        let mut want = 0u32;
                        for i in 0..width as usize {
                            want |= (flat[addr as usize + i] as u32) << (8 * i);
                        }
                        prop_assert_eq!(got.expect("in range"), want);
                    }
                } else {
                    let got = arb.write(addr, width, value);
                    if addr + width > 256 || crosses_bank(addr, width) {
                        prop_assert!(got.is_err(), "write {addr}+{width} should fault");
                    } else {
                        got.expect("in range");
                        for i in 0..width as usize {
                            flat[addr as usize + i] = (value >> (8 * i)) as u8;
                        }
                    }
                }
            }
            // Final state identical bank by bank.
            for (i, w) in bounds.windows(2).enumerate() {
                let bank = arb.bank(arb.resolve(w[0]).expect("mapped").0);
                prop_assert_eq!(
                    bank.bytes(),
                    &flat[w[0] as usize..w[1] as usize],
                    "bank {} contents diverged",
                    i
                );
            }
            Ok(())
        },
    );
}
