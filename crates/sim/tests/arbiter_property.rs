//! Property test: the banked address arbiter behaves exactly like one flat
//! memory, for any bank layout and access sequence.

use ncpu_sim::AddressArbiter;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Access {
    Read { addr: u32, width: u32 },
    Write { addr: u32, width: u32, value: u32 },
}

fn accesses(space: u32) -> impl Strategy<Value = Vec<Access>> {
    let one = (0..space, prop_oneof![Just(1u32), Just(2), Just(4)], any::<u32>(), any::<bool>())
        .prop_map(|(addr, width, value, is_read)| {
            if is_read {
                Access::Read { addr, width }
            } else {
                Access::Write { addr, width, value }
            }
        });
    prop::collection::vec(one, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Split the same address space into 1–6 contiguous banks; any access
    /// sequence must behave identically to a flat byte array (accesses
    /// that cross a bank boundary fault in the arbiter and are skipped in
    /// the reference).
    #[test]
    fn arbiter_equals_flat_memory(
        cuts in prop::collection::btree_set(1u32..255, 0..5),
        ops in accesses(256),
    ) {
        // Build banks from the cut points.
        let mut arb = AddressArbiter::new();
        let mut bounds: Vec<u32> = std::iter::once(0)
            .chain(cuts.iter().copied())
            .chain(std::iter::once(256))
            .collect();
        bounds.dedup();
        for (i, w) in bounds.windows(2).enumerate() {
            arb.add_bank(format!("b{i}"), w[0], (w[1] - w[0]) as usize);
        }
        let mut flat = vec![0u8; 256];
        let crosses_bank = |addr: u32, width: u32| {
            let end = addr + width;
            bounds.iter().any(|&b| addr < b && b < end)
        };

        for op in &ops {
            match *op {
                Access::Read { addr, width } => {
                    let got = arb.read(addr, width);
                    if addr + width > 256 || crosses_bank(addr, width) {
                        prop_assert!(got.is_err(), "read {addr}+{width} should fault");
                    } else {
                        let mut want = 0u32;
                        for i in 0..width as usize {
                            want |= (flat[addr as usize + i] as u32) << (8 * i);
                        }
                        prop_assert_eq!(got.expect("in range"), want);
                    }
                }
                Access::Write { addr, width, value } => {
                    let got = arb.write(addr, width, value);
                    if addr + width > 256 || crosses_bank(addr, width) {
                        prop_assert!(got.is_err(), "write {addr}+{width} should fault");
                    } else {
                        got.expect("in range");
                        for i in 0..width as usize {
                            flat[addr as usize + i] = (value >> (8 * i)) as u8;
                        }
                    }
                }
            }
        }
        // Final state identical bank by bank.
        for (i, w) in bounds.windows(2).enumerate() {
            let bank = arb.bank(arb.resolve(w[0]).expect("mapped").0);
            prop_assert_eq!(
                bank.bytes(),
                &flat[w[0] as usize..w[1] as usize],
                "bank {} contents diverged",
                i
            );
        }
    }
}
