//! Property test: the generated RV32I software-BNN program agrees with the
//! reference model for arbitrary small models and inputs — the strongest
//! check on the assembler + pipeline + program-generator stack at once.

use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_testkit::prop::Prop;
use ncpu_testkit::rng::Rng;
use ncpu_testkit::prop_assert_eq;
use ncpu_workloads::softbnn;

/// Raw generated material for one case: dimension selectors plus bit/bias
/// pools. The model is built *inside* the property with cyclic indexing,
/// so every shrink of the pools still yields a valid model.
type RawCase = (u8, u8, u8, Vec<bool>, Vec<i32>, Vec<bool>);

fn raw_case(rng: &mut Rng) -> RawCase {
    let layers_sel = rng.gen_range(0u8..2); // 2..=3 layers
    let neurons_sel = rng.gen_range(0u8..8); // 3..=10 neurons
    let input_sel = rng.gen_range(0u8..36); // 5..=40 input bits
    let layers = 2 + layers_sel as usize;
    let neurons = 3 + neurons_sel as usize;
    let input = 5 + input_sel as usize;
    let n_bits = input * neurons + (layers - 1) * neurons * neurons;
    let bits: Vec<bool> = (0..n_bits).map(|_| rng.gen()).collect();
    let biases: Vec<i32> = (0..layers * neurons).map(|_| rng.gen_range(-4i32..=4)).collect();
    let sample: Vec<bool> = (0..input).map(|_| rng.gen()).collect();
    (layers_sel, neurons_sel, input_sel, bits, biases, sample)
}

fn build(case: &RawCase) -> (BnnModel, BitVec) {
    let (layers_sel, neurons_sel, input_sel, bits, biases, sample) = case;
    let layers = 2 + (*layers_sel as usize % 2);
    let neurons = 3 + (*neurons_sel as usize % 8);
    let input = 5 + (*input_sel as usize % 36);
    let bit = |i: usize| !bits.is_empty() && bits[i % bits.len()];
    let bias = |i: usize| if biases.is_empty() { 0 } else { biases[i % biases.len()] };
    let topo = Topology::new(input, vec![neurons; layers], neurons.min(3));
    let mut cursor = 0;
    let mut built = Vec::new();
    for l in 0..layers {
        let n_in = topo.layer_input(l);
        let rows: Vec<BitVec> = (0..neurons)
            .map(|_| {
                let row = BitVec::from_bools((0..n_in).map(|k| bit(cursor + k)));
                cursor += n_in;
                row
            })
            .collect();
        built.push(BnnLayer::new(rows, (0..neurons).map(|n| bias(l * neurons + n)).collect()));
    }
    let input_bits =
        BitVec::from_bools((0..input).map(|i| !sample.is_empty() && sample[i % sample.len()]));
    (BnnModel::new(topo, built), input_bits)
}

#[test]
fn software_bnn_matches_reference() {
    Prop::new("workloads::software_bnn_matches_reference").run(raw_case, |case| {
        let (model, input) = build(case);
        let soft = softbnn::build(&model);
        let mut cpu = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
        cpu.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
        let staged = softbnn::stage_input(&input);
        let at = soft.layout.input as usize;
        cpu.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
        cpu.run(200_000_000).expect("program halts");
        prop_assert_eq!(cpu.reg(ncpu_isa::Reg::A0) as usize, model.classify(&input));
        Ok(())
    });
}
