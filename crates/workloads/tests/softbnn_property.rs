//! Property test: the generated RV32I software-BNN program agrees with the
//! reference model for arbitrary small models and inputs — the strongest
//! check on the assembler + pipeline + program-generator stack at once.

use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_workloads::softbnn;
use proptest::prelude::*;

fn model_and_input() -> impl Strategy<Value = (BnnModel, BitVec)> {
    (2usize..=3, 3usize..=10, 5usize..=40).prop_flat_map(|(layers, neurons, input)| {
        let bits = prop::collection::vec(
            any::<bool>(),
            input * neurons + (layers - 1) * neurons * neurons,
        );
        let biases = prop::collection::vec(-4i32..=4, layers * neurons);
        let sample = prop::collection::vec(any::<bool>(), input);
        (bits, biases, sample).prop_map(move |(bits, biases, sample)| {
            let topo = Topology::new(input, vec![neurons; layers], neurons.min(3));
            let mut cursor = 0;
            let mut built = Vec::new();
            for l in 0..layers {
                let n_in = topo.layer_input(l);
                let rows: Vec<BitVec> = (0..neurons)
                    .map(|_| {
                        let row =
                            BitVec::from_bools(bits[cursor..cursor + n_in].iter().copied());
                        cursor += n_in;
                        row
                    })
                    .collect();
                built.push(BnnLayer::new(rows, biases[l * neurons..(l + 1) * neurons].to_vec()));
            }
            (BnnModel::new(topo, built), BitVec::from_bools(sample))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn software_bnn_matches_reference((model, input) in model_and_input()) {
        let soft = softbnn::build(&model);
        let mut cpu = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
        cpu.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
        let staged = softbnn::stage_input(&input);
        let at = soft.layout.input as usize;
        cpu.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
        cpu.run(200_000_000).expect("program halts");
        prop_assert_eq!(cpu.reg(ncpu_isa::Reg::A0) as usize, model.classify(&input));
    }
}
