//! Differential test: every kernel produces identical architectural state
//! on the cycle-accurate pipeline and the golden-model interpreter —
//! hazard handling never changes semantics on real programs.

use ncpu_isa::interp::Interp;
use ncpu_isa::Reg;
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_workloads::kernels;

#[test]
fn kernels_match_golden_model() {
    for kernel in kernels::all() {
        // Pipeline (Harvard): program in I-mem, data at its staged address.
        let mut cpu = Pipeline::new(kernel.program.clone(), FlatMem::new(2048));
        // Golden model (von Neumann): program at 0; kernels keep their data
        // at ≥256, above every program in the suite.
        assert!(
            kernel.program.len() * 4 <= 256,
            "kernel {} program too large for the shared layout",
            kernel.name
        );
        let mut gold = Interp::with_program(&kernel.program, 2048);
        if let Some((addr, data)) = &kernel.staged {
            let at = *addr as usize;
            cpu.mem_mut().local_mut()[at..at + data.len()].copy_from_slice(data);
            gold.mem_mut()[at..at + data.len()].copy_from_slice(data);
        }
        cpu.run(100_000_000).unwrap_or_else(|e| panic!("{}: pipeline {e}", kernel.name));
        gold.run(100_000_000).unwrap_or_else(|e| panic!("{}: golden {e}", kernel.name));
        for reg in Reg::all() {
            assert_eq!(
                cpu.reg(reg),
                gold.reg(reg),
                "kernel {}: register {reg} differs",
                kernel.name
            );
        }
        assert_eq!(cpu.reg(Reg::A0), kernel.expected_a0, "kernel {}", kernel.name);
        assert_eq!(
            &cpu.mem().local()[256..2048],
            &gold.mem()[256..2048],
            "kernel {}: data memory differs",
            kernel.name
        );
        assert_eq!(cpu.stats().retired, gold.retired(), "kernel {}", kernel.name);
    }
}

#[test]
fn kernel_cycle_counts_are_stable() {
    // Pin the cycle counts: any timing-model change must be a conscious
    // decision (update these constants alongside the change).
    let counts: Vec<(String, u64)> = kernels::all()
        .iter()
        .map(|k| {
            let mut cpu = Pipeline::new(k.program.clone(), FlatMem::new(2048));
            if let Some((addr, data)) = &k.staged {
                let at = *addr as usize;
                cpu.mem_mut().local_mut()[at..at + data.len()].copy_from_slice(data);
            }
            (k.name.to_string(), cpu.run(100_000_000).unwrap())
        })
        .collect();
    for (name, cycles) in &counts {
        // IPC of these kernels sits between 0.4 and 1.0: cycles within
        // [retired, 2.5×retired] is the sanity envelope.
        assert!(*cycles > 100, "kernel {name} too trivial ({cycles} cycles)");
        assert!(*cycles < 2_000_000, "kernel {name} too heavy ({cycles} cycles)");
    }
}
