//! Dhrystone-class synthetic integer benchmark (Table II).
//!
//! The real Dhrystone sources are not available offline, so per
//! `DESIGN.md` this is a synthetic benchmark with the classic mix: record
//! assignment (word copies), string handling (byte compare loop), integer
//! arithmetic through call/return boundaries, and data-dependent
//! branching. The DMIPS convention is kept: score = iterations/second ÷
//! 1757 (the VAX 11/780 baseline).

use ncpu_isa::asm;

/// VAX 11/780 dhrystones/second — the DMIPS divisor.
pub const VAX_DHRYSTONES_PER_SEC: f64 = 1757.0;

/// Builds the benchmark program running `iterations` iterations.
///
/// Memory use: two 16-word records and two 32-byte strings below address
/// 512; the caller needs ≥1 KiB of data memory and a stack top at 1024.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (programming error).
pub fn program(iterations: u32) -> Vec<u32> {
    let src = format!(
        "       li   sp, 1024
        li   s0, {iterations}
        # record A at 0, record B at 64; strings at 128 / 160
        li   s1, 0
        li   s2, 64
        li   s3, 128
        li   s4, 160
        # init string A = 0..31, string B equal except last byte
        li   t0, 0
init_s: add  t2, s1, t0
        sb   t0, 0(t2)
        add  t2, s3, t0
        sb   t0, 0(t2)
        add  t2, s4, t0
        sb   t0, 0(t2)
        addi t0, t0, 1
        li   t1, 32
        blt  t0, t1, init_s
main_l: # --- record assignment: B <- A, touch every word ---
        li   t0, 16
        mv   t1, s1
        mv   t2, s2
rec_l:  lw   t3, 0(t1)
        addi t3, t3, 3
        sw   t3, 0(t2)
        addi t1, t1, 4
        addi t2, t2, 4
        addi t0, t0, -1
        bnez t0, rec_l
        # --- string compare (always equal for 31 bytes) ---
        li   t0, 0
        li   t4, 0
str_l:  add  t1, s3, t0
        lbu  t2, 0(t1)
        add  t1, s4, t0
        lbu  t3, 0(t1)
        bne  t2, t3, str_d
        addi t0, t0, 1
        li   t1, 31
        blt  t0, t1, str_l
str_d:  add  t4, t4, t0
        # --- arithmetic through a call boundary ---
        mv   a0, t4
        andi a0, a0, 255
        jal  ra, proc1
        mv   s5, a0
        mv   a0, s5
        jal  ra, proc2
        add  s6, s6, a0
        # --- data-dependent branch chain ---
        andi t0, s6, 7
        beqz t0, alt_a
        addi s7, s7, 2
        j    alt_d
alt_a:  addi s7, s7, 5
alt_d:  # --- integer mix block ---
        slli t0, s7, 2
        xor  t1, t0, s6
        srli t2, t1, 3
        or   t3, t2, s5
        sub  t4, t3, s7
        and  t5, t4, t1
        add  s6, s6, t5
        sltu t0, s6, t5
        add  s8, s8, t0
        addi s0, s0, -1
        bnez s0, main_l
        # result signature for validation
        add  a0, s6, s7
        add  a0, a0, s8
        ebreak

proc1:  # a0 = f(a0): shift/add chain with a conditional
        slli t0, a0, 1
        addi t0, t0, 17
        andi t1, t0, 31
        beqz t1, p1_z
        add  a0, a0, t1
        ret
p1_z:   addi a0, a0, 1
        ret

proc2:  # a0 = g(a0): multiply-accumulate
        li   t0, 13
        mul  t1, a0, t0
        srli t1, t1, 4
        addi a0, t1, 7
        ret"
    );
    asm::assemble(&src).expect("dhrystone program must assemble")
}

/// DMIPS/MHz from a measured run: `iterations` completed in `cycles`.
pub fn dmips_per_mhz(iterations: u32, cycles: u64) -> f64 {
    // iterations/second at f Hz = iterations · f / cycles;
    // DMIPS = that ÷ 1757; per MHz divide by f/1e6 — f cancels.
    iterations as f64 * 1.0e6 / (cycles as f64 * VAX_DHRYSTONES_PER_SEC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_pipeline::{FlatMem, Pipeline};

    #[test]
    fn benchmark_runs_and_scores_in_band() {
        let iters = 200;
        let program = program(iters);
        let mut cpu = Pipeline::new(program, FlatMem::new(2048));
        let cycles = cpu.run(10_000_000).unwrap();
        let score = dmips_per_mhz(iters, cycles);
        // Table II band: commercial MCUs span 0.25–1.61; the NCPU reports
        // 0.86. Our synthetic mix must land in the same decade.
        assert!((0.5..6.0).contains(&score), "DMIPS/MHz {score}");
    }

    #[test]
    fn deterministic_signature() {
        let run = |iters| {
            let mut cpu = Pipeline::new(program(iters), FlatMem::new(2048));
            cpu.run(10_000_000).unwrap();
            cpu.reg(ncpu_isa::Reg::A0)
        };
        assert_eq!(run(50), run(50), "same program, same signature");
        assert_ne!(run(50), run(60), "work scales with iterations");
    }

    #[test]
    fn cycles_scale_linearly_with_iterations() {
        let cycles = |iters| {
            let mut cpu = Pipeline::new(program(iters), FlatMem::new(2048));
            cpu.run(10_000_000).unwrap()
        };
        let c100 = cycles(100);
        let c200 = cycles(200);
        let per_iter = (c200 - c100) as f64 / 100.0;
        assert!((40.0..900.0).contains(&per_iter), "cycles/iteration {per_iter}");
    }
}
