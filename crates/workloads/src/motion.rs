//! The motion-detection feature-extraction program (paper Fig. 15(b)).
//!
//! Per window, mirroring [`ncpu_bnn::data::motion`] bit for bit: for each
//! of the 6 channels compute the mean (phase "mean") and the 8-bin
//! histogram (phase "hist"), scale the features to 0–255, thermometer-
//! encode them against 4 thresholds and pack the 216 BNN input bits.

use ncpu_bnn::data::motion::{MotionWindow, THERMO_THRESHOLDS};
use ncpu_isa::asm;

use crate::Tail;

/// Data-cache layout of the motion program (byte offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionLayout {
    /// Channel-major i16 window (6 × 128 × 2 = 1536 bytes).
    pub window: u32,
    /// Histogram scratch (8 words).
    pub hist: u32,
    /// Feature bytes (54).
    pub features: u32,
    /// Packed 216-bit BNN input (27 bytes, padded to 28).
    pub pack: u32,
}

impl Default for MotionLayout {
    fn default() -> MotionLayout {
        MotionLayout { window: 0, hist: 1600, features: 1700, pack: 1800 }
    }
}

/// Bytes the DMA stages for one window.
pub const STAGE_BYTES: usize = MotionWindow::byte_len();

/// The bytes the DMA stages for one window (channel-major i16).
pub fn stage_bytes(window: &MotionWindow) -> Vec<u8> {
    window.to_bytes()
}

/// Phase ids written to `gp` at phase boundaries.
pub mod phase {
    /// All channel means computed.
    pub const MEAN_DONE: u32 = 1;
    /// All channel histograms computed.
    pub const HIST_DONE: u32 = 2;
    /// Thermometer encoding + packing finished.
    pub const ENCODE_DONE: u32 = 3;
}

/// Builds the feature-extraction program (see [`crate::Tail`] for the
/// hand-off variants). The packed input lands at `pack_base`.
///
/// To expose the paper's mean/histogram phase split, the program makes a
/// mean pass over all channels first, then a histogram pass.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (programming error).
pub fn feature_program(layout: &MotionLayout, pack_base: u32, tail: Tail) -> Vec<u32> {
    let MotionLayout { window, hist, features, .. } = *layout;
    let [th0, th1, th2, th3] = THERMO_THRESHOLDS;
    let tail_asm = tail.asm(layout.pack);
    let src = format!(
        "# ---- phase 1: per-channel means ----
        li   s0, 0              # channel
        li   s9, {features}
mn_ch:  li   t0, 256
        mul  t1, s0, t0
        li   t0, {window}
        add  s4, t1, t0         # sample ptr
        li   s2, 0              # sum
        li   s3, 128
mn_sm:  lh   t2, 0(s4)
        add  s2, s2, t2
        addi s4, s4, 2
        addi s3, s3, -1
        bnez s3, mn_sm
        srai t2, s2, 7
        li   t3, 32768
        add  t2, t2, t3
        srai t2, t2, 8
        andi t2, t2, 255
        # feature slot: features + channel*9
        li   t3, 9
        mul  t3, s0, t3
        add  t3, t3, s9
        sb   t2, 0(t3)
        addi s0, s0, 1
        li   t0, 6
        blt  s0, t0, mn_ch
        li   gp, {ph_mean}

        # ---- phase 2: per-channel histograms ----
        li   s0, 0
mh_ch:  # clear hist
        li   s1, {hist}
        li   t2, 8
mh_cl:  sw   zero, 0(s1)
        addi s1, s1, 4
        addi t2, t2, -1
        bnez t2, mh_cl
        li   t0, 256
        mul  t1, s0, t0
        li   t0, {window}
        add  s4, t1, t0
        li   s3, 128
        li   s5, {hist}
mh_sm:  lh   t2, 0(s4)
        li   t3, 32768
        add  t3, t2, t3
        srai t3, t3, 13
        slli t3, t3, 2
        add  t3, t3, s5
        lw   t4, 0(t3)
        addi t4, t4, 1
        sw   t4, 0(t3)
        addi s4, s4, 2
        addi s3, s3, -1
        bnez s3, mh_sm
        # write scaled bins: min(count*2, 255)
        li   s1, {hist}
        li   t5, 8
        li   t6, 9
        mul  t6, s0, t6
        li   t0, {features}
        add  t6, t6, t0
        addi t6, t6, 1          # skip the mean slot
mh_wr:  lw   t2, 0(s1)
        slli t2, t2, 1
        sltiu t3, t2, 256
        bnez t3, mh_ok
        li   t2, 255
mh_ok:  sb   t2, 0(t6)
        addi t6, t6, 1
        addi s1, s1, 4
        addi t5, t5, -1
        bnez t5, mh_wr
        addi s0, s0, 1
        li   t0, 6
        blt  s0, t0, mh_ch
        li   gp, {ph_hist}

        # ---- phase 3: thermometer encoding + packing ----
        li   s0, {features}
        li   s3, 54
        li   s6, 0              # byte accumulator
        li   s7, 0              # bit position
        li   s2, {pack_base}
en_l:   lbu  t2, 0(s0)
        # threshold {th0}
        sltiu t3, t2, {th0}
        xori t3, t3, 1
        sll  t3, t3, s7
        or   s6, s6, t3
        addi s7, s7, 1
        li   t5, 8
        bne  s7, t5, en_a
        sb   s6, 0(s2)
        addi s2, s2, 1
        li   s6, 0
        li   s7, 0
en_a:   # threshold {th1}
        sltiu t3, t2, {th1}
        xori t3, t3, 1
        sll  t3, t3, s7
        or   s6, s6, t3
        addi s7, s7, 1
        li   t5, 8
        bne  s7, t5, en_b
        sb   s6, 0(s2)
        addi s2, s2, 1
        li   s6, 0
        li   s7, 0
en_b:   # threshold {th2}
        sltiu t3, t2, {th2}
        xori t3, t3, 1
        sll  t3, t3, s7
        or   s6, s6, t3
        addi s7, s7, 1
        li   t5, 8
        bne  s7, t5, en_c
        sb   s6, 0(s2)
        addi s2, s2, 1
        li   s6, 0
        li   s7, 0
en_c:   # threshold {th3}
        sltiu t3, t2, {th3}
        xori t3, t3, 1
        sll  t3, t3, s7
        or   s6, s6, t3
        addi s7, s7, 1
        li   t5, 8
        bne  s7, t5, en_d
        sb   s6, 0(s2)
        addi s2, s2, 1
        li   s6, 0
        li   s7, 0
en_d:   addi s0, s0, 1
        addi s3, s3, -1
        bnez s3, en_l
        li   gp, {ph_encode}

        # ---- tail ----
        {tail_asm}",
        ph_mean = phase::MEAN_DONE,
        ph_hist = phase::HIST_DONE,
        ph_encode = phase::ENCODE_DONE,
    );
    asm::assemble(&src).expect("motion feature program must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::data::motion::{self, INPUT_BITS};
    use ncpu_bnn::BitVec;
    use ncpu_pipeline::{FlatMem, Pipeline};
    use ncpu_testkit::rng::Rng;

    #[test]
    fn program_matches_host_mirror_bit_exactly() {
        let mut rng = Rng::seed_from_u64(21);
        for label in [0usize, 3, 7] {
            let window = motion::generate_window(label, 9000.0, &mut rng);
            let layout = MotionLayout::default();
            let program = feature_program(&layout, layout.pack, Tail::Halt);
            let mut cpu = Pipeline::new(program, FlatMem::new(4096));
            cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&window));
            cpu.run(10_000_000).unwrap();
            let packed = &cpu.mem().local()[layout.pack as usize..layout.pack as usize + 27];
            let got = BitVec::from_bytes(packed, INPUT_BITS);
            let want = motion::window_to_input(&window);
            assert_eq!(got, want, "label {label}: program disagrees with host mirror");
        }
    }

    #[test]
    fn feature_extraction_cycle_count_in_expected_band() {
        // Table I context: feature extraction is ~10k cycles, so at 18 MHz
        // it fits the 5 ms real-time budget with margin.
        let mut rng = Rng::seed_from_u64(2);
        let window = motion::generate_window(1, 9000.0, &mut rng);
        let layout = MotionLayout::default();
        let program = feature_program(&layout, layout.pack, Tail::Halt);
        let mut cpu = Pipeline::new(program, FlatMem::new(4096));
        cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&window));
        let cycles = cpu.run(10_000_000).unwrap();
        assert!((8_000..40_000).contains(&cycles), "feature extraction took {cycles}");
    }

    #[test]
    fn phase_marker_reaches_encode() {
        let mut rng = Rng::seed_from_u64(5);
        let window = motion::generate_window(4, 9000.0, &mut rng);
        let layout = MotionLayout::default();
        let program = feature_program(&layout, layout.pack, Tail::Halt);
        let mut cpu = Pipeline::new(program, FlatMem::new(4096));
        cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&window));
        cpu.run(10_000_000).unwrap();
        assert_eq!(cpu.reg(ncpu_isa::Reg::GP), phase::ENCODE_DONE);
    }
}
