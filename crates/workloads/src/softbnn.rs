//! Software BNN inference on the CPU — the standalone-CPU baseline of
//! Table I.
//!
//! The paper's motivating measurement runs the whole motion-detection
//! task, *including inference*, on the bare RISC-V core. This module
//! generates that program: a naive bit-serial XNOR-popcount loop over the
//! packed weights (the same SRAM layout the accelerator uses), layer by
//! layer, ending in an argmax over the class logits. Naive per-bit code is
//! deliberate — it reproduces the regime in which the paper reports a 59×
//! accelerator advantage.

use ncpu_accel::pack_layer_weights;
use ncpu_bnn::{BitVec, BnnModel};
use ncpu_isa::asm;

/// Data-cache layout of the software-BNN program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftBnnLayout {
    /// Layer descriptor table (4 words per layer: n_in, n_out, w_base, b_base).
    pub layer_table: u32,
    /// Packed input bits.
    pub input: u32,
    /// Activation ping buffer.
    pub act_a: u32,
    /// Activation pong buffer.
    pub act_b: u32,
    /// Class logits (one word per output neuron of the last layer).
    pub logits: u32,
    /// First byte of packed weights/biases.
    pub params: u32,
}

impl Default for SoftBnnLayout {
    fn default() -> SoftBnnLayout {
        SoftBnnLayout {
            layer_table: 0x100,
            input: 0x200,
            act_a: 0x300,
            act_b: 0x340,
            logits: 0x380,
            params: 0x600,
        }
    }
}

/// The staged memory image plus the program for one model.
#[derive(Debug, Clone)]
pub struct SoftBnn {
    /// The inference program (result class in `a0` at halt).
    pub program: Vec<u32>,
    /// Bytes to load at data-cache offset 0 (parameters + descriptors).
    pub data: Vec<u8>,
    /// The layout used.
    pub layout: SoftBnnLayout,
}

/// Builds the software inference routine for `model`.
///
/// Write the packed input bits at `layout.input` (use
/// [`stage_input`]), run to halt, and read the predicted class from `a0`.
///
/// # Panics
///
/// Panics if the model's parameters overflow the data-cache layout.
pub fn build(model: &BnnModel) -> SoftBnn {
    let layout = SoftBnnLayout::default();
    let layers = model.layers().len();
    let classes = model.topology().classes();

    // ---- stage parameters ----
    let mut data = vec![0u8; layout.params as usize];
    let mut cursor = layout.params;
    let mut table = Vec::new();
    for layer in model.layers() {
        let w_base = cursor;
        let packed = pack_layer_weights(layer);
        data.extend_from_slice(&packed);
        cursor += packed.len() as u32;
        let b_base = cursor;
        for j in 0..layer.neurons() {
            data.extend_from_slice(&layer.bias(j).to_le_bytes());
            cursor += 4;
        }
        table.push([layer.input_len() as u32, layer.neurons() as u32, w_base, b_base]);
    }
    assert!(cursor <= 24 * 1024, "parameters overflow the data cache");
    for (l, row) in table.iter().enumerate() {
        let at = layout.layer_table as usize + l * 16;
        for (k, word) in row.iter().enumerate() {
            data[at + k * 4..at + k * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    let src = format!(
        "       li   s0, 0              # layer index
        li   s1, {layers}
        li   s2, {input}
        li   s3, {act_a}
ly_lp:  li   t0, 16
        mul  t1, s0, t0
        li   t2, {layer_table}
        add  t1, t1, t2
        lw   s4, 0(t1)          # n_in
        lw   s5, 4(t1)          # n_out
        lw   s6, 8(t1)          # w_base
        lw   s7, 12(t1)         # b_base
        addi t2, s4, 7
        srli t2, t2, 3
        addi t2, t2, 3
        andi s8, t2, -4         # packed row stride
        li   s9, 0              # neuron j
nr_lp:  li   a2, 0              # popcount sum
        mul  t3, s9, s8
        add  a3, t3, s6         # weight row ptr
        li   a5, 0              # input bit index
bi_lp:  srli t0, a5, 5
        slli t0, t0, 2
        add  t1, t0, s2
        lw   t2, 0(t1)
        andi t4, a5, 31
        srl  t2, t2, t4
        andi t2, t2, 1
        add  t1, t0, a3
        lw   t3, 0(t1)
        srl  t3, t3, t4
        andi t3, t3, 1
        xor  t2, t2, t3
        addi a2, a2, 1
        slli t2, t2, 1
        sub  a2, a2, t2         # sum += xnor ? +1 : -1
        addi a5, a5, 1
        blt  a5, s4, bi_lp
        slli t0, s9, 2
        add  t0, t0, s7
        lw   t1, 0(t0)
        add  a2, a2, t1         # + bias
        addi t0, s0, 1
        bne  t0, s1, nb_sign
        slli t0, s9, 2
        li   t1, {logits}
        add  t0, t0, t1
        sw   a2, 0(t0)
        j    nb_done
nb_sign:slti t0, a2, 0
        xori t0, t0, 1          # bit = (sum >= 0)
        srli t1, s9, 5
        slli t1, t1, 2
        add  t1, t1, s3
        andi t2, s9, 31
        bnez t2, nb_set
        sw   zero, 0(t1)        # first bit of a word clears it
nb_set: lw   t2, 0(t1)
        andi t3, s9, 31
        sll  t0, t0, t3
        or   t2, t2, t0
        sw   t2, 0(t1)
nb_done:addi s9, s9, 1
        blt  s9, s5, nr_lp
        mv   s2, s3             # outputs become next inputs
        li   t0, {act_a}
        bne  s3, t0, sw_a
        li   s3, {act_b}
        j    sw_d
sw_a:   li   s3, {act_a}
sw_d:   addi s0, s0, 1
        blt  s0, s1, ly_lp
        # argmax over the first {classes} logits
        li   t0, {logits}
        lw   a6, 0(t0)
        li   a0, 0
        li   s0, 1
am_lp:  slli t1, s0, 2
        add  t1, t1, t0
        lw   t2, 0(t1)
        bge  a6, t2, am_sk
        mv   a6, t2
        mv   a0, s0
am_sk:  addi s0, s0, 1
        li   t3, {classes}
        blt  s0, t3, am_lp
        ebreak",
        input = layout.input,
        act_a = layout.act_a,
        act_b = layout.act_b,
        logits = layout.logits,
        layer_table = layout.layer_table,
    );
    let program = asm::assemble(&src).expect("software BNN program must assemble");
    SoftBnn { program, data, layout }
}

/// Packs `input` into the bytes the program expects at `layout.input`.
pub fn stage_input(input: &BitVec) -> Vec<u8> {
    let mut bytes = input.to_bytes();
    // Pad to a word boundary: the program reads whole words.
    while !bytes.len().is_multiple_of(4) {
        bytes.push(0);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::{BnnLayer, Topology};
    use ncpu_pipeline::{FlatMem, Pipeline};

    fn model(input: usize, hidden: usize, classes: usize) -> BnnModel {
        let topo = Topology::new(input, vec![hidden, hidden], classes);
        let mut layers = Vec::new();
        for l in 0..2 {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..hidden)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 13 + j * 7 + l) % 5 < 2)))
                .collect();
            let bias = (0..hidden).map(|j| (j as i32 % 5) - 2).collect();
            layers.push(BnnLayer::new(rows, bias));
        }
        BnnModel::new(topo, layers)
    }

    fn run_soft(model: &BnnModel, input: &BitVec) -> (usize, u64) {
        let soft = build(model);
        let mut cpu = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
        cpu.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
        let staged = stage_input(input);
        let at = soft.layout.input as usize;
        cpu.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
        let cycles = cpu.run(100_000_000).unwrap();
        (cpu.reg(ncpu_isa::Reg::A0) as usize, cycles)
    }

    #[test]
    fn software_inference_matches_reference_model() {
        let m = model(48, 12, 4);
        for k in 0..12 {
            let input = BitVec::from_bools((0..48).map(|i| (i * 5 + k * 3) % 7 < 3));
            let (class, _) = run_soft(&m, &input);
            assert_eq!(class, m.classify(&input), "input {k}");
        }
    }

    #[test]
    fn odd_widths_handled() {
        // Non-multiple-of-32 input and hidden widths exercise the bit
        // indexing and row padding.
        let m = model(37, 9, 3);
        for k in 0..6 {
            let input = BitVec::from_bools((0..37).map(|i| (i + k) % 3 == 0));
            let (class, _) = run_soft(&m, &input);
            assert_eq!(class, m.classify(&input), "input {k}");
        }
    }

    #[test]
    fn naive_loop_is_orders_slower_than_accelerator() {
        let m = model(48, 12, 4);
        let input = BitVec::from_bools((0..48).map(|i| i % 2 == 0));
        let (_, cycles) = run_soft(&m, &input);
        // Accelerator latency for this shape: (48+1) + (12+1) = 62 cycles.
        assert!(cycles > 62 * 20, "software BNN must be ≫ accelerator, got {cycles}");
    }
}
