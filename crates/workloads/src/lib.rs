//! RV32I workload programs and the paper's real-time use cases.
//!
//! Everything the evaluation runs on a CPU is an actual RISC-V program,
//! assembled at runtime with `ncpu-isa` and executed on the cycle-accurate
//! pipeline:
//!
//! * [`image`] — the image-classification pre-processing chain (resize →
//!   grayscale → 3×3 filter → normalize → pack), bit-exact against the
//!   host mirror in [`ncpu_bnn::data::digits`],
//! * [`motion`] — the motion-detection feature extraction (per-channel
//!   mean + histogram, thermometer encoding), bit-exact against
//!   [`ncpu_bnn::data::motion`],
//! * [`softbnn`] — a naive software BNN inference routine, the
//!   standalone-CPU baseline of Table I,
//! * [`dhrystone`] — a Dhrystone-class synthetic integer benchmark
//!   reporting DMIPS (Table II),
//! * [`kernels`] — MiBench-like embedded kernels used for the CPU-mode
//!   power characterization (Fig. 11),
//! * [`spin`] — calibrated busy loops used where the paper parametrically
//!   sweeps the CPU workload fraction (Figs. 13/14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dhrystone;
pub mod image;
pub mod kernels;
pub mod motion;
pub mod softbnn;
pub mod spin;

/// Where a pre-processing program sends its packed BNN input when done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// NCPU flow: configure the transition neurons, `trans_bnn`, then read
    /// the class from the output memory and write it through to the L2.
    NcpuClassify {
        /// Output-memory base address (CPU-mode view).
        output_base: u32,
        /// L2 address receiving the final class word.
        result_l2: u32,
    },
    /// Heterogeneous-baseline flow: `trigger_bnn` and halt. The packed
    /// input stays in the CPU's local memory; the SoC's DMA engine moves
    /// it to the accelerator (the conventional offload path), so the CPU
    /// pays no copy loop.
    Offload,
    /// Stop after packing (used by the bit-exactness tests).
    Halt,
}

impl Tail {
    /// Renders the tail's assembly, assuming the packed input sits at
    /// `pack_base` and temporaries `t0`–`t4` are free.
    pub fn asm(&self, pack_base: u32) -> String {
        match *self {
            Tail::NcpuClassify { output_base, result_l2 } => format!(
                "li   t2, 1
                 mv_neu t2, 0
                 trans_bnn
                 li   t3, {output_base}
                 lw   a0, 0(t3)
                 li   t4, {result_l2}
                 sw_l2 a0, 0(t4)
                 ebreak"
            ),
            Tail::Offload => {
                let _ = pack_base; // data stays where it was packed
                "trigger_bnn
ebreak".to_string()
            }
            Tail::Halt => "ebreak".to_string(),
        }
    }
}
