//! Calibrated busy-work programs.
//!
//! Figures 13 and 14 sweep the *CPU workload fraction* by "changing the
//! complexity of the image data pre-processing algorithms" while the BNN
//! inference latency stays fixed. This module provides the knob: a
//! CPU program whose cycle count is set exactly, so the SoC experiments
//! can dial in any fraction.

use ncpu_isa::asm;

/// Cycle cost of one inner-loop iteration (addi + bnez not-taken... the
/// loop body retires 2 instructions per iteration at IPC 1 with a 2-cycle
/// flush per taken branch; see [`spin_cycles`] for the exact accounting).
const LOOP_BODY_INSTRS: u64 = 4;

/// Builds a program that runs for approximately `cycles` cycles and halts.
///
/// The program is a counted loop of independent ALU operations; the
/// achieved cycle count is within a few cycles of the request (pipeline
/// fill and the final flush), which the experiments treat as exact.
///
/// # Panics
///
/// Panics if `cycles` is smaller than the fixed program overhead (~16).
pub fn spin_program(cycles: u64) -> Vec<u32> {
    let src = format!("{}\nebreak", spin_source(cycles));
    asm::assemble(&src).expect("spin program must assemble")
}

/// The spin loop's assembly body (no terminating `ebreak`), for embedding
/// in larger programs (the SoC's parametric use case appends its own
/// mode-switch tail).
///
/// # Panics
///
/// Panics if `cycles` is smaller than the fixed program overhead (~16).
pub fn spin_source(cycles: u64) -> String {
    assert!(cycles >= 16, "spin budget too small");
    // Per iteration: 4 ALU ops + addi + taken bnez = 6 retires + 2 flush.
    let per_iter = LOOP_BODY_INSTRS + 2 + 2;
    let iters = (cycles.saturating_sub(12) / per_iter).max(1);
    format!(
        "       li   t0, {iters}
        li   t1, 0
spin_l: addi t1, t1, 1
        xor  t2, t1, t0
        slli t3, t1, 3
        and  t4, t2, t3
        addi t0, t0, -1
        bnez t0, spin_l"
    )
}

/// The exact cycle count `spin_program(cycles)` achieves on the pipeline.
pub fn spin_cycles(requested: u64) -> u64 {
    let per_iter = LOOP_BODY_INSTRS + 2 + 2;
    let iters = (requested.saturating_sub(12) / per_iter).max(1);
    // `li t0, iters` expands to two instructions beyond the 12-bit range.
    let li_len = if iters <= 2047 { 1 } else { 2 };
    // iters × 6 retires + (iters−1) × 2 flushes (last branch not taken)
    // + setup/ebreak retires + 4 pipeline fill.
    iters * 6 + (iters - 1) * 2 + li_len + 2 + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_pipeline::{FlatMem, Pipeline};

    #[test]
    fn spin_duration_is_predicted_exactly() {
        for request in [100u64, 1_000, 12_345, 100_000] {
            let program = spin_program(request);
            let mut cpu = Pipeline::new(program, FlatMem::new(64));
            let cycles = cpu.run(10 * request + 1_000).unwrap();
            assert_eq!(cycles, spin_cycles(request), "request {request}");
        }
    }

    #[test]
    fn spin_hits_request_within_tolerance() {
        for request in [500u64, 5_000, 50_000] {
            let got = spin_cycles(request);
            let err = (got as f64 - request as f64).abs() / request as f64;
            assert!(err < 0.02, "request {request} achieved {got}");
        }
    }
}
