//! The image-classification pre-processing program (paper Fig. 15(a)).
//!
//! Pipeline per frame, mirroring [`ncpu_bnn::data::digits`] bit for bit:
//!
//! 1. the DMA stages a 4×-decimated 56×56×3 frame into the data cache,
//! 2. **resize** — 2×2 block average to 28×28×3,
//! 3. **grayscale filter** — luma conversion then an approximate 3×3 box
//!    filter,
//! 4. **normalization** — threshold against the image mean (computed
//!    division-free as `v·784 ≥ Σv`) and pack the 784 input bits.
//!
//! The program is phase-annotated: each phase ends by writing its id to a
//! phase-marker register (`gp`), which the SoC layer samples to build the
//! Fig. 15 runtime breakdown.

use ncpu_bnn::data::digits::{decimate, RawImage, STAGED};
use ncpu_isa::asm;

use crate::Tail;

/// Data-cache layout of the image program (byte offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageLayout {
    /// Staged 56×56×3 frame (9408 bytes).
    pub raw56: u32,
    /// Resized 28×28×3 frame (2352 bytes).
    pub rgb28: u32,
    /// Grayscale 28×28 plane (784 bytes).
    pub gray: u32,
    /// Filtered 28×28 plane (784 bytes).
    pub blur: u32,
    /// Packed 784-bit BNN input (98 bytes, padded to 100).
    pub pack: u32,
}

impl Default for ImageLayout {
    fn default() -> ImageLayout {
        ImageLayout { raw56: 0, rgb28: 9600, gray: 12000, blur: 12800, pack: 13600 }
    }
}

impl ImageLayout {
    /// Total bytes of data cache the program touches.
    pub const fn footprint(&self) -> u32 {
        self.pack + 100
    }
}

/// Phase ids written to `gp` at each phase boundary.
pub mod phase {
    /// Resize finished.
    pub const RESIZE_DONE: u32 = 1;
    /// Grayscale + filter finished.
    pub const FILTER_DONE: u32 = 2;
    /// Normalization + packing finished.
    pub const NORMALIZE_DONE: u32 = 3;
}

/// The bytes the DMA stages for one frame (4× strided decimation — data
/// movement only, no compute).
pub fn stage_bytes(raw: &RawImage) -> Vec<u8> {
    decimate(raw)
}

/// Number of staged bytes per frame.
pub const STAGE_BYTES: usize = STAGED * STAGED * 3;

/// Builds the pre-processing program.
///
/// `pack_base` is where the packed 784-bit input is written — the NCPU
/// flow passes the image-memory base so the data is *already in place*
/// for the accelerator; the offload flow packs into the local scratch
/// given by `layout.pack`.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (programming error).
pub fn preprocess_program(layout: &ImageLayout, pack_base: u32, tail: Tail) -> Vec<u32> {
    let ImageLayout { raw56, rgb28, gray, blur, .. } = *layout;
    let tail_asm = tail.asm(layout.pack);
    let src = format!(
        "# ---- phase 1: resize 56x56x3 -> 28x28x3 (2x2 average) ----
        li   s2, {rgb28}
        li   s3, 0
rs_oy:  li   t0, 336
        mul  t1, s3, t0
        li   t0, {raw56}
        add  s0, t1, t0
        addi s1, s0, 168
        li   s4, 28
rs_ox:  li   s5, 3
rs_c:   lbu  t2, 0(s0)
        lbu  t3, 3(s0)
        lbu  t4, 0(s1)
        lbu  t5, 3(s1)
        add  t2, t2, t3
        add  t4, t4, t5
        add  t2, t2, t4
        srli t2, t2, 2
        sb   t2, 0(s2)
        addi s2, s2, 1
        addi s0, s0, 1
        addi s1, s1, 1
        addi s5, s5, -1
        bnez s5, rs_c
        addi s0, s0, 3
        addi s1, s1, 3
        addi s4, s4, -1
        bnez s4, rs_ox
        addi s3, s3, 1
        li   t0, 28
        blt  s3, t0, rs_oy
        li   gp, {ph_resize}

        # ---- phase 2: grayscale (77/150/29) + 3x3 box filter ----
        li   s0, {rgb28}
        li   s2, {gray}
        li   s3, 784
        li   s6, 77
        li   s7, 150
        li   s8, 29
gs_l:   lbu  t2, 0(s0)
        lbu  t3, 1(s0)
        lbu  t4, 2(s0)
        mul  t2, t2, s6
        mul  t3, t3, s7
        mul  t4, t4, s8
        add  t2, t2, t3
        add  t2, t2, t4
        srli t2, t2, 8
        sb   t2, 0(s2)
        addi s0, s0, 3
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, gs_l
        # border copy
        li   s0, {gray}
        li   s2, {blur}
        li   s3, 784
bc_l:   lbu  t2, 0(s0)
        sb   t2, 0(s2)
        addi s0, s0, 1
        addi s2, s2, 1
        addi s3, s3, -1
        bnez s3, bc_l
        # interior 3x3 box: out = min(sum >> 3, 255)
        li   a0, {gray}
        li   a1, {blur}
        li   s3, 1
bl_y:   li   s4, 1
bl_x:   addi t0, s3, -1
        li   t1, 28
        mul  t0, t0, t1
        add  t0, t0, s4
        addi t0, t0, -1
        add  t0, t0, a0
        lbu  t2, 0(t0)
        lbu  t3, 1(t0)
        lbu  t4, 2(t0)
        add  t2, t2, t3
        add  t2, t2, t4
        lbu  t3, 28(t0)
        lbu  t4, 29(t0)
        lbu  t5, 30(t0)
        add  t3, t3, t4
        add  t2, t2, t3
        add  t2, t2, t5
        lbu  t3, 56(t0)
        lbu  t4, 57(t0)
        lbu  t5, 58(t0)
        add  t3, t3, t4
        add  t2, t2, t3
        add  t2, t2, t5
        srli t2, t2, 3
        sltiu t3, t2, 256
        bnez t3, bl_ok
        li   t2, 255
bl_ok:  li   t4, 28
        mul  t3, s3, t4
        add  t3, t3, s4
        add  t3, t3, a1
        sb   t2, 0(t3)
        addi s4, s4, 1
        li   t0, 27
        blt  s4, t0, bl_x
        addi s3, s3, 1
        li   t0, 27
        blt  s3, t0, bl_y
        li   gp, {ph_filter}

        # ---- phase 3: normalization (mean threshold) + bit packing ----
        li   s0, {blur}
        li   s3, 784
        li   s5, 0
nm_s:   lbu  t2, 0(s0)
        add  s5, s5, t2
        addi s0, s0, 1
        addi s3, s3, -1
        bnez s3, nm_s
        li   s0, {blur}
        li   s2, {pack_base}
        li   s3, 784
        li   s6, 0
        li   s7, 0
nm_l:   lbu  t2, 0(s0)
        slli t3, t2, 9
        slli t4, t2, 8
        add  t3, t3, t4
        slli t4, t2, 4
        add  t3, t3, t4
        sltu t4, t3, s5
        xori t4, t4, 1
        sll  t4, t4, s7
        or   s6, s6, t4
        addi s7, s7, 1
        li   t5, 8
        bne  s7, t5, nm_n
        sb   s6, 0(s2)
        addi s2, s2, 1
        li   s6, 0
        li   s7, 0
nm_n:   addi s0, s0, 1
        addi s3, s3, -1
        bnez s3, nm_l
        li   gp, {ph_norm}

        # ---- tail ----
        {tail_asm}",
        ph_resize = phase::RESIZE_DONE,
        ph_filter = phase::FILTER_DONE,
        ph_norm = phase::NORMALIZE_DONE,
    );
    asm::assemble(&src).expect("image preprocess program must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::data::digits::{self, DigitsConfig};
    use ncpu_bnn::BitVec;
    use ncpu_pipeline::{FlatMem, Pipeline};
    use ncpu_testkit::rng::Rng;

    /// The RV32I program must produce exactly the host mirror's bits.
    #[test]
    fn program_matches_host_mirror_bit_exactly() {
        let mut rng = Rng::seed_from_u64(11);
        for digit in [0usize, 3, 7] {
            let raw = digits::render_raw(digit, DigitsConfig::default().noise, &mut rng);
            let layout = ImageLayout::default();
            let program = preprocess_program(&layout, layout.pack, Tail::Halt);
            let mut cpu = Pipeline::new(program, FlatMem::new(16 * 1024));
            cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&raw));
            cpu.run(50_000_000).unwrap();
            let packed =
                &cpu.mem().local()[layout.pack as usize..layout.pack as usize + 98];
            let got = BitVec::from_bytes(packed, 784);
            let want = digits::preprocess(&raw);
            assert_eq!(got, want, "digit {digit}: program disagrees with host mirror");
        }
    }

    #[test]
    fn phase_markers_progress() {
        let mut rng = Rng::seed_from_u64(3);
        let raw = digits::render_raw(5, 0.1, &mut rng);
        let layout = ImageLayout::default();
        let program = preprocess_program(&layout, layout.pack, Tail::Halt);
        let mut cpu = Pipeline::new(program, FlatMem::new(16 * 1024));
        cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&raw));
        cpu.run(50_000_000).unwrap();
        assert_eq!(cpu.reg(ncpu_isa::Reg::GP), phase::NORMALIZE_DONE);
    }

    #[test]
    fn footprint_fits_w1_bank() {
        assert!(ImageLayout::default().footprint() <= 25 * 1024);
    }

    #[test]
    fn offload_tail_triggers_accelerator() {
        let mut rng = Rng::seed_from_u64(4);
        let raw = digits::render_raw(2, 0.1, &mut rng);
        let layout = ImageLayout::default();
        let program = preprocess_program(&layout, layout.pack, Tail::Offload);
        let mut cpu = Pipeline::new(program, FlatMem::new(16 * 1024));
        cpu.mem_mut().local_mut()[..STAGE_BYTES].copy_from_slice(&stage_bytes(&raw));
        let ev = cpu.run_until_event(50_000_000).unwrap();
        assert_eq!(ev, ncpu_isa::interp::Event::TriggerBnn);
        cpu.run(1_000).unwrap();
        // The packed input stays local for the DMA to pick up.
        let want = digits::preprocess(&raw);
        let local = &cpu.mem().local()[layout.pack as usize..layout.pack as usize + 98];
        assert_eq!(BitVec::from_bytes(local, 784), want);
    }
}
