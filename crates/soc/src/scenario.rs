//! The `Scenario`/`Engine` layer: one description of *what* to run, three
//! interchangeable simulators for *how* to run it.
//!
//! A [`Scenario`] bundles everything a run needs — the [`UseCase`], the
//! [`SystemConfig`] (including the NCPU core count N ≥ 1), the
//! [`SocConfig`] fabric parameters, the [`TraceLevel`], and an optional
//! DVFS operating point — so experiments, the `paper` binary, and
//! `ncpu-par` fan-out all pass one value instead of ad-hoc tuples.
//!
//! An [`Engine`] turns a scenario into a `(RunReport, Recorder)` pair.
//! Three engines exist, all built on the shared [`crate::fabric`]:
//!
//! * [`Analytic`] — the fast per-item scheduler ([`crate::run_traced`]).
//!   Use it for every figure/table sweep: items are independent, fabric
//!   costs are analytic, and it is orders of magnitude faster than
//!   cycle-stepping.
//! * [`Lockstep`] — the cycle-stepped co-simulation with real N-way L2
//!   port arbitration ([`crate::lockstep`]). Use it to *validate* the
//!   analytic model or when cycle-level core interaction matters; NCPU
//!   systems only.
//! * [`EventDriven`] — the event-queue twin of `Lockstep`
//!   ([`crate::eventdriven`]): byte-identical reports, counters, and
//!   event streams (pinned by `tests/engine_differential.rs`), but it
//!   jumps between observable actions and replays steady-state items
//!   instead of walking every cycle. Use it wherever lock-step fidelity
//!   is needed at sweep scale; NCPU systems only.
//! * [`Deep`] — the beyond-4-layer modes of paper Section VIII-A
//!   ([`crate::deep`]): N = 1 rolls layers back onto one physical array,
//!   N ≥ 2 connects cores in series. [`UseCaseKind::Deep`] use cases
//!   only.
//!
//! N-core semantics are uniform across engines: items are assigned
//! round-robin (`item i → core i % N`) on `Analytic`/`Lockstep`, while
//! `Deep` interprets N as the number of series segments the model is
//! split into.

use ncpu_bnn::BitVec;
use ncpu_fault::FaultPlan;
use ncpu_obs::{Recorder, TraceLevel};
use ncpu_sim::stats::Timeline;

use crate::deep::{self, run_rolled_arrivals_traced, try_run_series_n_arrivals_traced};
use crate::eventdriven::run_ncpu_event_topo;
use crate::fabric;
use crate::lockstep::run_ncpu_lockstep_topo;
use crate::report::{CoreReport, RunReport};
use crate::system::{run_traced_faulted_topo, SocConfig, SystemConfig};
use crate::topology::Topology;
use crate::usecase::{UseCase, UseCaseKind};

/// A complete, self-contained description of one end-to-end run.
#[derive(Debug, Clone)]
pub struct Scenario {
    usecase: UseCase,
    system: SystemConfig,
    soc: SocConfig,
    trace: TraceLevel,
    operating_point: Option<f64>,
    fault: FaultPlan,
    topology: Option<Topology>,
}

impl Scenario {
    /// Builds a scenario with the default fabric ([`SocConfig::default`]),
    /// counter-level tracing, no DVFS operating point, and the inert
    /// fault plan.
    pub fn new(usecase: UseCase, system: SystemConfig) -> Scenario {
        Scenario {
            usecase,
            system,
            soc: SocConfig::default(),
            trace: TraceLevel::Counters,
            operating_point: None,
            fault: FaultPlan::none(),
            topology: None,
        }
    }

    /// Replaces the fabric parameters.
    #[must_use]
    pub fn with_soc(mut self, soc: SocConfig) -> Scenario {
        self.soc = soc;
        self
    }

    /// Replaces the trace level.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceLevel) -> Scenario {
        self.trace = trace;
        self
    }

    /// Pins the DVFS operating point (supply voltage in volts) used by
    /// energy post-processing — and, when a fault plan is set, by the
    /// voltage-dependent SRAM soft-error rate.
    #[must_use]
    pub fn with_operating_point(mut self, volts: f64) -> Scenario {
        self.operating_point = Some(volts);
        self
    }

    /// Replaces the fault plan. The default ([`FaultPlan::none`]) is
    /// inert: every engine takes its exact pre-fault code path.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Scenario {
        self.fault = plan;
        self
    }

    /// Pins an explicit fabric topology. The default (no topology) is
    /// [`Topology::homogeneous`] of the system's core count, which is
    /// byte-identical to the pre-topology engines.
    ///
    /// # Panics
    ///
    /// Panics if the topology's core count disagrees with the system's
    /// (the topology describes exactly the cores the system schedules),
    /// or if it is attached to the heterogeneous baseline.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Scenario {
        assert!(
            matches!(self.system, SystemConfig::Ncpu { .. }),
            "topologies describe NCPU fleets, not the heterogeneous baseline"
        );
        assert_eq!(
            topology.cores(),
            self.cores(),
            "topology core count must match the system's"
        );
        self.topology = Some(topology);
        self
    }

    /// The workload.
    pub fn usecase(&self) -> &UseCase {
        &self.usecase
    }

    /// The system configuration.
    pub const fn system(&self) -> SystemConfig {
        self.system
    }

    /// The fabric parameters.
    pub const fn soc(&self) -> &SocConfig {
        &self.soc
    }

    /// The trace level engines run at.
    pub const fn trace(&self) -> TraceLevel {
        self.trace
    }

    /// The DVFS operating point, if pinned.
    pub const fn operating_point(&self) -> Option<f64> {
        self.operating_point
    }

    /// Supply voltage for energy post-processing: the pinned operating
    /// point, or the nominal 1.0 V.
    pub fn volts(&self) -> f64 {
        self.operating_point.unwrap_or(1.0)
    }

    /// The fault plan (inert by default).
    pub const fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    /// The explicit topology, if one was pinned.
    pub const fn explicit_topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The effective topology: the pinned one, or the byte-identical
    /// [`Topology::homogeneous`] default over [`Scenario::cores`].
    pub fn topology(&self) -> Topology {
        match &self.topology {
            Some(t) => t.clone(),
            None => Topology::homogeneous(self.cores()),
        }
    }

    /// The operating point in millivolts — the integer form the fault
    /// layer's voltage-dependent soft-error scaling consumes.
    pub fn millivolts(&self) -> u32 {
        (self.volts() * 1000.0).round() as u32
    }

    /// Number of NCPU cores the scenario schedules (the heterogeneous
    /// baseline counts as 1 — its single standalone CPU).
    pub const fn cores(&self) -> usize {
        match self.system {
            SystemConfig::Ncpu { cores } => cores,
            SystemConfig::Heterogeneous => 1,
        }
    }

    /// The content-addressed cache key of this scenario: a 64-bit
    /// FNV-1a over [`crate::canonical::canonical_bytes`]. Equal keys
    /// mean the lockstep/event engine class produces byte-identical
    /// reports; the trace level and engine choice are deliberately
    /// excluded (see [`crate::canonical`]).
    pub fn cache_key(&self) -> u64 {
        crate::canonical::cache_key(self)
    }
}

/// A simulator that can execute a [`Scenario`].
///
/// All engines return the standard [`RunReport`] plus the root
/// [`Recorder`] (counters always populated; span/instant events per the
/// scenario's trace level), so callers swap engines without touching
/// their reporting code.
pub trait Engine {
    /// Stable short name (artifact/log tag).
    fn name(&self) -> &'static str;

    /// Runs the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is outside the engine's domain (see each
    /// engine's docs) or a generated program faults.
    fn run(&self, scenario: &Scenario) -> (RunReport, Recorder);

    /// Convenience: runs and keeps only the report.
    fn report(&self, scenario: &Scenario) -> RunReport {
        self.run(scenario).0
    }
}

/// The fast analytic scheduler — handles every [`SystemConfig`] and every
/// non-deep [`UseCaseKind`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Analytic;

impl Engine for Analytic {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn run(&self, scenario: &Scenario) -> (RunReport, Recorder) {
        let _prof = ncpu_obs::selfprof::span("engine.analytic");
        run_traced_faulted_topo(
            &scenario.usecase,
            scenario.system,
            &scenario.soc,
            scenario.trace,
            &scenario.fault,
            scenario.millivolts(),
            &scenario.topology(),
        )
    }
}

/// The cycle-stepped co-simulation with real L2 arbitration — NCPU
/// systems only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lockstep;

impl Engine for Lockstep {
    fn name(&self) -> &'static str {
        "lockstep"
    }

    fn run(&self, scenario: &Scenario) -> (RunReport, Recorder) {
        let _prof = ncpu_obs::selfprof::span("engine.lockstep");
        let SystemConfig::Ncpu { .. } = scenario.system else {
            panic!("the lock-step engine co-simulates NCPU cores, not the baseline");
        };
        let (lockstep, rec) = run_ncpu_lockstep_topo(
            &scenario.usecase,
            &scenario.topology(),
            &scenario.soc,
            scenario.trace,
            &scenario.fault,
            scenario.millivolts(),
        );
        (lockstep.report, rec)
    }
}

/// The event-driven co-simulation — byte-identical to [`Lockstep`] but
/// orders of magnitude faster on steady-state workloads; NCPU systems
/// only.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventDriven;

impl Engine for EventDriven {
    fn name(&self) -> &'static str {
        "event"
    }

    fn run(&self, scenario: &Scenario) -> (RunReport, Recorder) {
        let _prof = ncpu_obs::selfprof::span("engine.event");
        let SystemConfig::Ncpu { .. } = scenario.system else {
            panic!("the event-driven engine co-simulates NCPU cores, not the baseline");
        };
        let (event, rec) = run_ncpu_event_topo(
            &scenario.usecase,
            &scenario.topology(),
            &scenario.soc,
            scenario.trace,
            &scenario.fault,
            scenario.millivolts(),
        );
        (event.report, rec)
    }
}

/// The beyond-4-layer deep-network engine: rollback on one core, series
/// pipeline on N ≥ 2 — [`UseCaseKind::Deep`] use cases only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deep;

impl Engine for Deep {
    fn name(&self) -> &'static str {
        "deep"
    }

    fn run(&self, scenario: &Scenario) -> (RunReport, Recorder) {
        let _prof = ncpu_obs::selfprof::span("engine.deep");
        assert_eq!(
            scenario.usecase.kind(),
            UseCaseKind::Deep,
            "the deep engine runs UseCase::deep workloads"
        );
        let SystemConfig::Ncpu { .. } = scenario.system else {
            panic!("the deep engine schedules NCPU cores, not the baseline");
        };
        // Roles map to segment placement: every BNN-capable core
        // (reconfigurable or fixed BNN array) holds one resident model
        // segment, in core-id order; CPU-only cores hold none. The
        // homogeneous default keeps the historical "N cores = N
        // segments" exactly.
        let topo = scenario.topology();
        let segment_cores = topo.bnn_cores();
        assert!(
            !segment_cores.is_empty(),
            "the deep engine needs at least one BNN-capable core"
        );
        let cores = segment_cores.len();
        let model = scenario.usecase.model();
        let width = model.topology().input();
        let items = scenario.usecase.items();
        // The fault prologue resolves the plan against input staging
        // before the accelerator sees any image: surviving images get
        // delayed arrivals, dropped ones never enter the batch. The
        // deep engine has no spare cores (every core holds a resident
        // model segment), so quarantine is structurally disabled.
        let prologue = scenario.fault.is_active().then(|| {
            let sizes: Vec<usize> = items.iter().map(|i| i.staged.len()).collect();
            deep::deep_fault_prologue(
                &scenario.fault,
                scenario.millivolts(),
                &sizes,
                &scenario.soc,
            )
        });
        let (inputs, arrivals): (Vec<BitVec>, Vec<u64>) = match &prologue {
            Some(p) => p
                .kept
                .iter()
                .zip(&p.arrivals)
                .map(|(&i, &at)| (BitVec::from_bytes(&items[i].staged, width), at))
                .unzip(),
            None => {
                items.iter().map(|item| (BitVec::from_bytes(&item.staged, width), 0)).unzip()
            }
        };
        let (run, mut rec, config, roles) = if cores == 1 {
            let (run, rec) = run_rolled_arrivals_traced(
                model,
                &inputs,
                &arrivals,
                &scenario.soc,
                scenario.trace,
            );
            let busy = rec.counters().get("accel.busy_cycles");
            (run, rec, "deep rollback (1 core)".to_string(), vec![("deep".to_string(), busy)])
        } else {
            let (run, rec) = try_run_series_n_arrivals_traced(
                model,
                &inputs,
                &arrivals,
                &scenario.soc,
                cores,
                scenario.trace,
            )
            .unwrap_or_else(|e| panic!("{e}"));
            let roles = (0..cores)
                .map(|s| {
                    let role = if topo.is_homogeneous() {
                        format!("seg{s}")
                    } else {
                        format!("seg{s}@core{}", segment_cores[s])
                    };
                    (role, rec.counters().get(&format!("core{s}.busy_cycles")))
                })
                .collect();
            (run, rec, format!("{cores}x ncpu (series)"), roles)
        };
        if !topo.is_homogeneous() {
            for (s, &c) in segment_cores.iter().enumerate() {
                rec.set_counter(format!("deep.seg{s}.core"), c as u64);
            }
        }
        rec.set_counter("deep.first_latency", run.first_latency);
        rec.set_counter("deep.steady_interval", run.steady_interval);
        let mut makespan = run.total_cycles;
        let mut predictions = run.outputs.clone();
        if let Some(p) = &prologue {
            // Fault instants go on a dedicated lane (past the segment
            // phase lanes and the link's DMA lane), pre-sorted so the
            // per-lane timestamp order the validator enforces holds.
            let fault_lane = if cores == 1 { 1 } else { cores as u16 + 1 };
            for (cycle, kind) in &p.events {
                rec.emit(fault_lane, *cycle, kind.clone());
            }
            for &sample in &p.recovery_cycles {
                rec.metric("fault.recovery_cycles", sample);
            }
            for &sample in &p.retries {
                rec.metric("item.retries", sample);
            }
            for &(name, value) in &p.counters {
                rec.set_counter(name, value);
            }
            // A dropped image's detection can outlast the batch; the
            // batch itself only saw the surviving images.
            makespan = makespan.max(p.horizon);
            rec.set_counter("run.makespan_cycles", makespan);
            rec.set_counter("run.items", items.len() as u64);
            debug_assert_eq!(p.kept.len() + p.dropped.len(), items.len());
            let mut full = vec![fabric::DROPPED_PREDICTION; items.len()];
            for (k, &orig) in p.kept.iter().enumerate() {
                full[orig] = run.outputs[k];
            }
            predictions = full;
        }
        let report = RunReport {
            config,
            makespan,
            cores: roles
                .into_iter()
                .enumerate()
                .map(|(lane, (role, busy))| CoreReport {
                    role,
                    timeline: Timeline::from_obs_events(rec.spans(), lane as u16),
                    busy_cycles: busy,
                })
                .collect(),
            predictions,
            labels: items.iter().map(|i| i.label).collect(),
            metrics: rec.metrics().clone(),
        };
        (report, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::pseudo_model;

    #[test]
    fn scenario_carries_every_knob() {
        let uc = UseCase::parametric(0.5, 2, pseudo_model(784, 20, 10));
        let soc = SocConfig { dma_bytes_per_cycle: 8, ..SocConfig::default() };
        let plan = FaultPlan { seed: 9, sram_flip_ppm: 1_000, ..FaultPlan::none() };
        let s = Scenario::new(uc, SystemConfig::Ncpu { cores: 4 })
            .with_soc(soc)
            .with_trace(TraceLevel::Full)
            .with_operating_point(0.6)
            .with_faults(plan);
        assert_eq!(s.cores(), 4);
        assert_eq!(s.soc().dma_bytes_per_cycle, 8);
        assert_eq!(s.trace(), TraceLevel::Full);
        assert_eq!(s.operating_point(), Some(0.6));
        assert!((s.volts() - 0.6).abs() < 1e-12);
        assert_eq!(s.fault(), &plan);
        assert_eq!(s.millivolts(), 600);
        let hetero = Scenario::new(
            UseCase::parametric(0.5, 2, pseudo_model(784, 20, 10)),
            SystemConfig::Heterogeneous,
        );
        assert_eq!(hetero.cores(), 1);
        assert!((hetero.volts() - 1.0).abs() < 1e-12);
        assert_eq!(hetero.millivolts(), 1000);
        // The default plan is the inert one: no injection, no watchdog.
        assert!(!hetero.fault().is_active());
    }

    #[test]
    fn analytic_engine_matches_direct_call() {
        let uc = UseCase::parametric(0.6, 3, pseudo_model(784, 20, 10));
        let s = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 2 });
        let via_engine = Analytic.report(&s);
        let direct = crate::system::run(&uc, SystemConfig::Ncpu { cores: 2 }, s.soc());
        assert_eq!(via_engine.makespan, direct.makespan);
        assert_eq!(via_engine.predictions, direct.predictions);
        assert_eq!(Analytic.name(), "analytic");
    }

    #[test]
    fn engines_are_interchangeable_behind_the_trait() {
        let uc = UseCase::parametric(0.6, 4, pseudo_model(784, 20, 10));
        let s = Scenario::new(uc, SystemConfig::Ncpu { cores: 2 });
        let engines: Vec<Box<dyn Engine>> = vec![Box::new(Analytic), Box::new(Lockstep)];
        let reports: Vec<RunReport> = engines.iter().map(|e| e.report(&s)).collect();
        assert_eq!(reports[0].predictions, reports[1].predictions);
        assert_eq!(reports[0].cores.len(), reports[1].cores.len());
    }

    #[test]
    #[should_panic(expected = "NCPU cores")]
    fn lockstep_rejects_heterogeneous() {
        let uc = UseCase::parametric(0.6, 2, pseudo_model(784, 20, 10));
        Lockstep.run(&Scenario::new(uc, SystemConfig::Heterogeneous));
    }

    #[test]
    #[should_panic(expected = "deep engine")]
    fn deep_rejects_non_deep_use_cases() {
        let uc = UseCase::parametric(0.6, 2, pseudo_model(784, 20, 10));
        Deep.run(&Scenario::new(uc, SystemConfig::Ncpu { cores: 1 }));
    }

    #[test]
    fn deep_engine_rolls_back_and_pipelines_in_series() {
        let model = crate::deep::tests::deep_model(8);
        let ins = crate::deep::tests::inputs(6);
        let uc = UseCase::deep(model, &ins);
        let reference: Vec<usize> = uc.items().iter().map(|i| i.label).collect();
        let rolled = Deep.report(&Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 1 }));
        assert_eq!(rolled.config, "deep rollback (1 core)");
        assert_eq!(rolled.predictions, reference);
        assert_eq!(rolled.cores.len(), 1);
        for cores in [2usize, 4] {
            let (report, rec) =
                Deep.run(&Scenario::new(uc.clone(), SystemConfig::Ncpu { cores }));
            assert_eq!(report.config, format!("{cores}x ncpu (series)"));
            assert_eq!(report.predictions, reference, "{cores} segments");
            assert_eq!(report.cores.len(), cores);
            assert!(report.cores.iter().all(|c| c.busy_cycles > 0));
            assert!(report.makespan <= rolled.makespan);
            assert!(rec.counters().get("deep.steady_interval") > 0);
        }
    }

    #[test]
    fn deep_engine_prices_faults_and_drops_items() {
        let model = crate::deep::tests::deep_model(8);
        let ins = crate::deep::tests::inputs(8);
        let uc = UseCase::deep(model, &ins);
        let total = uc.items().len();
        let plan = FaultPlan {
            seed: 13,
            sram_flip_ppm: 400_000,
            dma_stall_ppm: 200_000,
            dma_stall_cycles: 400,
            dma_truncate_ppm: 200_000,
            max_retries: 1,
            backoff_cycles: 64,
            ..FaultPlan::none()
        };
        for cores in [1usize, 2] {
            let clean = Deep.report(&Scenario::new(uc.clone(), SystemConfig::Ncpu { cores }));
            let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores })
                .with_operating_point(0.8)
                .with_trace(TraceLevel::Full)
                .with_faults(plan);
            let (report, rec) = Deep.run(&scenario);
            let (again, rec2) = Deep.run(&scenario);
            assert_eq!(report.makespan, again.makespan, "faulted deep run is deterministic");
            assert_eq!(report.predictions, again.predictions);
            assert_eq!(rec.metrics().to_json(), rec2.metrics().to_json());
            let injected = rec.counters().get("fault.injected.sram_flip")
                + rec.counters().get("fault.injected.dma_stall")
                + rec.counters().get("fault.injected.dma_truncate");
            assert!(injected > 0, "aggressive plan must inject ({cores} cores)");
            let dropped = rec.counters().get("fault.items_dropped");
            assert!(dropped > 0, "max_retries 1 at 800 mV must drop something");
            // Every item keeps a prediction slot; dropped ones hold the
            // sentinel, surviving ones classify exactly as the clean run.
            assert_eq!(report.predictions.len(), total);
            let sentinels = report
                .predictions
                .iter()
                .filter(|&&p| p == crate::fabric::DROPPED_PREDICTION)
                .count() as u64;
            assert_eq!(sentinels, dropped);
            for (faulted, clean) in report.predictions.iter().zip(&clean.predictions) {
                if *faulted != crate::fabric::DROPPED_PREDICTION {
                    assert_eq!(faulted, clean);
                }
            }
            assert_eq!(rec.counters().get("run.items"), total as u64);
            // The makespan covers the fault layer's whole story: no
            // detection or recovery instant may land past it. (It can
            // still be *shorter* than the clean run — dropped images
            // never occupy the array.)
            let last_fault_event = rec
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        ncpu_obs::EventKind::Fault { .. }
                            | ncpu_obs::EventKind::Detect { .. }
                            | ncpu_obs::EventKind::Recover { .. }
                    )
                })
                .map(|e| e.cycle)
                .max()
                .expect("aggressive plan must leave fault events");
            assert!(report.makespan >= last_fault_event);
            assert_eq!(rec.counters().get("run.makespan_cycles"), report.makespan);
            assert_eq!(rec.counters().get("fault.cores_quarantined"), 0);
        }
    }
}
