//! Use-case definitions: what runs end to end.

use ncpu_bnn::data::{digits, motion};
use ncpu_bnn::train::{train, TrainConfig};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_workloads::{image, motion as motion_prog, spin};
use ncpu_testkit::rng::Rng;

/// The workspace's deterministic pseudo-model: 4 hidden layers of
/// `neurons` each with a fixed weight/bias pattern — no training, so
/// callers (benches, examples, the serve fleet) start instantly, and
/// every construction with the same dimensions is byte-identical.
///
/// This is the single definition of the construction the soc tests,
/// `benches/event.rs`, and `examples/engine_matrix.rs` previously each
/// carried a private copy of.
pub fn pseudo_model(input: usize, neurons: usize, classes: usize) -> BnnModel {
    pseudo_deep_model(input, neurons, classes, 4)
}

/// The same deterministic weight/bias pattern at an arbitrary hidden
/// depth — `layers > 4` feeds the [`Deep`](crate::Deep) engine's
/// rollback/series schedulers without training anything.
pub fn pseudo_deep_model(
    input: usize,
    neurons: usize,
    classes: usize,
    layers: usize,
) -> BnnModel {
    let topo = Topology::new(input, vec![neurons; layers], classes);
    let built = (0..layers)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..neurons)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2)))
                .collect();
            let bias = (0..neurons).map(|j| (j as i32 % 3) - 1).collect();
            BnnLayer::new(rows, bias)
        })
        .collect();
    BnnModel::new(topo, built)
}

/// Which real-time workload a [`UseCase`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCaseKind {
    /// Image classification (paper Fig. 15(a)): resize → grayscale filter
    /// → normalization → BNN.
    Image,
    /// Human motion detection (Fig. 15(b)): mean + histogram features →
    /// BNN.
    Motion,
    /// Parametric workload (Figs. 13/14): a calibrated spin loop stands in
    /// for pre-processing so the CPU workload fraction is set exactly.
    Parametric,
    /// Deep network beyond the 4-layer array (paper Section IV-D): runs on
    /// the `Deep` engine via rollback (one core) or a series pipeline of
    /// model segments (N cores); there is no CPU pre-processing phase.
    Deep,
}

/// One item of work: the bytes the DMA stages plus ground truth.
#[derive(Debug, Clone)]
pub struct Item {
    /// Bytes staged into the core's data cache before the CPU phase.
    pub staged: Vec<u8>,
    /// Ground-truth class.
    pub label: usize,
}

/// An end-to-end workload: a trained model plus a batch of items.
#[derive(Debug, Clone)]
pub struct UseCase {
    kind: UseCaseKind,
    model: BnnModel,
    items: Vec<Item>,
    /// For [`UseCaseKind::Parametric`]: requested pre-processing cycles.
    spin_cycles: u64,
}

impl UseCase {
    /// Builds the image-classification use case with `batch` raw frames.
    ///
    /// `train_per_class` controls training-set size (the experiment
    /// binaries use the full default; tests pass something small). The
    /// returned accuracy context lives in the model itself.
    pub fn image(batch: usize, train_per_class: usize, epochs: usize) -> UseCase {
        let noise = digits::DigitsConfig::default().noise;
        // Train on frames that went through the same raw pipeline the
        // use case runs (the 3×3 filter slightly dilates strokes, so
        // training on plain bitmaps would shift the domain).
        let mut rng = Rng::seed_from_u64(76);
        let mut inputs = Vec::with_capacity(train_per_class * digits::CLASSES);
        let mut labels = Vec::with_capacity(train_per_class * digits::CLASSES);
        for digit in 0..digits::CLASSES {
            for _ in 0..train_per_class {
                let raw = digits::render_raw(digit, noise, &mut rng);
                inputs.push(digits::preprocess(&raw));
                labels.push(digit);
            }
        }
        let train_set = ncpu_bnn::data::Dataset::new(inputs, labels, digits::CLASSES);
        let topo = Topology::paper(digits::PIXELS, 100, digits::CLASSES);
        let model =
            train(&topo, &train_set, &TrainConfig { epochs, ..TrainConfig::default() });
        let mut rng = Rng::seed_from_u64(77);
        let items = (0..batch)
            .map(|i| {
                let raw = digits::render_raw(i % digits::CLASSES, noise, &mut rng);
                Item { staged: image::stage_bytes(&raw), label: raw.label() }
            })
            .collect();
        UseCase { kind: UseCaseKind::Image, model, items, spin_cycles: 0 }
    }

    /// Builds the motion-detection use case with `batch` sensor windows.
    pub fn motion(batch: usize, train_per_class: usize, epochs: usize) -> UseCase {
        let cfg = motion::MotionConfig {
            train_per_class,
            test_per_class: 1,
            ..motion::MotionConfig::default()
        };
        let (train_w, _) = motion::generate(&cfg);
        let train_set = motion::to_dataset(&train_w);
        let topo = Topology::paper(motion::INPUT_BITS, 100, motion::CLASSES);
        let model =
            train(&topo, &train_set, &TrainConfig { epochs, ..TrainConfig::default() });
        let mut rng = Rng::seed_from_u64(78);
        let items = (0..batch)
            .map(|i| {
                let w = motion::generate_window(i % motion::CLASSES, cfg.noise, &mut rng);
                Item { staged: motion_prog::stage_bytes(&w), label: w.label() }
            })
            .collect();
        UseCase { kind: UseCaseKind::Motion, model, items, spin_cycles: 0 }
    }

    /// Builds the parametric use case of Figs. 13/14: pre-processing is a
    /// spin loop sized so the CPU workload fraction (CPU cycles over
    /// CPU + BNN cycles) equals `cpu_fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cpu_fraction < 1`.
    pub fn parametric(cpu_fraction: f64, batch: usize, model: BnnModel) -> UseCase {
        assert!(
            cpu_fraction > 0.0 && cpu_fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        // Inference latency of one image on the layer-pipelined array.
        let infer: u64 = {
            let topo = model.topology();
            (0..topo.layers().len())
                .map(|l| topo.layer_input(l) as u64 + ncpu_accel::SIGN_CYCLES)
                .sum()
        };
        let spin_cycles =
            ((cpu_fraction / (1.0 - cpu_fraction)) * infer as f64).round() as u64;
        let items = (0..batch).map(|_| Item { staged: Vec::new(), label: 0 }).collect();
        UseCase { kind: UseCaseKind::Parametric, model, items, spin_cycles: spin_cycles.max(32) }
    }

    /// Builds a deep-network use case: a model (any depth) plus the raw
    /// input vectors to classify. Labels are the model's own answers —
    /// the deep engines are judged on schedule fidelity, and functional
    /// equivalence between rollback and series modes is asserted against
    /// these reference classifications.
    ///
    /// # Panics
    ///
    /// Panics if any input's width differs from the model's input width.
    pub fn deep(model: BnnModel, inputs: &[ncpu_bnn::BitVec]) -> UseCase {
        let width = model.topology().input();
        let items = inputs
            .iter()
            .map(|input| {
                assert_eq!(input.len(), width, "input width must match the model");
                Item { staged: input.to_bytes(), label: model.classify(input) }
            })
            .collect();
        UseCase { kind: UseCaseKind::Deep, model, items, spin_cycles: 0 }
    }

    /// The workload kind.
    pub const fn kind(&self) -> UseCaseKind {
        self.kind
    }

    /// Stable short name for artifact files (`RUN_<name>.json`).
    pub const fn name(&self) -> &'static str {
        match self.kind {
            UseCaseKind::Image => "image",
            UseCaseKind::Motion => "motion",
            UseCaseKind::Parametric => "parametric",
            UseCaseKind::Deep => "deep",
        }
    }

    /// The trained classifier.
    pub fn model(&self) -> &BnnModel {
        &self.model
    }

    /// The batch of items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Requested spin cycles (parametric use case only).
    pub const fn spin_cycles(&self) -> u64 {
        self.spin_cycles
    }

    /// Assembly of the pre-processing body (no tail) for this use case.
    pub(crate) fn spin_source(&self) -> Option<String> {
        match self.kind {
            UseCaseKind::Parametric => Some(spin::spin_source(self.spin_cycles)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> BnnModel {
        BnnModel::zeros(&Topology::new(784, vec![100; 4], 10))
    }

    #[test]
    fn parametric_fraction_sets_spin_budget() {
        let m = tiny_model();
        let infer = 785 + 3 * 101;
        let uc = UseCase::parametric(0.7, 2, m);
        let expect = (0.7f64 / 0.3 * infer as f64).round() as u64;
        assert_eq!(uc.spin_cycles(), expect);
        assert_eq!(uc.items().len(), 2);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn parametric_rejects_bad_fraction() {
        UseCase::parametric(1.0, 2, tiny_model());
    }

    #[test]
    fn motion_use_case_builds_quickly_with_tiny_training() {
        let uc = UseCase::motion(2, 4, 2);
        assert_eq!(uc.items().len(), 2);
        assert_eq!(uc.kind(), UseCaseKind::Motion);
        assert_eq!(uc.items()[0].staged.len(), ncpu_workloads::motion::STAGE_BYTES);
    }
}
