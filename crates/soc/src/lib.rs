//! The two-core NCPU SoC and the conventional heterogeneous baseline.
//!
//! Reproduces the end-to-end system of paper Section VI/VII: a shared
//! incoherent L2, a DMA engine, and either
//!
//! * the **heterogeneous baseline** — one standalone 5-stage CPU that
//!   pre-processes each item, offloads the packed BNN input over the
//!   L2/DMA path (`trigger_bnn`), and a standalone layer-pipelined BNN
//!   accelerator that classifies as inputs arrive, or
//! * **1 or 2 NCPU cores** — each core pre-processes with data written
//!   straight into its local image memory, switches modes with zero
//!   latency, classifies in place, and switches back.
//!
//! [`run`] executes a [`UseCase`] under a [`SystemConfig`] and returns a
//! [`RunReport`] with the makespan, per-core busy/mode timelines,
//! utilizations, predicted classes and energy — everything the paper's
//! Figs. 13–17 and Table IV are made of.
//!
//! Prefer the [`Scenario`]/[`Engine`] layer for new code: one value
//! describes the run (use case × system × fabric × trace × operating
//! point) and the [`Analytic`], [`Lockstep`], [`EventDriven`], and
//! [`Deep`] engines execute it interchangeably, at any core count
//! N ≥ 1. All are built on one shared `fabric` module, so result
//! mailboxes, program construction, DMA staging, and report assembly
//! cannot drift apart. [`EventDriven`] is the byte-identical fast twin
//! of [`Lockstep`]: an event-queue scheduler that jumps between
//! observable actions instead of walking every cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod deep;
pub mod energy;
pub mod event_queue;
pub mod eventdriven;
mod fabric;
pub mod lockstep;
pub mod phases;
mod report;
mod scenario;
mod system;
pub mod topology;
mod usecase;

pub use canonical::{cache_key, canonical_bytes, fnv1a_64};
pub use fabric::{result_addr, DROPPED_PREDICTION, ITEM_BUDGET, L2_BYTES};
pub use report::{CoreReport, RunReport};
pub use scenario::{Analytic, Deep, Engine, EventDriven, Lockstep, Scenario};
pub use system::{run, run_independent, run_traced, run_traced_faulted, SocConfig, SystemConfig};
pub use usecase::{pseudo_deep_model, pseudo_model, UseCase, UseCaseKind};

/// The fault-injection plan a [`Scenario`] carries (re-exported from
/// `ncpu-fault`; attach one with [`Scenario::with_faults`]).
pub use ncpu_fault::FaultPlan;

/// The observability layer the SoC records into ([`run_traced`] returns
/// its [`obs::Recorder`]).
pub use ncpu_obs as obs;
