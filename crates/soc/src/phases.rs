//! Phase-resolved measurement of the pre-processing programs (Fig. 15).
//!
//! The image and motion programs write a phase id to `gp` at each phase
//! boundary; stepping the pipeline and watching `gp` yields the exact
//! cycle each phase ends, from which the paper's runtime breakdown (CPU
//! stages vs BNN share) is computed.

use ncpu_pipeline::{FlatMem, MemPort, Pipeline};

/// Runtime of each phase of a phase-annotated program, in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// `(phase_id, cycles)` in execution order; ids are the program's
    /// `phase::*` constants.
    pub phases: Vec<(u32, u64)>,
    /// Cycles after the last marker until halt (mode switching, copy-out).
    pub tail_cycles: u64,
    /// Total program cycles.
    pub total_cycles: u64,
}

impl PhaseBreakdown {
    /// Fraction of total time in phase `id` (against `total + extra`,
    /// letting callers fold in the BNN share).
    pub fn share_of(&self, id: u32, denominator: u64) -> f64 {
        let cycles = self
            .phases
            .iter()
            .find(|&&(p, _)| p == id)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        cycles as f64 / denominator as f64
    }
}

/// Runs a phase-annotated program on a bare pipeline with `staged` data
/// preloaded at address 0, recording `gp` transitions.
///
/// # Panics
///
/// Panics if the program faults or exceeds the cycle budget — both are
/// workspace bugs, not input conditions.
pub fn measure<M>(mut cpu: Pipeline<M>, budget: u64) -> PhaseBreakdown
where
    M: MemPort,
{
    let mut phases = Vec::new();
    let mut last_marker_cycle = 0u64;
    let mut last_gp = 0u32;
    while !cpu.is_halted() {
        assert!(cpu.stats().cycles < budget, "phase measurement exceeded budget");
        cpu.step().expect("phase-annotated program must not fault");
        let gp = cpu.reg(ncpu_isa::Reg::GP);
        if gp != last_gp {
            let now = cpu.stats().cycles;
            phases.push((gp, now - last_marker_cycle));
            last_marker_cycle = now;
            last_gp = gp;
        }
        if cpu.is_fetch_halted() && !cpu.is_halted() && cpu.is_drained() {
            // A serializing instruction (trans_bnn) parked the pipeline and
            // every in-flight instruction has retired; for phase
            // measurement this is the end of CPU work.
            break;
        }
    }
    let total_cycles = cpu.stats().cycles;
    PhaseBreakdown { phases, tail_cycles: total_cycles - last_marker_cycle, total_cycles }
}

/// Convenience wrapper: measure a program over `FlatMem` with staged data.
pub fn measure_program(program: Vec<u32>, staged: &[u8], mem_bytes: usize) -> PhaseBreakdown {
    let mut cpu = Pipeline::new(program, FlatMem::new(mem_bytes));
    cpu.mem_mut().local_mut()[..staged.len()].copy_from_slice(staged);
    measure(cpu, 500_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncpu_bnn::data::{digits, motion};
    use ncpu_workloads::{image, motion as motion_prog, Tail};
    use ncpu_testkit::rng::Rng;

    #[test]
    fn image_phases_match_paper_ordering() {
        let mut rng = Rng::seed_from_u64(1);
        let raw = digits::render_raw(3, 0.1, &mut rng);
        let layout = image::ImageLayout::default();
        let program = image::preprocess_program(&layout, layout.pack, Tail::Halt);
        let b = measure_program(program, &image::stage_bytes(&raw), 16 * 1024);
        assert_eq!(b.phases.len(), 3, "three CPU phases");
        let resize = b.phases[0].1;
        let filter = b.phases[1].1;
        let norm = b.phases[2].1;
        // Paper Fig. 15(a): filter (32%) > resize (30%) > normalization (12%).
        assert!(filter > resize, "filter {filter} vs resize {resize}");
        assert!(resize > norm, "resize {resize} vs norm {norm}");
        assert_eq!(b.total_cycles, resize + filter + norm + b.tail_cycles);
    }

    #[test]
    fn motion_phases_match_paper_ordering() {
        let mut rng = Rng::seed_from_u64(2);
        let w = motion::generate_window(2, 9000.0, &mut rng);
        let layout = motion_prog::MotionLayout::default();
        let program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
        let b = measure_program(program, &motion_prog::stage_bytes(&w), 4096);
        assert_eq!(b.phases.len(), 3);
        let mean = b.phases[0].1;
        let hist = b.phases[1].1;
        // Paper Fig. 15(b): histogram (46%) dominates mean (22%).
        assert!(hist > mean, "hist {hist} vs mean {mean}");
    }
}
