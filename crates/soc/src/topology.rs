//! Typed fabric topologies: per-core roles, per-core DVFS points,
//! asymmetric L2 banking, and the pluggable item scheduler.
//!
//! The paper's fleet is N identical reconfigurable cores; this module
//! generalizes that to a [`Topology`] — one [`CoreSpec`] per core plus a
//! shared L2 bank map and a [`SchedulerKind`] — carried on
//! [`crate::Scenario`]. [`Topology::homogeneous`] is the byte-identical
//! default: every engine that receives it (explicitly or as the
//! materialized default for a scenario without a topology) produces
//! exactly the reports it produced before topologies existed.
//!
//! # Scheduler contract
//!
//! An [`ItemScheduler`] turns a topology and a per-item cost estimate
//! into an upfront dispatch *plan* (`item i → core plan[i]`). All four
//! engines consume the same plan, so the lockstep/event byte-identity
//! proof carries over to every topology unchanged: the engines never
//! make a placement decision of their own.
//!
//! * [`Static`] round-robins over the item-capable cores in core-id
//!   order — on a homogeneous fleet this is exactly the historical
//!   `item i → core i % N`.
//! * [`WorkStealing`] is the deterministic steal order the issue names:
//!   each item goes to the item-capable core with the lowest
//!   accumulated (speed-weighted) load — "lowest idle core first" —
//!   with ties broken by the lowest core id. Cores pinned to a reduced
//!   DVFS point accumulate load faster (their cycles are worth more
//!   wall time), so the plan shifts items toward fast cores on
//!   voltage-asymmetric fleets. On a uniform-cost, uniform-speed fleet
//!   the two schedulers coincide by construction.
//!
//! # Roles
//!
//! * `Reconfigurable` cores run whole items (CPU phase + BNN phase) —
//!   the only item-capable role.
//! * `CpuOnly` / `BnnOnly` cores never receive items from the item
//!   schedulers; they contribute area and leakage (and, for `BnnOnly`,
//!   deep-engine segment placement) but stay idle in the item engines.
//!
//! The deep engine maps segments onto BNN-capable cores
//! (`Reconfigurable` or `BnnOnly`) in core-id order.

use ncpu_power::Dvfs;

use crate::system::SocConfig;
use crate::usecase::UseCase;

/// What a core can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRole {
    /// The paper's NCPU core: reconfigures between CPU and BNN mode,
    /// runs whole items.
    Reconfigurable,
    /// A fixed scalar core: control/CPU phases only, never items.
    CpuOnly,
    /// A fixed BNN array: inference phases only; eligible for deep
    /// segment placement but never whole items.
    BnnOnly,
}

impl CoreRole {
    /// Stable single-letter tag used in config strings and canonical
    /// encodings.
    pub const fn tag(self) -> u8 {
        match self {
            CoreRole::Reconfigurable => 0,
            CoreRole::CpuOnly => 1,
            CoreRole::BnnOnly => 2,
        }
    }
}

/// One core's slot in the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSpec {
    /// What the core can execute.
    pub role: CoreRole,
    /// Per-core DVFS operating point in volts; `None` inherits the
    /// scenario-level point (or the nominal 1.0 V). Affects energy
    /// post-processing and the work-stealing load weights — cycle
    /// timing stays in one clock domain, like the scenario-level point.
    pub operating_point: Option<f64>,
    /// Which L2 bank the core's traffic arbitrates in.
    pub bank: usize,
}

impl CoreSpec {
    /// The default reconfigurable spec (bank 0, inherited voltage).
    pub const fn reconfigurable() -> CoreSpec {
        CoreSpec { role: CoreRole::Reconfigurable, operating_point: None, bank: 0 }
    }

    /// The voltage this core runs at, given the scenario-level volts.
    pub fn volts(&self, scenario_volts: f64) -> f64 {
        self.operating_point.unwrap_or(scenario_volts)
    }

    /// A stable 64-bit digest of the spec — the event engine mixes this
    /// into its memo key so a replay recorded on one core spec can
    /// never be applied under another.
    pub fn memo_key(&self) -> u64 {
        let mut bytes = Vec::with_capacity(17);
        bytes.push(self.role.tag());
        // Normalized like Scenario::volts: an unset point and the
        // nominal default digest identically only when they resolve to
        // the same voltage, which is exactly the replay-soundness rule.
        bytes.extend_from_slice(&self.volts(1.0).to_bits().to_le_bytes());
        bytes.extend_from_slice(&(self.bank as u64).to_le_bytes());
        crate::canonical::fnv1a_64(&bytes)
    }
}

/// Which item scheduler a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Round-robin over item-capable cores (the pinned historical
    /// behavior).
    #[default]
    Static,
    /// Deterministic work stealing: lowest-idle-core-first, ties to the
    /// lowest core id.
    WorkStealing,
}

/// A complete fabric topology: one spec per core, the L2 bank widths,
/// and the item scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    specs: Vec<CoreSpec>,
    bank_bytes: Vec<usize>,
    scheduler: SchedulerKind,
}

impl Topology {
    /// The byte-identical default: `n` reconfigurable cores at the
    /// inherited voltage sharing one full-width L2 bank, statically
    /// scheduled. A scenario without an explicit topology materializes
    /// this, and every engine reproduces its pre-topology output on it
    /// exactly.
    pub fn homogeneous(n: usize) -> Topology {
        Topology {
            specs: vec![CoreSpec::reconfigurable(); n.max(1)],
            bank_bytes: vec![crate::fabric::L2_BYTES],
            scheduler: SchedulerKind::Static,
        }
    }

    /// Builds a topology from explicit core specs and bank widths.
    ///
    /// Validation is structural: at least one core, at least one bank,
    /// every spec's bank id in range, positive bank widths that fit in
    /// the shared L2, and every explicit per-core operating point
    /// inside the DVFS model's validated 0.4–1.1 V window (the same
    /// window [`ncpu_power::Dvfs::freq_hz`] enforces by panicking).
    /// Role feasibility (e.g. "an item workload needs a reconfigurable
    /// core") is checked at the engine boundary, not here, because it
    /// depends on the workload.
    pub fn from_specs(
        specs: Vec<CoreSpec>,
        bank_bytes: Vec<usize>,
        scheduler: SchedulerKind,
    ) -> Result<Topology, String> {
        if specs.is_empty() {
            return Err("topology: at least one core".to_string());
        }
        if bank_bytes.is_empty() {
            return Err("topology: at least one L2 bank".to_string());
        }
        if bank_bytes.contains(&0) {
            return Err("topology: bank widths must be positive".to_string());
        }
        let total: usize = bank_bytes.iter().sum();
        if total > crate::fabric::L2_BYTES {
            return Err(format!(
                "topology: bank widths sum to {total} bytes, over the {} byte shared L2",
                crate::fabric::L2_BYTES
            ));
        }
        for (c, spec) in specs.iter().enumerate() {
            if spec.bank >= bank_bytes.len() {
                return Err(format!(
                    "topology: core {c} assigned to bank {} of {}",
                    spec.bank,
                    bank_bytes.len()
                ));
            }
            if let Some(v) = spec.operating_point {
                if !(0.4..=1.1).contains(&v) {
                    return Err(format!(
                        "topology: core {c} operating point {v} V outside [0.4, 1.1]"
                    ));
                }
            }
        }
        Ok(Topology { specs, bank_bytes, scheduler })
    }

    /// Replaces the scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Topology {
        self.scheduler = scheduler;
        self
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.specs.len()
    }

    /// One core's spec.
    pub fn spec(&self, core: usize) -> &CoreSpec {
        &self.specs[core]
    }

    /// All core specs, in core-id order.
    pub fn specs(&self) -> &[CoreSpec] {
        &self.specs
    }

    /// The item scheduler this topology runs.
    pub const fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Per-bank byte widths.
    pub fn bank_bytes(&self) -> &[usize] {
        &self.bank_bytes
    }

    /// Number of L2 banks.
    pub fn banks(&self) -> usize {
        self.bank_bytes.len()
    }

    /// The bank core `c` arbitrates in.
    pub fn bank_of(&self, core: usize) -> usize {
        self.specs[core].bank
    }

    /// Whether core `c` can run whole items.
    pub fn item_capable(&self, core: usize) -> bool {
        self.specs[core].role == CoreRole::Reconfigurable
    }

    /// Whether core `c` can hold a BNN segment (deep engine placement).
    pub fn bnn_capable(&self, core: usize) -> bool {
        matches!(self.specs[core].role, CoreRole::Reconfigurable | CoreRole::BnnOnly)
    }

    /// Item-capable core ids in ascending order.
    pub fn item_cores(&self) -> Vec<usize> {
        (0..self.cores()).filter(|&c| self.item_capable(c)).collect()
    }

    /// BNN-capable core ids in ascending order (deep segment slots).
    pub fn bnn_cores(&self) -> Vec<usize> {
        (0..self.cores()).filter(|&c| self.bnn_capable(c)).collect()
    }

    /// `true` iff this topology is exactly [`Topology::homogeneous`] of
    /// its core count — the byte-identity fast path.
    pub fn is_homogeneous(&self) -> bool {
        self == &Topology::homogeneous(self.cores())
    }

    /// The effective per-core voltages under a scenario-level
    /// `scenario_volts` (energy post-processing input).
    pub fn core_volts(&self, scenario_volts: f64) -> Vec<f64> {
        self.specs.iter().map(|s| s.volts(scenario_volts)).collect()
    }

    /// A one-line human tag: `4R`, `R+3R@0.7V`, `2R+2B`, …
    pub fn label(&self) -> String {
        let tags = self.specs.iter().map(|spec| {
            let mut tag = match spec.role {
                CoreRole::Reconfigurable => "R".to_string(),
                CoreRole::CpuOnly => "C".to_string(),
                CoreRole::BnnOnly => "B".to_string(),
            };
            if let Some(v) = spec.operating_point {
                tag.push_str(&format!("@{v}V"));
            }
            tag
        });
        // Fold runs of identical tags into `<count><tag>`.
        let mut folded: Vec<(String, usize)> = Vec::new();
        for tag in tags {
            match folded.last_mut() {
                Some((t, n)) if *t == tag => *n += 1,
                _ => folded.push((tag, 1)),
            }
        }
        folded
            .into_iter()
            .map(|(t, n)| if n == 1 { t } else { format!("{n}{t}") })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Builds the dispatch plan for `usecase` under this topology's
    /// scheduler. Shared by all four engines — the single source of
    /// placement truth.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no item-capable core (an item
    /// workload cannot run on a fleet of fixed-function cores).
    pub fn plan(&self, usecase: &UseCase, soc: &SocConfig) -> Vec<usize> {
        let costs = item_costs(usecase, soc);
        match self.scheduler {
            SchedulerKind::Static => Static.plan(self, &costs),
            SchedulerKind::WorkStealing => WorkStealing.plan(self, &costs),
        }
    }
}

/// Deterministic per-item cost estimate (cycles) the schedulers plan
/// from: DMA staging of the item bytes plus the CPU-phase spin budget
/// plus a flat BNN-phase constant. The estimate only has to rank items
/// and accumulate consistently — engines never see it.
pub fn item_costs(usecase: &UseCase, soc: &SocConfig) -> Vec<u64> {
    usecase
        .items()
        .iter()
        .map(|item| {
            let bytes = item.staged.len() as u64;
            let rate = u64::from(soc.dma_bytes_per_cycle.max(1));
            soc.dma_setup_cycles + bytes.div_ceil(rate) + usecase.spin_cycles() + 64
        })
        .collect()
}

/// A deterministic item-placement policy: topology + per-item costs in,
/// one core id per item out. Engines execute the plan verbatim.
pub trait ItemScheduler {
    /// Stable short name (bench/artifact tag).
    fn name(&self) -> &'static str;

    /// The dispatch plan: `plan[i]` is the core item `i` runs on.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no item-capable core.
    fn plan(&self, topo: &Topology, costs: &[u64]) -> Vec<usize>;
}

/// Round-robin over item-capable cores in id order — the pinned
/// historical dispatch (`item i → core i % N` on homogeneous fleets).
#[derive(Debug, Clone, Copy, Default)]
pub struct Static;

impl ItemScheduler for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn plan(&self, topo: &Topology, costs: &[u64]) -> Vec<usize> {
        let eligible = topo.item_cores();
        assert!(!eligible.is_empty(), "item workload needs a reconfigurable core");
        (0..costs.len()).map(|i| eligible[i % eligible.len()]).collect()
    }
}

/// Deterministic work stealing: each item is "stolen" by the
/// item-capable core that has been idle longest (lowest accumulated
/// speed-weighted load), ties broken by the lowest core id. A core at a
/// reduced DVFS point accumulates load faster — its cycles cost more
/// wall time — so items drift toward fast cores on voltage-asymmetric
/// fleets.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkStealing;

impl ItemScheduler for WorkStealing {
    fn name(&self) -> &'static str {
        "work_stealing"
    }

    fn plan(&self, topo: &Topology, costs: &[u64]) -> Vec<usize> {
        let eligible = topo.item_cores();
        assert!(!eligible.is_empty(), "item workload needs a reconfigurable core");
        let dvfs = Dvfs::default();
        let nominal = dvfs.freq_hz(1.0, ncpu_power::CoreKind::NcpuCpuMode);
        // Integer load weights (permille of nominal period) keep the
        // accumulation exactly reproducible across hosts.
        let weight: Vec<u64> = eligible
            .iter()
            .map(|&c| {
                let v = topo.spec(c).volts(1.0);
                let f = dvfs.freq_hz(v, ncpu_power::CoreKind::NcpuCpuMode);
                ((nominal / f) * 1000.0).round() as u64
            })
            .collect();
        let mut load = vec![0u64; eligible.len()];
        costs
            .iter()
            .map(|&cost| {
                let slot = (0..eligible.len())
                    .min_by_key(|&s| (load[s], eligible[s]))
                    .expect("eligible is non-empty");
                load[slot] += cost * weight[slot] / 1000;
                eligible[slot]
            })
            .collect()
    }
}

/// Queue depth behind item `i` under `plan`: how many later items are
/// bound for the same core. Reduces to the historical
/// `(items - 1 - i) / cores` under the homogeneous static plan.
pub fn depth_behind(plan: &[usize], i: usize) -> usize {
    plan[i + 1..].iter().filter(|&&c| c == plan[i]).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecase::pseudo_model;

    fn mixed(cores: usize) -> Topology {
        let mut specs = vec![CoreSpec::reconfigurable(); cores];
        specs[cores - 1].role = CoreRole::BnnOnly;
        Topology::from_specs(specs, vec![crate::fabric::L2_BYTES], SchedulerKind::Static)
            .expect("valid mixed topology")
    }

    #[test]
    fn homogeneous_static_plan_is_round_robin() {
        let uc = UseCase::parametric(0.5, 7, pseudo_model(64, 10, 10));
        let soc = SocConfig::default();
        for cores in [1usize, 2, 3, 4] {
            let topo = Topology::homogeneous(cores);
            assert!(topo.is_homogeneous());
            let plan = topo.plan(&uc, &soc);
            let expect: Vec<usize> = (0..7).map(|i| i % cores).collect();
            assert_eq!(plan, expect, "{cores} cores");
            for i in 0..7 {
                assert_eq!(depth_behind(&plan, i), (7 - 1 - i) / cores, "depth item {i}");
            }
        }
    }

    #[test]
    fn work_stealing_coincides_with_static_on_uniform_fleets() {
        let uc = UseCase::parametric(0.5, 9, pseudo_model(64, 10, 10));
        let soc = SocConfig::default();
        let topo = Topology::homogeneous(4);
        let costs = item_costs(&uc, &soc);
        assert_eq!(Static.plan(&topo, &costs), WorkStealing.plan(&topo, &costs));
    }

    #[test]
    fn work_stealing_shifts_items_toward_fast_cores() {
        let mut specs = vec![CoreSpec::reconfigurable(); 4];
        for s in specs.iter_mut().skip(1) {
            s.operating_point = Some(0.6); // three slow littles
        }
        let topo =
            Topology::from_specs(specs, vec![crate::fabric::L2_BYTES], SchedulerKind::Static)
                .unwrap();
        let costs = vec![1000u64; 16];
        let plan = WorkStealing.plan(&topo, &costs);
        let on_big = plan.iter().filter(|&&c| c == 0).count();
        assert!(
            on_big > 4,
            "the nominal-voltage core must absorb more than its round-robin share, got {on_big}"
        );
        // Static ignores the voltage asymmetry entirely.
        assert_eq!(Static.plan(&topo, &costs), (0..16).map(|i| i % 4).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_roles_exclude_fixed_function_cores_from_item_plans() {
        let topo = mixed(4);
        assert_eq!(topo.item_cores(), vec![0, 1, 2]);
        assert_eq!(topo.bnn_cores(), vec![0, 1, 2, 3]);
        let costs = vec![10u64; 6];
        let plan = Static.plan(&topo, &costs);
        assert_eq!(plan, vec![0, 1, 2, 0, 1, 2]);
        assert!(!topo.is_homogeneous());
    }

    #[test]
    fn validation_rejects_structural_nonsense() {
        assert!(Topology::from_specs(vec![], vec![1024], SchedulerKind::Static).is_err());
        assert!(Topology::from_specs(
            vec![CoreSpec::reconfigurable()],
            vec![],
            SchedulerKind::Static
        )
        .is_err());
        assert!(Topology::from_specs(
            vec![CoreSpec { bank: 3, ..CoreSpec::reconfigurable() }],
            vec![1024, 1024],
            SchedulerKind::Static
        )
        .is_err());
        assert!(Topology::from_specs(
            vec![CoreSpec { operating_point: Some(0.2), ..CoreSpec::reconfigurable() }],
            vec![1024],
            SchedulerKind::Static
        )
        .is_err());
        assert!(Topology::from_specs(
            vec![CoreSpec::reconfigurable()],
            vec![crate::fabric::L2_BYTES + 1],
            SchedulerKind::Static
        )
        .is_err());
        let all_bnn = vec![CoreSpec { role: CoreRole::BnnOnly, ..CoreSpec::reconfigurable() }];
        let topo =
            Topology::from_specs(all_bnn, vec![1024], SchedulerKind::Static).expect("structural");
        assert!(topo.item_cores().is_empty(), "feasibility is the engine's call");
    }

    #[test]
    fn labels_fold_runs() {
        assert_eq!(Topology::homogeneous(4).label(), "4R");
        assert_eq!(mixed(3).label(), "2R+B");
        let mut specs = vec![CoreSpec::reconfigurable(); 2];
        specs[1].operating_point = Some(0.7);
        let t = Topology::from_specs(specs, vec![1024], SchedulerKind::Static).unwrap();
        assert_eq!(t.label(), "R+R@0.7V");
    }

    #[test]
    fn memo_key_separates_specs() {
        let base = CoreSpec::reconfigurable();
        let banked = CoreSpec { bank: 1, ..base };
        let slow = CoreSpec { operating_point: Some(0.8), ..base };
        let bnn = CoreSpec { role: CoreRole::BnnOnly, ..base };
        let keys = [base.memo_key(), banked.memo_key(), slow.memo_key(), bnn.memo_key()];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Unset and explicit-nominal voltage resolve identically.
        let nominal = CoreSpec { operating_point: Some(1.0), ..base };
        assert_eq!(base.memo_key(), nominal.memo_key());
    }
}
