//! Lock-step co-simulation of the N-core SoC.
//!
//! The scheduler in [`crate::run`] simulates cores one item at a time with
//! analytic fabric costs — fast, but it cannot see cycle-level interactions
//! between the cores. This module steps every core one cycle at a time on
//! a single global clock and arbitrates the shared L2 port for real:
//!
//! * each core advances via [`NcpuCore::step_one`],
//! * when several cores touch the L2 in the same cycle, the lowest-
//!   numbered one wins the port and every other toucher replays the cycle
//!   (single-ported L2 + fixed priority),
//! * item staging pays the same DMA cost as the analytic scheduler, via
//!   the shared [`crate::fabric`].
//!
//! The `lockstep_agrees_with_analytic_scheduler` matrix is the point: for
//! the paper's workloads (local data, one result word written through per
//! item), contention is negligible and the analytic model is sound — at
//! any core count.

use ncpu_core::{BankPorts, NcpuCore, SharedL2, StepOutcome};
use ncpu_fault::FaultPlan;
use ncpu_obs::{EventKind, Recorder, StallCause, TraceLevel};

use crate::fabric;
use crate::report::RunReport;
use crate::system::SocConfig;
use crate::topology::Topology;
use crate::usecase::UseCase;

/// Result of a lock-step run, plus contention statistics.
#[derive(Debug, Clone)]
pub struct LockstepReport {
    /// The standard run report (per-core utilization, predictions…).
    pub report: RunReport,
    /// Cycles a core had to replay because the L2 port was taken.
    pub l2_conflict_cycles: u64,
}

/// Runs `usecase` on `cores` lock-stepped NCPU cores.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_lockstep(usecase: &UseCase, cores: usize, soc: &SocConfig) -> LockstepReport {
    run_ncpu_lockstep_traced(usecase, cores, soc, TraceLevel::Counters).0
}

/// Like [`run_ncpu_lockstep`], but also returns the root [`Recorder`].
/// On top of the per-core events, the lock-step arbiter emits a
/// `stall.l2_conflict` instant (at [`TraceLevel::Full`]) every time a
/// core replays a cycle because the L2 port was taken, and sets the
/// `soc.l2_conflict_cycles` counter.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_lockstep_traced(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
) -> (LockstepReport, Recorder) {
    run_ncpu_lockstep_faulted(usecase, cores, soc, level, &FaultPlan::none(), 1000)
}

/// Like [`run_ncpu_lockstep_traced`], but with a [`FaultPlan`] bound to
/// an operating point (`millivolts` scales the SRAM soft-error rate).
///
/// An inert plan ([`FaultPlan::none`]) takes the exact pre-fault code
/// path — byte-identical reports, counters and traces. An active plan
/// resolves every dispatch through `fabric::resolve_dispatch` (parity
/// detection at DMA delivery, retry with backoff, drop, quarantine with
/// re-scheduling) and arms a mid-item watchdog that aborts and resets a
/// core whose item overruns the plan's cycle budget.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_lockstep_faulted(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (LockstepReport, Recorder) {
    run_ncpu_lockstep_topo(usecase, &Topology::homogeneous(cores), soc, level, plan, millivolts)
}

/// Like [`run_ncpu_lockstep_faulted`], but co-simulating an explicit
/// [`Topology`]: items follow the topology's scheduler plan, only
/// reconfigurable cores receive them, and L2 arbitration is per bank —
/// cores in different banks never conflict. `Topology::homogeneous(n)`
/// (one full-width bank, static plan) reproduces
/// [`run_ncpu_lockstep_faulted`] byte-for-byte.
///
/// # Panics
///
/// Panics like [`run_ncpu_lockstep_faulted`], or if an item workload is
/// given a topology with no reconfigurable core.
pub fn run_ncpu_lockstep_topo(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (LockstepReport, Recorder) {
    let cores = topo.cores();
    assert!(cores >= 1, "need at least one core");
    let mut rec = Recorder::new(level.at_least_counters());
    let l2 = SharedL2::new(fabric::L2_BYTES);
    let mut ctl = plan
        .is_active()
        .then(|| fabric::FaultCtl::new(plan, millivolts, usecase.items().len(), topo));

    struct CoreState {
        core: NcpuCore,
        program: Vec<u32>,
        /// Items assigned to this core: `(item index, available_from)` —
        /// initial round-robin items are available from cycle 0; items
        /// re-scheduled off a quarantined core from the cycle after the
        /// quarantine decision.
        queue: Vec<(usize, u64)>,
        /// Position within `queue`.
        at: usize,
        /// Global cycle before which the core does nothing (DMA staging
        /// delivery, fault backoff, or a drop/quarantine decision point).
        wake_at: u64,
        /// An item is staged and waiting for `wake_at` to begin executing.
        pending_exec: bool,
        /// The next dispatch re-attempts the current item after a
        /// watchdog abort: keep the latency anchor and retry budget.
        redispatch: bool,
        /// Whether an item is currently executing.
        active: bool,
        /// Global cycle the scheduler first attempted the current item
        /// (before any DMA staging stall) — the latency clock start.
        dispatch: u64,
        /// Items waiting behind the current one on this core, captured
        /// at dispatch: a quarantined peer can re-schedule work onto
        /// this queue mid-item, and the two simulating engines observe
        /// that push at different walk points, so completion-time depth
        /// would diverge.
        depth: u64,
        /// Global cycle the current/last item started.
        item_start: u64,
        /// Core-internal cycle count when the current item started.
        internal_start: u64,
        busy: u64,
        finished_at: u64,
        predictions: Vec<(usize, usize)>,
    }

    let mut dma = fabric::new_dma(soc, level);
    let dispatch_plan = topo.plan(usecase, soc);
    let mut states: Vec<CoreState> = (0..cores)
        .map(|c| {
            let core = fabric::ncpu_core(usecase, soc, level, l2.clone());
            let program = fabric::ncpu_program(usecase, &core, fabric::result_addr(c));
            CoreState {
                core,
                program,
                queue: (0..usecase.items().len())
                    .filter(|&i| dispatch_plan[i] == c)
                    .map(|i| (i, 0))
                    .collect(),
                at: 0,
                wake_at: 0,
                pending_exec: false,
                redispatch: false,
                active: false,
                dispatch: 0,
                depth: 0,
                item_start: 0,
                internal_start: 0,
                busy: 0,
                finished_at: 0,
                predictions: Vec::new(),
            }
        })
        .collect();

    let watchdog = ctl.as_ref().map_or(0, |ctl| ctl.watchdog());
    let mut clock = 0u64;
    let mut l2_conflicts = 0u64;
    let mut ports = BankPorts::new(topo.banks());
    let budget = 2_000_000_000u64;
    loop {
        // Idle-region fast-forward: when every unfinished core is either
        // waiting out a DMA staging stall or counting down a BNN busy
        // region, no core can touch the L2 port and no event is emitted
        // until the earliest of those regions ends — busy cycles are pure
        // countdown and stalled cores do not step at all. Each active
        // core reports that distance via `NcpuCore::next_event_in` (the
        // same contract the event-driven engine schedules by), capped at
        // its watchdog deadline when one is armed; jumping the global
        // clock there in one step is byte-identical to the cycle-by-cycle
        // loop, only faster.
        let mut skip = u64::MAX;
        let mut idle_bound = false;
        for st in &states {
            let distance = if st.active {
                let mut d = st.core.next_event_in().expect("an active core is not halted");
                if watchdog > 0 {
                    d = d.min((st.item_start + watchdog).saturating_sub(clock));
                }
                d
            } else {
                if st.at >= st.queue.len() {
                    continue; // parked for good: no bound
                }
                let (_, avail) = st.queue[st.at];
                st.wake_at.max(avail).saturating_sub(clock)
            };
            idle_bound = true;
            skip = skip.min(distance);
            if skip <= 1 {
                break; // some core acts this or next cycle: nothing to gain
            }
        }
        if idle_bound && skip > 1 {
            for st in states.iter_mut() {
                if st.active {
                    st.core.step_n(skip).expect("busy countdown cannot fault");
                    st.busy += skip;
                }
            }
            clock += skip;
            assert!(clock < budget, "lock-step run exceeded {budget} cycles");
            continue;
        }

        let mut all_done = true;
        ports.reset();
        for c in 0..cores {
            // Start the next item if idle. The inner loop exists for the
            // fault layer: a drop decided at this very cycle lets the
            // *next* queued item dispatch in the same walk slot, matching
            // the event engine's same-cycle re-arm.
            if !states[c].active {
                loop {
                    let st = &mut states[c];
                    if st.at >= st.queue.len() {
                        break;
                    }
                    all_done = false;
                    if clock < st.wake_at {
                        break;
                    }
                    if st.pending_exec {
                        st.core.load_program(st.program.clone());
                        st.active = true;
                        st.item_start = clock;
                        st.internal_start = st.core.total_cycles();
                        st.pending_exec = false;
                        break;
                    }
                    let (idx, avail) = st.queue[st.at];
                    if clock < avail {
                        break;
                    }
                    let fresh = !st.redispatch;
                    st.redispatch = false;
                    if fresh {
                        st.dispatch = clock;
                        st.depth = (st.queue.len() - st.at - 1) as u64;
                    }
                    let staged = &usecase.items()[idx].staged;
                    match fabric::resolve_dispatch(
                        ctl.as_mut(),
                        c,
                        idx,
                        staged,
                        clock,
                        fresh,
                        &mut st.core,
                        &mut dma,
                        &mut rec,
                        None,
                    ) {
                        fabric::Resolution::Run { exec_start } => {
                            if exec_start > clock {
                                st.pending_exec = true;
                                st.wake_at = exec_start;
                            } else {
                                st.core.load_program(st.program.clone());
                                st.active = true;
                                st.item_start = clock;
                                st.internal_start = st.core.total_cycles();
                            }
                            break;
                        }
                        fabric::Resolution::Dropped { at } => {
                            st.predictions.push((idx, fabric::DROPPED_PREDICTION));
                            st.finished_at = st.finished_at.max(at);
                            st.at += 1;
                            st.wake_at = at;
                            if let Some(ctl) = &ctl {
                                rec.metric("item.retries", ctl.item_retries(idx));
                            }
                            // No break: if `at == clock`, the next item
                            // dispatches in this same slot.
                        }
                        fabric::Resolution::Quarantined { at } => {
                            let moved: Vec<usize> =
                                st.queue.split_off(st.at).into_iter().map(|(i, _)| i).collect();
                            st.finished_at = st.finished_at.max(at);
                            let ctl = ctl.as_mut().expect("quarantine requires fault control");
                            let mut defer = None;
                            let homes =
                                fabric::reassign_items(ctl, c, &moved, at, &mut rec, &mut defer);
                            for (item, target) in homes {
                                match target {
                                    Some(t) => {
                                        all_done = false;
                                        states[t].queue.push((item, at + 1));
                                    }
                                    None => states[c]
                                        .predictions
                                        .push((item, fabric::DROPPED_PREDICTION)),
                                }
                            }
                            break;
                        }
                    }
                }
                if !states[c].active {
                    continue;
                }
            }
            all_done = false;
            let st = &mut states[c];

            // Mid-item watchdog: an item that overruns the budget is
            // aborted and its core reset — the partial execution's trace
            // shard and counters are discarded with the rebuilt core
            // (busy cycles already burned stay counted).
            if watchdog > 0 && clock.saturating_sub(st.item_start) >= watchdog {
                let ctl = ctl.as_mut().expect("watchdog requires fault control");
                let decision = fabric::watchdog_abort(ctl, c, st.item_start, clock, &mut rec);
                st.core = fabric::ncpu_core(usecase, soc, level, l2.clone());
                st.active = false;
                st.pending_exec = false;
                match decision {
                    fabric::Decision::RetryAt(resume) => {
                        st.redispatch = true;
                        st.wake_at = resume;
                    }
                    fabric::Decision::Drop(at) => {
                        let (idx, _) = st.queue[st.at];
                        st.predictions.push((idx, fabric::DROPPED_PREDICTION));
                        st.finished_at = st.finished_at.max(at);
                        st.at += 1;
                        st.wake_at = at;
                        rec.metric("item.retries", ctl.item_retries(idx));
                    }
                    fabric::Decision::Quarantine(at) => {
                        let moved: Vec<usize> =
                            st.queue.split_off(st.at).into_iter().map(|(i, _)| i).collect();
                        st.finished_at = st.finished_at.max(at);
                        let mut defer = None;
                        let homes =
                            fabric::reassign_items(ctl, c, &moved, at, &mut rec, &mut defer);
                        for (item, target) in homes {
                            match target {
                                Some(t) => states[t].queue.push((item, at + 1)),
                                None => states[c]
                                    .predictions
                                    .push((item, fabric::DROPPED_PREDICTION)),
                            }
                        }
                    }
                }
                continue;
            }

            // Arbitrate the core's L2 bank port: observe access deltas.
            let (r0, w0) = st.core.pipeline().mem().l2().accesses();
            let outcome = st.core.step_one().expect("lock-step program must not fault");
            let (r1, w1) = st.core.pipeline().mem().l2().accesses();
            let touched_l2 = r1 + w1 > r0 + w0;
            if touched_l2 && !ports.claim(topo.bank_of(c)) {
                // Bank port busy: this core replays the cycle
                // (approximated as one extra global cycle of stall).
                l2_conflicts += 1;
                if rec.wants_events() {
                    rec.emit(
                        c as u16,
                        clock,
                        EventKind::Stall { cause: StallCause::L2Conflict },
                    );
                }
            }
            st.busy += 1;

            if matches!(outcome, StepOutcome::Halted) {
                // Item finished: drain its events re-based to global time.
                let offset = st.item_start as i64 - st.internal_start as i64;
                rec.absorb(st.core.obs_mut(), c as u16, offset);
                let (idx, _) = st.queue[st.at];
                // The executing core's own mailbox: its program targets
                // `result_addr(c)`, wherever the item was planned or
                // re-scheduled to. (Equal to the historical
                // `result_addr(idx % cores)` under the static plan.)
                let addr = fabric::result_addr(c);
                st.predictions
                    .push((idx, l2.read_word(addr).expect("result written") as usize));
                st.finished_at = clock + 1;
                fabric::record_item_metrics(
                    &mut rec,
                    st.finished_at - st.dispatch,
                    st.finished_at - st.item_start,
                    st.depth,
                );
                if let Some(ctl) = &ctl {
                    rec.metric("item.retries", ctl.item_retries(idx));
                }
                st.at += 1;
                st.active = false;
                st.wake_at = 0;
            }
        }
        if all_done {
            break;
        }
        clock += 1;
        assert!(clock < budget, "lock-step run exceeded {budget} cycles");
    }

    let makespan = states.iter().map(|s| s.finished_at).max().unwrap_or(0);
    let mut predictions = vec![0usize; usecase.items().len()];
    let mut pool = Vec::with_capacity(cores);
    let mut busy = Vec::with_capacity(cores);
    for st in states {
        for (idx, pred) in &st.predictions {
            predictions[*idx] = *pred;
        }
        pool.push(st.core);
        busy.push(st.busy);
    }
    rec.set_counter("soc.l2_conflict_cycles", l2_conflicts);
    if let Some(ctl) = &ctl {
        ctl.write_counters(&mut rec);
    }
    let report = fabric::assemble_ncpu_report(
        &mut rec,
        &mut dma,
        &pool,
        &busy,
        usecase,
        topo,
        fabric::RunOutcome {
            config: format!("{cores}x ncpu (lockstep)"),
            makespan,
            predictions,
        },
    );
    (LockstepReport { report, l2_conflict_cycles: l2_conflicts }, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Analytic, Engine, Lockstep, Scenario};
    use crate::system::SystemConfig;
    use crate::usecase::UseCase;
    use ncpu_core::SwitchPolicy;

    fn parametric(batch: usize) -> UseCase {
        UseCase::parametric(0.6, batch, crate::system::tests::pseudo_model(784, 30, 10))
    }

    /// The whole point of this module: the fast analytic scheduler and the
    /// cycle-stepped co-simulation agree (small DMA-granularity slack) —
    /// across switch policies, core counts, and real workload kinds,
    /// driven through the `Engine` trait.
    #[test]
    fn lockstep_agrees_with_analytic_scheduler() {
        let usecases = [UseCase::image(4, 2, 1), UseCase::motion(4, 4, 2)];
        for uc in &usecases {
            for policy in [SwitchPolicy::ZeroLatency, SwitchPolicy::Naive] {
                for cores in [1usize, 2, 4] {
                    let soc = SocConfig { switch_policy: policy, ..SocConfig::default() };
                    let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores })
                        .with_soc(soc);
                    let (analytic, _) = Analytic.run(&scenario);
                    let (lockstep, _) = Lockstep.run(&scenario);
                    let tag = format!("{} {policy:?} {cores} cores", uc.name());
                    assert_eq!(
                        lockstep.predictions, analytic.predictions,
                        "{tag}: same answers"
                    );
                    let a = analytic.makespan as f64;
                    let l = lockstep.makespan as f64;
                    assert!(
                        (l - a).abs() / a < 0.02,
                        "{tag}: lockstep {l} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn contention_is_negligible_for_local_data_workloads() {
        let uc = parametric(6);
        let lockstep = run_ncpu_lockstep(&uc, 2, &SocConfig::default());
        // One result word per item is the only shared-L2 traffic.
        assert!(
            lockstep.l2_conflict_cycles < 20,
            "conflicts {}",
            lockstep.l2_conflict_cycles
        );
    }

    #[test]
    fn four_way_arbitration_completes_and_agrees() {
        let uc = parametric(8);
        let soc = SocConfig::default();
        let lockstep = run_ncpu_lockstep(&uc, 4, &soc);
        let analytic =
            crate::system::run(&uc, SystemConfig::Ncpu { cores: 4 }, &soc);
        assert_eq!(lockstep.report.predictions, analytic.predictions);
        assert_eq!(lockstep.report.cores.len(), 4);
        for core in &lockstep.report.cores {
            assert!(core.busy_cycles > 0, "{} never ran", core.role);
        }
    }
}
