//! Run reports: makespan, utilization, timelines, classification results.

use ncpu_obs::{CoreArtifact, MetricsReport, Recorder, RunArtifact};
use ncpu_sim::stats::Timeline;

/// Per-core outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Human-readable role, e.g. `"cpu"`, `"bnn-accel"`, `"ncpu0"`.
    pub role: String,
    /// Busy/mode spans in global cycles (`"cpu"`, `"bnn"`, `"switch"`,
    /// `"idle"` gaps are implicit).
    pub timeline: Timeline,
    /// Cycles the core was doing work.
    pub busy_cycles: u64,
}

impl CoreReport {
    /// Utilization over the run's makespan.
    pub fn utilization(&self, makespan: u64) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / makespan as f64
        }
    }
}

/// Outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label, e.g. `"heterogeneous"`, `"2x ncpu"`.
    pub config: String,
    /// End-to-end latency in cycles (last result written).
    pub makespan: u64,
    /// Per-core reports.
    pub cores: Vec<CoreReport>,
    /// Predicted class per item, in item order.
    pub predictions: Vec<usize>,
    /// Ground-truth label per item.
    pub labels: Vec<usize>,
    /// Cycle-domain histograms recorded over the run: per-item
    /// `item.latency_cycles` / `item.service_cycles` /
    /// `item.queue_depth` and per-core `core.util_permille`.
    pub metrics: MetricsReport,
}

impl RunReport {
    /// Classification accuracy over the batch.
    pub fn accuracy(&self) -> f64 {
        if self.predictions.is_empty() {
            return 0.0;
        }
        let ok = self
            .predictions
            .iter()
            .zip(&self.labels)
            .filter(|(p, l)| p == l)
            .count();
        ok as f64 / self.predictions.len() as f64
    }

    /// End-to-end latency improvement of `self` over `baseline`
    /// (positive = faster, e.g. 0.43 for the paper's 43%).
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        1.0 - self.makespan as f64 / baseline.makespan as f64
    }

    /// `(tid, name)` pairs for the Chrome trace: one lane per core in
    /// report order, plus the DMA lane one past the last core.
    pub fn thread_names(&self) -> Vec<(u16, String)> {
        let mut names: Vec<(u16, String)> = self
            .cores
            .iter()
            .enumerate()
            .map(|(c, core)| (c as u16, core.role.clone()))
            .collect();
        names.push((self.cores.len() as u16, "dma".to_string()));
        names
    }

    /// Flattens this report plus the run's counters into the stable
    /// `RUN_<name>.json` artifact shape.
    pub fn artifact(&self, name: &str, rec: &Recorder) -> RunArtifact {
        RunArtifact {
            name: name.to_string(),
            config: self.config.clone(),
            makespan: self.makespan,
            accuracy: self.accuracy(),
            cores: self
                .cores
                .iter()
                .map(|core| CoreArtifact {
                    role: core.role.clone(),
                    busy_cycles: core.busy_cycles,
                    utilization: core.utilization(self.makespan),
                    spans: core
                        .timeline
                        .spans()
                        .iter()
                        .map(|s| (s.label.clone(), s.start, s.end))
                        .collect(),
                })
                .collect(),
            counters: rec.counters().clone(),
            metrics: self.metrics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_improvement() {
        let mk = |makespan| RunReport {
            config: "x".into(),
            makespan,
            cores: vec![],
            predictions: vec![1, 2, 3],
            labels: vec![1, 2, 0],
            metrics: MetricsReport::new(),
        };
        let a = mk(100);
        let b = mk(57);
        assert!((a.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((b.improvement_over(&a) - 0.43).abs() < 1e-12);
    }

    #[test]
    fn utilization_handles_zero_makespan() {
        let c = CoreReport { role: "cpu".into(), timeline: Timeline::new(), busy_cycles: 0 };
        assert_eq!(c.utilization(0), 0.0);
        assert_eq!(c.utilization(10), 0.0);
    }
}
