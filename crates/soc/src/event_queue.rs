//! A deterministic binary-heap event queue for the event-driven engine.
//!
//! Each actor (one per NCPU core) keeps at most one armed wakeup. The
//! queue orders wakeups by `(cycle, actor)`, so same-cycle events always
//! pop in ascending actor order — exactly the per-cycle core-index walk
//! of the lock-step engine, which is what makes the two engines emit
//! byte-identical event streams (DMA bookings and L2 arbitration both
//! resolve in that order).
//!
//! Re-arming an actor cancels its previous wakeup lazily: the stale heap
//! entry stays behind with an outdated generation number and is skipped
//! on pop. This keeps `arm` O(log n) without a decrease-key heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic wakeup queue keyed by `(cycle, actor)`.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    /// Min-heap of `(cycle, actor, generation)`. The generation breaks no
    /// ties (an actor has one live entry); it only marks stale entries.
    heap: BinaryHeap<Reverse<(u64, u16, u64)>>,
    /// Per-actor live wakeup: `(cycle, generation)` or `None`.
    armed: Vec<Option<(u64, u64)>>,
    next_gen: u64,
    live: usize,
}

impl EventQueue {
    /// Creates a queue for `actors` actors, none armed.
    pub fn new(actors: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            armed: vec![None; actors],
            next_gen: 0,
            live: 0,
        }
    }

    /// Arms (or re-arms) `actor` to wake at `cycle`. A previously armed
    /// wakeup for the same actor is cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn arm(&mut self, actor: u16, cycle: u64) {
        let slot = &mut self.armed[actor as usize];
        if slot.is_none() {
            self.live += 1;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        *slot = Some((cycle, gen));
        self.heap.push(Reverse((cycle, actor, gen)));
    }

    /// Cancels `actor`'s armed wakeup, if any. The heap entry is dropped
    /// lazily on a later pop.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn cancel(&mut self, actor: u16) {
        if self.armed[actor as usize].take().is_some() {
            self.live -= 1;
        }
    }

    /// The earliest armed `(cycle, actor)` without popping it.
    pub fn peek(&mut self) -> Option<(u64, u16)> {
        self.drop_stale();
        self.heap.peek().map(|Reverse((cycle, actor, _))| (*cycle, *actor))
    }

    /// Pops the earliest armed wakeup; ties pop in ascending actor order.
    pub fn pop(&mut self) -> Option<(u64, u16)> {
        self.drop_stale();
        let Reverse((cycle, actor, _)) = self.heap.pop()?;
        self.armed[actor as usize] = None;
        self.live -= 1;
        Some((cycle, actor))
    }

    /// Whether any actor is armed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of armed actors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Discards heap entries whose generation no longer matches the
    /// actor's live wakeup (cancelled or re-armed).
    fn drop_stale(&mut self) {
        while let Some(Reverse((cycle, actor, gen))) = self.heap.peek() {
            match self.armed[*actor as usize] {
                Some((live_cycle, live_gen)) if live_gen == *gen => {
                    debug_assert_eq!(live_cycle, *cycle);
                    return;
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same-cycle wakeups pop in ascending actor order, regardless of
    /// arming order — the determinism the differential suite relies on.
    #[test]
    fn same_cycle_pops_in_actor_order() {
        let mut q = EventQueue::new(4);
        q.arm(3, 10);
        q.arm(0, 10);
        q.arm(2, 10);
        q.arm(1, 10);
        let order: Vec<(u64, u16)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (10, 2), (10, 3)]);
        assert!(q.is_empty());
    }

    /// Cycles dominate actors: an earlier wakeup on a higher actor pops
    /// before a later wakeup on a lower actor.
    #[test]
    fn earlier_cycle_wins_over_lower_actor() {
        let mut q = EventQueue::new(2);
        q.arm(0, 20);
        q.arm(1, 5);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((20, 0)));
        assert_eq!(q.pop(), None);
    }

    /// Re-arming replaces the previous wakeup: the stale entry never
    /// surfaces, even when it would pop earlier.
    #[test]
    fn rearm_cancels_previous_wakeup() {
        let mut q = EventQueue::new(2);
        q.arm(0, 5);
        q.arm(0, 15); // moved later: the 5-cycle entry is stale
        q.arm(1, 10);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((15, 0)));
        assert!(q.is_empty());

        q.arm(0, 30);
        q.arm(0, 7); // moved earlier: only the 7 survives
        assert_eq!(q.peek(), Some((7, 0)));
        assert_eq!(q.pop(), Some((7, 0)));
        assert_eq!(q.pop(), None);
    }

    /// Cancelling removes the wakeup; a later re-arm starts fresh.
    #[test]
    fn cancel_then_rearm() {
        let mut q = EventQueue::new(3);
        q.arm(1, 4);
        q.arm(2, 6);
        q.cancel(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek(), Some((6, 2)));
        q.arm(1, 5);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((6, 2)));
        assert!(q.is_empty());
        // Cancelling an unarmed actor is a no-op.
        q.cancel(0);
        assert!(q.is_empty());
    }

    /// Popping consumes the wakeup: the actor must be re-armed to fire
    /// again (one-shot semantics).
    #[test]
    fn pop_is_one_shot() {
        let mut q = EventQueue::new(1);
        q.arm(0, 1);
        assert_eq!(q.pop(), Some((1, 0)));
        assert_eq!(q.pop(), None);
        q.arm(0, 2);
        assert_eq!(q.pop(), Some((2, 0)));
    }

    /// Cancelling a wakeup whose generation already fired is a no-op:
    /// the live count must not underflow and a fresh arm still works.
    #[test]
    fn cancel_of_already_fired_generation_is_noop() {
        let mut q = EventQueue::new(2);
        q.arm(0, 5);
        assert_eq!(q.pop(), Some((5, 0)));
        // The generation armed above has fired; this cancel targets
        // nothing.
        q.cancel(0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.arm(0, 9);
        q.arm(1, 8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((8, 1)));
        assert_eq!(q.pop(), Some((9, 0)));
        assert_eq!(q.pop(), None);
    }

    /// Re-arming at the cycle the actor is already armed for (or was
    /// just popped at) bumps the generation without duplicating the
    /// wakeup — exactly one pop surfaces per live arm.
    #[test]
    fn rearm_at_current_cycle_fires_exactly_once() {
        let mut q = EventQueue::new(1);
        q.arm(0, 10);
        q.arm(0, 10); // same cycle: old generation goes stale
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), None);
        // Re-arm at the cycle that just fired: the queue can run
        // multiple dispatches of one actor in the same cycle slot.
        q.arm(0, 10);
        assert_eq!(q.pop(), Some((10, 0)));
        assert!(q.is_empty());
    }

    /// Cancellation inside a same-cycle tie must not disturb the
    /// ascending-actor pop order of the survivors, including an actor
    /// re-armed into the tie after its original entry went stale.
    #[test]
    fn same_cycle_ties_hold_actor_order_under_cancellation() {
        let mut q = EventQueue::new(4);
        for actor in 0..4 {
            q.arm(actor, 10);
        }
        q.cancel(1);
        q.cancel(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((10, 0)));
        // Actor 2 rejoins the cycle-10 tie with a fresh generation; it
        // still pops before actor 3 (actor order, not arm order).
        q.arm(2, 10);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
