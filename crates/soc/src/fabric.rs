//! The shared SoC fabric: everything the run paths have in common.
//!
//! Before the Scenario/Engine refactor the analytic scheduler
//! (`system.rs`), the lock-step co-simulation (`lockstep.rs`) and the
//! deep-network series mode (`deep.rs`) each carried private copies of
//! the result-mailbox layout, program construction, DMA staging, cycle
//! budgets and report assembly. This module is the single owner of all
//! of it, so the three engines cannot drift:
//!
//! * [`result_addr`] — the per-core L2 result mailbox layout,
//! * [`ncpu_program`] / [`hetero_program`] — program construction for
//!   every [`UseCaseKind`],
//! * [`run_item`] — DMA staging plus one program execution under the
//!   shared [`ITEM_BUDGET`],
//! * [`ncpu_pool`] / [`ncpu_core`] — core construction, wired to the
//!   `SocConfig` (shared L2, trace level, naive-switch DMA parameters),
//! * [`assemble_ncpu_report`] — counter snapshots, DMA lane absorption
//!   and [`RunReport`] assembly.

use ncpu_accel::AccelConfig;
use ncpu_core::{NcpuCore, SharedL2, SwitchDma};
use ncpu_isa::asm;
use ncpu_obs::Recorder;
use ncpu_obs::TraceLevel;
use ncpu_sim::stats::Timeline;
use ncpu_sim::DmaEngine;
use ncpu_workloads::{image, motion as motion_prog, Tail};

use crate::report::{CoreReport, RunReport};
use crate::system::SocConfig;
use crate::usecase::{UseCase, UseCaseKind};

/// Cycle budget per item (well above the heaviest program).
pub const ITEM_BUDGET: u64 = 200_000_000;

/// Bytes of the shared L2 every engine attaches its cores to.
pub const L2_BYTES: usize = 256 * 1024;

/// L2 address where core `c` writes its classification results — the
/// one mailbox layout every engine shares.
pub const fn result_addr(core: usize) -> u32 {
    0x40 + core as u32 * 4
}

/// The accelerator configuration the SoC's cores run with.
pub(crate) fn accel_config(soc: &SocConfig) -> AccelConfig {
    AccelConfig { layer_pipelining: soc.layer_pipelining, ..AccelConfig::default() }
}

/// The fabric DMA engine, traced at `Counters` or above so report
/// timelines can always show the DMA lane.
pub(crate) fn new_dma(soc: &SocConfig, level: TraceLevel) -> DmaEngine {
    let mut dma = DmaEngine::new(soc.dma_bytes_per_cycle, soc.dma_setup_cycles);
    dma.set_trace_level(level.at_least_counters());
    dma
}

/// Builds one NCPU core attached to `l2`, wired to the SoC config: obs
/// level set, and the naive-switch reload cost tracking the fabric's
/// DMA parameters (instead of the core's built-in default).
pub(crate) fn ncpu_core(
    uc: &UseCase,
    soc: &SocConfig,
    level: TraceLevel,
    l2: SharedL2,
) -> NcpuCore {
    let mut core = NcpuCore::with_l2(uc.model().clone(), accel_config(soc), soc.switch_policy, l2);
    core.set_obs_level(level);
    core.set_switch_dma(SwitchDma {
        bytes_per_cycle: soc.dma_bytes_per_cycle,
        setup_cycles: soc.dma_setup_cycles,
    });
    core
}

/// Builds the `cores`-way NCPU pool on a fresh shared L2, plus each
/// core's program targeting its [`result_addr`] mailbox.
pub(crate) fn ncpu_pool(
    uc: &UseCase,
    soc: &SocConfig,
    level: TraceLevel,
    cores: usize,
) -> (SharedL2, Vec<NcpuCore>, Vec<Vec<u32>>) {
    assert!(cores >= 1, "need at least one core");
    let l2 = SharedL2::new(L2_BYTES);
    let pool: Vec<NcpuCore> =
        (0..cores).map(|_| ncpu_core(uc, soc, level, l2.clone())).collect();
    let programs: Vec<Vec<u32>> = pool
        .iter()
        .enumerate()
        .map(|(c, core)| ncpu_program(uc, core, result_addr(c)))
        .collect();
    (l2, pool, programs)
}

/// Builds the NCPU-mode program for `uc`: pre-process, classify in
/// place, write the result word to the `result_l2` mailbox.
///
/// # Panics
///
/// Panics on [`UseCaseKind::Deep`] — deep use cases run on the `Deep`
/// engine, which schedules the accelerator arrays directly.
pub(crate) fn ncpu_program(uc: &UseCase, core: &NcpuCore, result_l2: u32) -> Vec<u32> {
    let tail = Tail::NcpuClassify { output_base: core.output_base(), result_l2 };
    match uc.kind() {
        UseCaseKind::Image => image::preprocess_program(
            &image::ImageLayout::default(),
            core.image_base(),
            tail,
        ),
        UseCaseKind::Motion => motion_prog::feature_program(
            &motion_prog::MotionLayout::default(),
            core.image_base(),
            tail,
        ),
        UseCaseKind::Parametric => {
            let src = format!(
                "{}\n{}",
                uc.spin_source().expect("parametric use case"),
                tail.asm(0)
            );
            asm::assemble(&src).expect("parametric NCPU program")
        }
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Builds the heterogeneous-baseline program for `uc`: pre-process on
/// the standalone CPU, then offload the packed input.
///
/// # Panics
///
/// Panics on [`UseCaseKind::Deep`] — deep use cases run on the `Deep`
/// engine.
pub(crate) fn hetero_program(uc: &UseCase) -> Vec<u32> {
    let tail = Tail::Offload;
    match uc.kind() {
        UseCaseKind::Image => {
            let layout = image::ImageLayout::default();
            image::preprocess_program(&layout, layout.pack, tail)
        }
        UseCaseKind::Motion => {
            let layout = motion_prog::MotionLayout::default();
            motion_prog::feature_program(&layout, layout.pack, tail)
        }
        UseCaseKind::Parametric => {
            let src = format!(
                "{}\n{}",
                uc.spin_source().expect("parametric use case"),
                tail.asm(0)
            );
            asm::assemble(&src).expect("parametric offload program")
        }
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Local address where the heterogeneous CPU program packs the BNN
/// input.
pub(crate) fn hetero_pack_offset(uc: &UseCase) -> u32 {
    match uc.kind() {
        UseCaseKind::Image => image::ImageLayout::default().pack,
        UseCaseKind::Motion => motion_prog::MotionLayout::default().pack,
        UseCaseKind::Parametric => 0,
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Stages one item and runs one program to completion on `core`,
/// starting no earlier than `now` (global cycles). Returns
/// `(end_time, used)` and drains the core's recorder shard into `rec`
/// as lane `lane`, re-based to global time.
pub(crate) fn run_item(
    core: &mut NcpuCore,
    program: &[u32],
    staged: &[u8],
    now: u64,
    dma: &mut DmaEngine,
    rec: &mut Recorder,
    lane: u16,
) -> (u64, u64) {
    let _prof = ncpu_obs::selfprof::span("fabric.run_item");
    let start = if staged.is_empty() {
        now
    } else {
        let delivered = dma.schedule(now, staged.len() as u32);
        let banks = core.pipeline_mut().mem_mut().accel_mut().banks_mut();
        let (bank, off) = banks.resolve(0).expect("data cache starts at 0");
        banks.bank_mut(bank).load(off as usize, staged);
        delivered
    };
    let internal_before = core.total_cycles();
    core.load_program(program.to_vec());
    core.run(ITEM_BUDGET).expect("NCPU program must complete");
    let used = core.total_cycles() - internal_before;
    // The core's shard holds only this item's events (earlier items were
    // drained), all stamped ≥ internal_before on the core's unified
    // clock; shift them onto the global clock.
    let offset = start as i64 - internal_before as i64;
    rec.absorb(core.obs_mut(), lane, offset);
    (start + used, used)
}

/// Writes the per-core counter snapshot (`core{c}.*` namespace) from the
/// core's cheap stat structs — counters are sampled at collection points,
/// never updated on the simulation hot path.
pub(crate) fn snapshot_core_counters(rec: &mut Recorder, c: usize, core: &NcpuCore) {
    let ps = core.pipeline().stats();
    rec.set_counter(format!("core{c}.cycles"), ps.cycles);
    rec.set_counter(format!("core{c}.retired"), ps.retired);
    rec.set_counter(format!("core{c}.stall.load_use"), ps.load_use_stalls);
    rec.set_counter(format!("core{c}.stall.flush"), ps.flush_cycles);
    rec.set_counter(format!("core{c}.stall.ex"), ps.ex_stall_cycles);
    rec.set_counter(format!("core{c}.stall.mem"), ps.mem_stall_cycles);
    let cs = core.stats();
    rec.set_counter(format!("core{c}.switches"), cs.switches);
    rec.set_counter(format!("core{c}.images_inferred"), cs.images_inferred);
    rec.set_counter(format!("core{c}.bnn_cycles"), cs.bnn_cycles);
    rec.set_counter(format!("core{c}.switch_overhead_cycles"), cs.switch_overhead_cycles);
}

/// Writes the DMA lane snapshot and absorbs its span events onto lane
/// `lane` (global cycles, so offset 0).
pub(crate) fn snapshot_dma(rec: &mut Recorder, dma: &mut DmaEngine, lane: u16) {
    rec.set_counter("dma.transfers", dma.transfers());
    rec.set_counter("dma.bytes", dma.bytes_moved());
    rec.absorb(dma.obs_mut(), lane, 0);
}

/// Sets the run-level counters every engine reports, including the
/// dropped-instant count from the bounded event buffer (so silent
/// truncation of a `Full` trace is visible in `RUN_*.json` — the
/// `trace_check` binary warns when it is nonzero).
pub(crate) fn set_run_counters(rec: &mut Recorder, makespan: u64, items: usize) {
    rec.set_counter("run.makespan_cycles", makespan);
    rec.set_counter("run.items", items as u64);
    let dropped = rec.dropped();
    rec.set_counter("obs.dropped_instants", dropped);
}

/// Records one core's utilization over the run into the
/// `core.util_permille` histogram (busy cycles per 1000 makespan
/// cycles; one sample per core, so the histogram *is* the fleet's
/// utilization distribution).
pub(crate) fn record_util_metric(rec: &mut Recorder, busy: u64, makespan: u64) {
    if let Some(util) = (busy * 1000).checked_div(makespan) {
        rec.metric("core.util_permille", util);
    }
}

/// Records the per-item scheduling metrics every engine shares:
/// `latency` = completion minus dispatch (the cycle the scheduler
/// first attempted the item, before any DMA stall), `service` =
/// cycles the core actually executed, `depth` = items still waiting
/// behind this one on the same core at dispatch.
pub(crate) fn record_item_metrics(rec: &mut Recorder, latency: u64, service: u64, depth: u64) {
    rec.metric("item.latency_cycles", latency);
    rec.metric("item.service_cycles", service);
    rec.metric("item.queue_depth", depth);
}

/// What a finished NCPU-pool run produced, independent of which engine
/// executed the schedule.
pub(crate) struct RunOutcome {
    pub config: String,
    pub makespan: u64,
    pub predictions: Vec<usize>,
}

/// Assembles the final NCPU-pool report: snapshots every core's
/// counters and the DMA lane, sets the run counters, and derives one
/// `ncpu{c}` [`CoreReport`] per core from the recorder's span stream.
pub(crate) fn assemble_ncpu_report(
    rec: &mut Recorder,
    dma: &mut DmaEngine,
    pool: &[NcpuCore],
    busy: &[u64],
    usecase: &UseCase,
    outcome: RunOutcome,
) -> RunReport {
    let RunOutcome { config, makespan, predictions } = outcome;
    for (c, core) in pool.iter().enumerate() {
        snapshot_core_counters(rec, c, core);
    }
    snapshot_dma(rec, dma, pool.len() as u16);
    set_run_counters(rec, makespan, usecase.items().len());
    for &b in busy {
        record_util_metric(rec, b, makespan);
    }
    let cores = (0..pool.len())
        .map(|c| CoreReport {
            role: format!("ncpu{c}"),
            timeline: Timeline::from_obs_events(rec.spans(), c as u16),
            busy_cycles: busy[c],
        })
        .collect();
    RunReport {
        config,
        makespan,
        cores,
        predictions,
        labels: usecase.items().iter().map(|i| i.label).collect(),
        metrics: rec.metrics().clone(),
    }
}
