//! The shared SoC fabric: everything the run paths have in common.
//!
//! Before the Scenario/Engine refactor the analytic scheduler
//! (`system.rs`), the lock-step co-simulation (`lockstep.rs`) and the
//! deep-network series mode (`deep.rs`) each carried private copies of
//! the result-mailbox layout, program construction, DMA staging, cycle
//! budgets and report assembly. This module is the single owner of all
//! of it, so the three engines cannot drift:
//!
//! * [`result_addr`] — the per-core L2 result mailbox layout,
//! * [`ncpu_program`] / [`hetero_program`] — program construction for
//!   every [`UseCaseKind`],
//! * [`run_item`] — DMA staging plus one program execution under the
//!   shared [`ITEM_BUDGET`],
//! * [`ncpu_pool`] / [`ncpu_core`] — core construction, wired to the
//!   `SocConfig` (shared L2, trace level, naive-switch DMA parameters),
//! * [`assemble_ncpu_report`] — counter snapshots, DMA lane absorption
//!   and [`RunReport`] assembly.

use ncpu_accel::AccelConfig;
use ncpu_core::{NcpuCore, SharedL2, SwitchDma};
use ncpu_fault::{Fault, FaultPlan, FaultSession};
use ncpu_isa::asm;
use ncpu_obs::Recorder;
use ncpu_obs::TraceLevel;
use ncpu_obs::{Detector, EventKind, FaultClass, Recovery};
use ncpu_sim::stats::Timeline;
use ncpu_sim::DmaEngine;
use ncpu_workloads::{image, motion as motion_prog, Tail};

use crate::report::{CoreReport, RunReport};
use crate::system::SocConfig;
use crate::usecase::{UseCase, UseCaseKind};

/// Cycle budget per item (well above the heaviest program).
pub const ITEM_BUDGET: u64 = 200_000_000;

/// Bytes of the shared L2 every engine attaches its cores to.
pub const L2_BYTES: usize = 256 * 1024;

/// L2 address where core `c` writes its classification results — the
/// one mailbox layout every engine shares.
pub const fn result_addr(core: usize) -> u32 {
    0x40 + core as u32 * 4
}

/// The accelerator configuration the SoC's cores run with.
pub(crate) fn accel_config(soc: &SocConfig) -> AccelConfig {
    AccelConfig { layer_pipelining: soc.layer_pipelining, ..AccelConfig::default() }
}

/// The fabric DMA engine, traced at `Counters` or above so report
/// timelines can always show the DMA lane.
pub(crate) fn new_dma(soc: &SocConfig, level: TraceLevel) -> DmaEngine {
    let mut dma = DmaEngine::new(soc.dma_bytes_per_cycle, soc.dma_setup_cycles);
    dma.set_trace_level(level.at_least_counters());
    dma
}

/// Builds one NCPU core attached to `l2`, wired to the SoC config: obs
/// level set, and the naive-switch reload cost tracking the fabric's
/// DMA parameters (instead of the core's built-in default).
pub(crate) fn ncpu_core(
    uc: &UseCase,
    soc: &SocConfig,
    level: TraceLevel,
    l2: SharedL2,
) -> NcpuCore {
    let mut core = NcpuCore::with_l2(uc.model().clone(), accel_config(soc), soc.switch_policy, l2);
    core.set_obs_level(level);
    core.set_switch_dma(SwitchDma {
        bytes_per_cycle: soc.dma_bytes_per_cycle,
        setup_cycles: soc.dma_setup_cycles,
    });
    core
}

/// Builds the `cores`-way NCPU pool on a fresh shared L2, plus each
/// core's program targeting its [`result_addr`] mailbox.
pub(crate) fn ncpu_pool(
    uc: &UseCase,
    soc: &SocConfig,
    level: TraceLevel,
    cores: usize,
) -> (SharedL2, Vec<NcpuCore>, Vec<Vec<u32>>) {
    assert!(cores >= 1, "need at least one core");
    let l2 = SharedL2::new(L2_BYTES);
    let pool: Vec<NcpuCore> =
        (0..cores).map(|_| ncpu_core(uc, soc, level, l2.clone())).collect();
    let programs: Vec<Vec<u32>> = pool
        .iter()
        .enumerate()
        .map(|(c, core)| ncpu_program(uc, core, result_addr(c)))
        .collect();
    (l2, pool, programs)
}

/// Builds the NCPU-mode program for `uc`: pre-process, classify in
/// place, write the result word to the `result_l2` mailbox.
///
/// # Panics
///
/// Panics on [`UseCaseKind::Deep`] — deep use cases run on the `Deep`
/// engine, which schedules the accelerator arrays directly.
pub(crate) fn ncpu_program(uc: &UseCase, core: &NcpuCore, result_l2: u32) -> Vec<u32> {
    let tail = Tail::NcpuClassify { output_base: core.output_base(), result_l2 };
    match uc.kind() {
        UseCaseKind::Image => image::preprocess_program(
            &image::ImageLayout::default(),
            core.image_base(),
            tail,
        ),
        UseCaseKind::Motion => motion_prog::feature_program(
            &motion_prog::MotionLayout::default(),
            core.image_base(),
            tail,
        ),
        UseCaseKind::Parametric => {
            let src = format!(
                "{}\n{}",
                uc.spin_source().expect("parametric use case"),
                tail.asm(0)
            );
            asm::assemble(&src).expect("parametric NCPU program")
        }
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Builds the heterogeneous-baseline program for `uc`: pre-process on
/// the standalone CPU, then offload the packed input.
///
/// # Panics
///
/// Panics on [`UseCaseKind::Deep`] — deep use cases run on the `Deep`
/// engine.
pub(crate) fn hetero_program(uc: &UseCase) -> Vec<u32> {
    let tail = Tail::Offload;
    match uc.kind() {
        UseCaseKind::Image => {
            let layout = image::ImageLayout::default();
            image::preprocess_program(&layout, layout.pack, tail)
        }
        UseCaseKind::Motion => {
            let layout = motion_prog::MotionLayout::default();
            motion_prog::feature_program(&layout, layout.pack, tail)
        }
        UseCaseKind::Parametric => {
            let src = format!(
                "{}\n{}",
                uc.spin_source().expect("parametric use case"),
                tail.asm(0)
            );
            asm::assemble(&src).expect("parametric offload program")
        }
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Local address where the heterogeneous CPU program packs the BNN
/// input.
pub(crate) fn hetero_pack_offset(uc: &UseCase) -> u32 {
    match uc.kind() {
        UseCaseKind::Image => image::ImageLayout::default().pack,
        UseCaseKind::Motion => motion_prog::MotionLayout::default().pack,
        UseCaseKind::Parametric => 0,
        UseCaseKind::Deep => panic!("deep use cases run on the Deep engine"),
    }
}

/// Stages one item and runs one program to completion on `core`,
/// starting no earlier than `now` (global cycles). Returns
/// `(end_time, used)` and drains the core's recorder shard into `rec`
/// as lane `lane`, re-based to global time.
pub(crate) fn run_item(
    core: &mut NcpuCore,
    program: &[u32],
    staged: &[u8],
    now: u64,
    dma: &mut DmaEngine,
    rec: &mut Recorder,
    lane: u16,
) -> (u64, u64) {
    let _prof = ncpu_obs::selfprof::span("fabric.run_item");
    let start = if staged.is_empty() { now } else { stage_item(core, staged, now, dma) };
    run_item_staged(core, program, start, rec, lane)
}

/// Books the fabric DMA transfer for `staged` starting no earlier than
/// `now` and loads the bytes into the core's data banks; returns the
/// delivery cycle.
pub(crate) fn stage_item(
    core: &mut NcpuCore,
    staged: &[u8],
    now: u64,
    dma: &mut DmaEngine,
) -> u64 {
    let delivered = dma.schedule(now, staged.len() as u32);
    let banks = core.pipeline_mut().mem_mut().accel_mut().banks_mut();
    let (bank, off) = banks.resolve(0).expect("data cache starts at 0");
    banks.bank_mut(bank).load(off as usize, staged);
    delivered
}

/// Runs one already-staged program to completion on `core`, starting at
/// `start` (global cycles). Returns `(end_time, used)` and drains the
/// core's recorder shard into `rec` as lane `lane`, re-based to global
/// time.
pub(crate) fn run_item_staged(
    core: &mut NcpuCore,
    program: &[u32],
    start: u64,
    rec: &mut Recorder,
    lane: u16,
) -> (u64, u64) {
    let internal_before = core.total_cycles();
    core.load_program(program.to_vec());
    core.run(ITEM_BUDGET).expect("NCPU program must complete");
    let used = core.total_cycles() - internal_before;
    // The core's shard holds only this item's events (earlier items were
    // drained), all stamped ≥ internal_before on the core's unified
    // clock; shift them onto the global clock.
    let offset = start as i64 - internal_before as i64;
    rec.absorb(core.obs_mut(), lane, offset);
    (start + used, used)
}

/// Writes the per-core counter snapshot (`core{c}.*` namespace) from the
/// core's cheap stat structs — counters are sampled at collection points,
/// never updated on the simulation hot path.
pub(crate) fn snapshot_core_counters(rec: &mut Recorder, c: usize, core: &NcpuCore) {
    let ps = core.pipeline().stats();
    rec.set_counter(format!("core{c}.cycles"), ps.cycles);
    rec.set_counter(format!("core{c}.retired"), ps.retired);
    rec.set_counter(format!("core{c}.stall.load_use"), ps.load_use_stalls);
    rec.set_counter(format!("core{c}.stall.flush"), ps.flush_cycles);
    rec.set_counter(format!("core{c}.stall.ex"), ps.ex_stall_cycles);
    rec.set_counter(format!("core{c}.stall.mem"), ps.mem_stall_cycles);
    let cs = core.stats();
    rec.set_counter(format!("core{c}.switches"), cs.switches);
    rec.set_counter(format!("core{c}.images_inferred"), cs.images_inferred);
    rec.set_counter(format!("core{c}.bnn_cycles"), cs.bnn_cycles);
    rec.set_counter(format!("core{c}.switch_overhead_cycles"), cs.switch_overhead_cycles);
}

/// Writes the DMA lane snapshot and absorbs its span events onto lane
/// `lane` (global cycles, so offset 0).
pub(crate) fn snapshot_dma(rec: &mut Recorder, dma: &mut DmaEngine, lane: u16) {
    rec.set_counter("dma.transfers", dma.transfers());
    rec.set_counter("dma.bytes", dma.bytes_moved());
    rec.absorb(dma.obs_mut(), lane, 0);
}

/// Sets the run-level counters every engine reports, including the
/// dropped-instant count from the bounded event buffer (so silent
/// truncation of a `Full` trace is visible in `RUN_*.json` — the
/// `trace_check` binary warns when it is nonzero).
pub(crate) fn set_run_counters(rec: &mut Recorder, makespan: u64, items: usize) {
    rec.set_counter("run.makespan_cycles", makespan);
    rec.set_counter("run.items", items as u64);
    let dropped = rec.dropped();
    rec.set_counter("obs.dropped_instants", dropped);
}

/// Records one core's utilization over the run into the
/// `core.util_permille` histogram (busy cycles per 1000 makespan
/// cycles; one sample per core, so the histogram *is* the fleet's
/// utilization distribution).
pub(crate) fn record_util_metric(rec: &mut Recorder, busy: u64, makespan: u64) {
    if let Some(util) = (busy * 1000).checked_div(makespan) {
        rec.metric("core.util_permille", util);
    }
}

/// Records the per-item scheduling metrics every engine shares:
/// `latency` = completion minus dispatch (the cycle the scheduler
/// first attempted the item, before any DMA stall), `service` =
/// cycles the core actually executed, `depth` = items still waiting
/// behind this one on the same core at dispatch.
pub(crate) fn record_item_metrics(rec: &mut Recorder, latency: u64, service: u64, depth: u64) {
    rec.metric("item.latency_cycles", latency);
    rec.metric("item.service_cycles", service);
    rec.metric("item.queue_depth", depth);
}

/// What a finished NCPU-pool run produced, independent of which engine
/// executed the schedule.
pub(crate) struct RunOutcome {
    pub config: String,
    pub makespan: u64,
    pub predictions: Vec<usize>,
}

/// Assembles the final NCPU-pool report: snapshots every core's
/// counters and the DMA lane, sets the run counters, and derives one
/// [`CoreReport`] per core from the recorder's span stream. Roles are
/// topology-aware — `ncpu{c}` for reconfigurable cores (the historical
/// name), `cpu{c}`/`bnn{c}` for fixed-function ones — which is what the
/// energy layer keys its area and power models on.
pub(crate) fn assemble_ncpu_report(
    rec: &mut Recorder,
    dma: &mut DmaEngine,
    pool: &[NcpuCore],
    busy: &[u64],
    usecase: &UseCase,
    topo: &crate::topology::Topology,
    outcome: RunOutcome,
) -> RunReport {
    let RunOutcome { config, makespan, predictions } = outcome;
    for (c, core) in pool.iter().enumerate() {
        snapshot_core_counters(rec, c, core);
    }
    snapshot_dma(rec, dma, pool.len() as u16);
    set_run_counters(rec, makespan, usecase.items().len());
    for &b in busy {
        record_util_metric(rec, b, makespan);
    }
    let cores = (0..pool.len())
        .map(|c| CoreReport {
            role: match topo.spec(c).role {
                crate::topology::CoreRole::Reconfigurable => format!("ncpu{c}"),
                crate::topology::CoreRole::CpuOnly => format!("cpu{c}"),
                crate::topology::CoreRole::BnnOnly => format!("bnn{c}"),
            },
            timeline: Timeline::from_obs_events(rec.spans(), c as u16),
            busy_cycles: busy[c],
        })
        .collect();
    RunReport {
        config,
        makespan,
        cores,
        predictions,
        labels: usecase.items().iter().map(|i| i.label).collect(),
        metrics: rec.metrics().clone(),
    }
}

/// Prediction sentinel for an item the fault layer dropped: it never
/// produced a classification, so it can never match its label.
pub const DROPPED_PREDICTION: usize = usize::MAX;

/// How a dispatch attempt resolved after the fault layer had its say.
pub(crate) enum Resolution {
    /// Execute the item; staging (if any) delivers at `exec_start`.
    Run {
        /// Cycle execution may begin (≥ the dispatch cycle).
        exec_start: u64,
    },
    /// The item exhausted its retry budget at cycle `at`; skip it.
    Dropped {
        /// Cycle the final recovery decision was taken.
        at: u64,
    },
    /// The core hit its consecutive-fault limit at cycle `at`; park it
    /// and re-schedule its queue (current item included) elsewhere.
    Quarantined {
        /// Cycle the quarantine decision was taken.
        at: u64,
    },
}

/// What [`recovery_decision`] chose for one detected fault.
pub(crate) enum Decision {
    /// Re-stage and retry the item, resuming at the given cycle.
    RetryAt(u64),
    /// Drop the item at the given cycle.
    Drop(u64),
    /// Quarantine the core at the given cycle.
    Quarantine(u64),
}

/// Shared fault-injection state for one run: the bound [`FaultSession`],
/// per-item attempt cursors, per-core quarantine bookkeeping, and the
/// counters every engine exports. Both simulating engines mutate it at
/// identical `(cycle, core)` dispatch slots in identical lexicographic
/// order, which is the determinism argument for byte-equal reports
/// (DESIGN §14).
pub(crate) struct FaultCtl {
    plan: FaultPlan,
    session: FaultSession,
    /// Per-item attempt cursor. It advances monotonically over the
    /// item's whole lifetime — retries and re-dispatches after a
    /// quarantine included — so no RNG stream is ever reused.
    attempts: Vec<u32>,
    /// Consecutive faults per core; any clean delivery resets it.
    consecutive: Vec<u32>,
    quarantined: Vec<bool>,
    /// Which cores can run whole items at all (reconfigurable role).
    /// Fixed-function cores are never re-scheduling targets.
    item_capable: Vec<bool>,
    /// Faults within the current dispatch of each core's current item;
    /// drives the retry budget and the backoff exponent.
    dispatch_faults: Vec<u32>,
    /// Round-robin cursor for re-scheduling a quarantined core's queue.
    rr: usize,
    injected_flip: u64,
    injected_stall: u64,
    injected_truncate: u64,
    injected_hang: u64,
    detected_parity: u64,
    detected_watchdog: u64,
    retries: u64,
    items_dropped: u64,
    cores_quarantined: u64,
}

impl FaultCtl {
    /// Binds `plan` to the operating point for a run of `items` items on
    /// `topo`'s cores.
    pub(crate) fn new(
        plan: &FaultPlan,
        millivolts: u32,
        items: usize,
        topo: &crate::topology::Topology,
    ) -> FaultCtl {
        let cores = topo.cores();
        FaultCtl {
            plan: *plan,
            session: FaultSession::new(plan, millivolts),
            attempts: vec![0; items],
            consecutive: vec![0; cores],
            quarantined: vec![false; cores],
            item_capable: (0..cores).map(|c| topo.item_capable(c)).collect(),
            dispatch_faults: vec![0; cores],
            rr: 0,
            injected_flip: 0,
            injected_stall: 0,
            injected_truncate: 0,
            injected_hang: 0,
            detected_parity: 0,
            detected_watchdog: 0,
            retries: 0,
            items_dropped: 0,
            cores_quarantined: 0,
        }
    }

    /// The plan's per-item watchdog budget (0 = disabled).
    pub(crate) fn watchdog(&self) -> u64 {
        self.plan.watchdog_cycles
    }

    /// Retries item `item` has consumed so far (attempts beyond the
    /// first); sampled into the `item.retries` histogram at the item's
    /// terminal point — completion or drop — exactly once.
    pub(crate) fn item_retries(&self, item: usize) -> u64 {
        u64::from(self.attempts[item].saturating_sub(1))
    }

    /// Next healthy item-capable core in round-robin order, or `None`
    /// when every eligible core is quarantined.
    fn next_healthy(&mut self) -> Option<usize> {
        let n = self.quarantined.len();
        for k in 0..n {
            let c = (self.rr + k) % n;
            if !self.quarantined[c] && self.item_capable[c] {
                self.rr = (c + 1) % n;
                return Some(c);
            }
        }
        None
    }

    /// Exports the fault counters. Called once per run, only when a
    /// plan is active, so inert runs stay byte-identical to pre-fault
    /// reports.
    pub(crate) fn write_counters(&self, rec: &mut Recorder) {
        rec.set_counter("fault.injected.sram_flip", self.injected_flip);
        rec.set_counter("fault.injected.dma_stall", self.injected_stall);
        rec.set_counter("fault.injected.dma_truncate", self.injected_truncate);
        rec.set_counter("fault.injected.core_hang", self.injected_hang);
        rec.set_counter("fault.detected.parity", self.detected_parity);
        rec.set_counter("fault.detected.watchdog", self.detected_watchdog);
        rec.set_counter("fault.retries", self.retries);
        rec.set_counter("fault.items_dropped", self.items_dropped);
        rec.set_counter("fault.cores_quarantined", self.cores_quarantined);
    }
}

/// Routes a fault-layer event either straight into the recorder (the
/// lock-step engine emits inline at its walk slot) or into a deferral
/// buffer (the event engine replays it at the same slot's sort key, so
/// the raw streams stay byte-identical).
fn note(
    rec: &mut Recorder,
    defer: &mut Option<&mut Vec<(u64, EventKind)>>,
    lane: u16,
    cycle: u64,
    kind: EventKind,
) {
    match defer.as_deref_mut() {
        Some(buf) => buf.push((cycle, kind)),
        None => rec.emit(lane, cycle, kind),
    }
}

/// Resolves one dispatch of item `item` on core `core_idx` at cycle
/// `dispatch` against the fault layer.
///
/// With no fault control (`ctl` = `None`, the `FaultPlan::none()` fast
/// path) this is exactly the pre-fault staging: book the DMA, load the
/// banks, run — no draws, no counters, no events, byte-identical to the
/// old engines. With faults, each attempt draws from its own split RNG
/// stream; benign faults (stalls) delay delivery, detected faults
/// (parity on flips/truncations at delivery, watchdog on hangs at
/// expiry) charge the recovery policy — bounded retry with exponential
/// backoff, then drop, with quarantine once a core's consecutive-fault
/// count hits the plan's limit. Re-staged retries book their DMA
/// occupancy eagerly at resolution time; both simulating engines do the
/// same, in the same order, which keeps the fabric byte-deterministic
/// (DESIGN §14 records the physical approximation).
///
/// `fresh` is false only when re-dispatching after a mid-item watchdog
/// abort: the retry budget and the item's latency anchor survive the
/// abort.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_dispatch(
    ctl: Option<&mut FaultCtl>,
    core_idx: usize,
    item: usize,
    staged: &[u8],
    dispatch: u64,
    fresh: bool,
    core: &mut NcpuCore,
    dma: &mut DmaEngine,
    rec: &mut Recorder,
    mut defer: Option<&mut Vec<(u64, EventKind)>>,
) -> Resolution {
    let Some(ctl) = ctl else {
        let exec_start =
            if staged.is_empty() { dispatch } else { stage_item(core, staged, dispatch, dma) };
        return Resolution::Run { exec_start };
    };
    if fresh {
        ctl.dispatch_faults[core_idx] = 0;
    }
    let lane = core_idx as u16;
    let mut now = dispatch;
    loop {
        let attempt = ctl.attempts[item];
        ctl.attempts[item] += 1;
        match ctl.session.draw(item as u64, attempt, staged.len()) {
            None => {
                ctl.consecutive[core_idx] = 0;
                let exec_start =
                    if staged.is_empty() { now } else { stage_item(core, staged, now, dma) };
                return Resolution::Run { exec_start };
            }
            Some(Fault::DmaStall { extra_cycles }) => {
                // Benign: the transfer completes, just late. Nothing to
                // detect or retry.
                ctl.injected_stall += 1;
                note(rec, &mut defer, lane, now, EventKind::Fault { class: FaultClass::DmaStall });
                ctl.consecutive[core_idx] = 0;
                let exec_start = stage_item(core, staged, now, dma) + extra_cycles;
                return Resolution::Run { exec_start };
            }
            Some(fault) => {
                // A detectable fault: charge the fabric occupancy the
                // broken delivery consumed, stamp injection + detection,
                // then let the recovery policy decide.
                let (class, detect_at, by) = match fault {
                    Fault::SramFlip { .. } => {
                        // The corrupted image still crosses the fabric in
                        // full; parity over the staged bytes flips at
                        // delivery (certain detection — see ncpu-fault's
                        // parity proof test). The copy is discarded, so
                        // the banks are never loaded.
                        ctl.injected_flip += 1;
                        let delivered = dma.schedule(now, staged.len() as u32);
                        (FaultClass::SramFlip, delivered, Detector::Parity)
                    }
                    Fault::DmaTruncate { bytes } => {
                        // Only the prefix crosses the fabric; the length
                        // check at delivery catches it.
                        ctl.injected_truncate += 1;
                        let delivered = dma.schedule(now, bytes);
                        (FaultClass::DmaTruncate, delivered, Detector::Parity)
                    }
                    Fault::CoreHang => {
                        // Nothing crosses the fabric; only the watchdog
                        // notices, a full budget later.
                        ctl.injected_hang += 1;
                        (FaultClass::CoreHang, now + ctl.plan.watchdog_cycles, Detector::Watchdog)
                    }
                    Fault::DmaStall { .. } => unreachable!("handled above"),
                };
                match by {
                    Detector::Parity => ctl.detected_parity += 1,
                    Detector::Watchdog => ctl.detected_watchdog += 1,
                }
                note(rec, &mut defer, lane, now, EventKind::Fault { class });
                note(rec, &mut defer, lane, detect_at, EventKind::Detect { by });
                match recovery_decision(ctl, core_idx, now, detect_at, rec, &mut defer) {
                    Decision::RetryAt(resume) => now = resume,
                    Decision::Drop(at) => return Resolution::Dropped { at },
                    Decision::Quarantine(at) => return Resolution::Quarantined { at },
                }
            }
        }
    }
}

/// The recovery state machine for one detected fault on `core_idx`:
/// quarantine once the core's consecutive-fault count reaches the
/// plan's limit, drop once the dispatch exhausts `max_retries`,
/// otherwise retry after exponential backoff. Also invoked by the
/// lock-step engine's mid-item watchdog abort (where `fault_at` is the
/// aborted item's start, so `fault.recovery_cycles` prices the wasted
/// execution plus the backoff).
pub(crate) fn recovery_decision(
    ctl: &mut FaultCtl,
    core_idx: usize,
    fault_at: u64,
    detect_at: u64,
    rec: &mut Recorder,
    defer: &mut Option<&mut Vec<(u64, EventKind)>>,
) -> Decision {
    let lane = core_idx as u16;
    ctl.consecutive[core_idx] += 1;
    ctl.dispatch_faults[core_idx] += 1;
    let limit = ctl.plan.quarantine_after;
    if limit > 0 && ctl.consecutive[core_idx] >= limit {
        ctl.quarantined[core_idx] = true;
        ctl.cores_quarantined += 1;
        note(rec, defer, lane, detect_at, EventKind::Recover { action: Recovery::Quarantine });
        rec.metric("fault.recovery_cycles", detect_at - fault_at);
        return Decision::Quarantine(detect_at);
    }
    if ctl.dispatch_faults[core_idx] > ctl.plan.max_retries {
        ctl.items_dropped += 1;
        note(rec, defer, lane, detect_at, EventKind::Recover { action: Recovery::Drop });
        rec.metric("fault.recovery_cycles", detect_at - fault_at);
        return Decision::Drop(detect_at);
    }
    ctl.retries += 1;
    note(rec, defer, lane, detect_at, EventKind::Recover { action: Recovery::Retry });
    let exp = (ctl.dispatch_faults[core_idx] - 1).min(16);
    let resume = detect_at.saturating_add(ctl.plan.backoff_cycles.saturating_mul(1 << exp));
    rec.metric("fault.recovery_cycles", resume - fault_at);
    Decision::RetryAt(resume)
}

/// The lock-step engine's mid-item watchdog: detection at `clock`,
/// then the shared recovery state machine, with the aborted item's
/// start as the fault anchor.
pub(crate) fn watchdog_abort(
    ctl: &mut FaultCtl,
    core_idx: usize,
    item_start: u64,
    clock: u64,
    rec: &mut Recorder,
) -> Decision {
    ctl.detected_watchdog += 1;
    rec.emit(core_idx as u16, clock, EventKind::Detect { by: Detector::Watchdog });
    let mut defer = None;
    recovery_decision(ctl, core_idx, item_start, clock, rec, &mut defer)
}

/// Re-schedules a quarantined core's outstanding items (current item
/// first) round-robin over the remaining healthy cores. Items that find
/// no healthy core are dropped on the spot: counted, stamped with a
/// `recover.drop` event on the quarantined core's lane at cycle `at`,
/// and sampled into `item.retries`. Returns `(item, Some(target))`
/// assignments in order — the moved items become available at `at + 1`.
pub(crate) fn reassign_items(
    ctl: &mut FaultCtl,
    from: usize,
    items: &[usize],
    at: u64,
    rec: &mut Recorder,
    defer: &mut Option<&mut Vec<(u64, EventKind)>>,
) -> Vec<(usize, Option<usize>)> {
    items
        .iter()
        .map(|&item| {
            let target = ctl.next_healthy();
            if target.is_none() {
                ctl.items_dropped += 1;
                note(rec, defer, from as u16, at, EventKind::Recover { action: Recovery::Drop });
                rec.metric("item.retries", ctl.item_retries(item));
            }
            (item, target)
        })
        .collect()
}
